//! Mutation self-validation for the atomics conformance pass.
//!
//! A lint rule that has never caught a bug is an assumption, not a
//! check. This harness demonstrates the site-level conformance pass
//! has teeth by *planting* the bugs: for every atomic access site in
//! `crates/concurrent` whose literal ordering is `Release`, `Acquire`
//! or `AcqRel`, it writes a scratch copy of the crate with exactly
//! that one literal weakened to `Relaxed`, runs the conformance pass
//! (and the `rmw-hazard` pass) over the scratch tree, and records
//! whether the mutant was flagged. One extra mutant injects a
//! `compare_exchange` in place of a `fetch_add` in a PCM update path
//! (`pcm.rs`) — the class of bug `rmw-hazard` exists for. Mutants are
//! analyzed statically and never compiled, so an injected CAS does
//! not need to type-check.
//!
//! Because the audit table records orderings per *site*, a weakening
//! is caught even when the weaker ordering is legal somewhere else
//! under the same discipline: the mutated site no longer matches its
//! row (ordering drift), independent of row legality.
//!
//! For the `sharded.rs` lease pair the harness additionally runs the
//! happens-before analyzer's step model
//! ([`crate::hb::lease_handoff_step_model`]) in both correct and
//! weakened form, asserting the weakening manifests as a write–write
//! race — the static table catch and the behavioural catch agree.
//!
//! `ivl_lint --mutate` runs the whole harness and exits non-zero if
//! the baseline tree is not clean or any mutant escapes.

use crate::atomics::{collect_file_sites, FileSites};
use crate::hb::{lease_handoff_step_model, HbIssue};
use crate::lint::{check_rmw_hazard, LintReport};
use crate::{atomics, json_escape};
use std::fs;
use std::io;
use std::path::Path;

/// Orderings a mutant may weaken (always to `Relaxed`).
const STRONG_ORDERINGS: [&str; 3] = ["Release", "Acquire", "AcqRel"];

/// One planted mutant and what the analysis said about it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MutationOutcome {
    /// Mutant class: `release-store`, `acquire-load`, `acqrel-rmw`
    /// or `injected-cas`.
    pub class: &'static str,
    /// File mutated, relative to `crates/concurrent/src`.
    pub file: String,
    /// 1-based line of the mutated access.
    pub line: u32,
    /// What was changed, e.g.
    /// `fn drop: self.parent.in_use[self.shard].store Release -> Relaxed`.
    pub description: String,
    /// Whether any `atomics-conformance` / `rmw-hazard` finding
    /// flagged the mutated file.
    pub caught: bool,
    /// The first finding that caught it (rendered), if any.
    pub finding: Option<String>,
}

/// Outcome of a full mutation run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MutationReport {
    /// Whether the *unmutated* tree passed the conformance + hazard
    /// passes (a dirty baseline voids the experiment: every mutant
    /// would be "caught" by pre-existing findings).
    pub baseline_clean: bool,
    /// Baseline findings, rendered (empty when clean).
    pub baseline_findings: Vec<String>,
    /// Every planted mutant, in generation order.
    pub outcomes: Vec<MutationOutcome>,
    /// Whether the lease-handoff step model showed the behavioural
    /// differential: no WW race under the correct protocol, a WW race
    /// once the acquire half of the lease swap is dropped.
    pub lease_hb_differential: bool,
}

impl MutationReport {
    /// Whether the harness validated the lints: clean baseline, every
    /// mutant caught, and the HB differential observed.
    pub fn is_valid(&self) -> bool {
        self.baseline_clean
            && !self.outcomes.is_empty()
            && self.outcomes.iter().all(|o| o.caught)
            && self.lease_hb_differential
    }

    /// Number of mutants caught.
    pub fn caught(&self) -> usize {
        self.outcomes.iter().filter(|o| o.caught).count()
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "ivl_lint --mutate: {} mutant(s), {} caught, baseline {}\n",
            self.outcomes.len(),
            self.caught(),
            if self.baseline_clean {
                "clean"
            } else {
                "DIRTY"
            }
        );
        for f in &self.baseline_findings {
            out.push_str(&format!("baseline: {f}\n"));
        }
        for o in &self.outcomes {
            out.push_str(&format!(
                "[{}] {}:{} {} — {}\n",
                o.class,
                o.file,
                o.line,
                o.description,
                if o.caught { "caught" } else { "ESCAPED" }
            ));
        }
        out.push_str(&format!(
            "lease handoff HB differential (correct: no WW race, weakened: WW race): {}\n",
            if self.lease_hb_differential {
                "observed"
            } else {
                "NOT OBSERVED"
            }
        ));
        out.push_str(if self.is_valid() {
            "mutation self-validation passed\n"
        } else {
            "mutation self-validation FAILED\n"
        });
        out
    }

    /// JSON rendering (see README "JSON report schemas").
    pub fn to_json(&self) -> String {
        let outcomes: Vec<String> = self
            .outcomes
            .iter()
            .map(|o| {
                format!(
                    "{{\"class\":\"{}\",\"file\":\"{}\",\"line\":{},\"description\":\"{}\",\"caught\":{},\"finding\":{}}}",
                    o.class,
                    json_escape(&o.file),
                    o.line,
                    json_escape(&o.description),
                    o.caught,
                    match &o.finding {
                        Some(f) => format!("\"{}\"", json_escape(f)),
                        None => "null".to_string(),
                    }
                )
            })
            .collect();
        let baseline: Vec<String> = self
            .baseline_findings
            .iter()
            .map(|f| format!("\"{}\"", json_escape(f)))
            .collect();
        format!(
            "{{\"valid\":{},\"baseline_clean\":{},\"baseline_findings\":[{}],\"mutants\":{},\"caught\":{},\"lease_hb_differential\":{},\"outcomes\":[{}]}}",
            self.is_valid(),
            self.baseline_clean,
            baseline.join(","),
            self.outcomes.len(),
            self.caught(),
            self.lease_hb_differential,
            outcomes.join(",")
        )
    }
}

/// Mutant class for weakening `ordering` at a `method` access.
fn class_of(method: &str, ordering: &str) -> &'static str {
    match (method, ordering) {
        ("store", "Release") => "release-store",
        ("load", "Acquire") => "acquire-load",
        (_, "Release") => "release-store",
        (_, "Acquire") => "acquire-load",
        _ => "acqrel-rmw",
    }
}

/// The conformance + hazard passes only, against a (scratch) root.
fn analyze_tree(root: &Path) -> LintReport {
    let mut report = LintReport::default();
    atomics::check_conformance(root, &mut report);
    check_rmw_hazard(root, &mut report);
    report
}

/// Writes a scratch tree under `dir`: every concurrent source file
/// (one of them overridden with `mutated_src`) plus the real
/// `ORDERINGS.md`, laid out as `crates/concurrent/{src,ORDERINGS.md}`
/// so the passes run unchanged.
fn write_scratch(
    dir: &Path,
    files: &[FileSites],
    audit: &str,
    mutated_rel: &str,
    mutated_src: &str,
) -> io::Result<()> {
    let concurrent = dir.join("crates").join("concurrent");
    for f in files {
        let dst = concurrent.join("src").join(&f.rel);
        if let Some(parent) = dst.parent() {
            fs::create_dir_all(parent)?;
        }
        let body = if f.rel == mutated_rel {
            mutated_src
        } else {
            f.src.as_str()
        };
        fs::write(&dst, body)?;
    }
    fs::write(concurrent.join("ORDERINGS.md"), audit)?;
    Ok(())
}

/// Runs the full harness: baseline pass over `root`, then one scratch
/// tree per mutant under `scratch` (created, reused per mutant,
/// removed afterwards).
pub fn run_mutations(root: &Path, scratch: &Path) -> io::Result<MutationReport> {
    let src_dir = root.join("crates").join("concurrent").join("src");
    let audit_path = root.join("crates").join("concurrent").join("ORDERINGS.md");
    let files = collect_file_sites(&src_dir);
    let audit = fs::read_to_string(&audit_path).unwrap_or_default();

    let baseline = analyze_tree(root);
    let baseline_findings: Vec<String> = baseline.findings.iter().map(|f| f.render()).collect();

    let mut outcomes = Vec::new();
    let mut mutant_id = 0usize;
    let mut run_mutant = |files: &[FileSites],
                          rel: &str,
                          mutated_src: &str,
                          class: &'static str,
                          line: u32,
                          description: String|
     -> io::Result<MutationOutcome> {
        let dir = scratch.join(format!("mutant_{mutant_id}"));
        mutant_id += 1;
        write_scratch(&dir, files, &audit, rel, mutated_src)?;
        let report = analyze_tree(&dir);
        // A finding "catches" the mutant if it points at the mutated
        // file (baseline is asserted clean separately, so any finding
        // here is mutant-induced; the file filter keeps the credit
        // honest).
        let finding = report
            .findings
            .iter()
            .find(|f| f.file.ends_with(rel) || f.file.ends_with("ORDERINGS.md"))
            .map(|f| f.render());
        fs::remove_dir_all(&dir).ok();
        Ok(MutationOutcome {
            class,
            file: rel.to_string(),
            line,
            description,
            caught: finding.is_some(),
            finding,
        })
    };

    // 1. Weakened-ordering mutants: every strong literal, one at a time.
    for f in &files {
        for s in &f.sites {
            for (k, ord) in s.orderings.iter().enumerate() {
                if !STRONG_ORDERINGS.contains(&ord.as_str()) {
                    continue;
                }
                let (lo, hi) = s.ordering_spans[k];
                let mut mutated = f.src.clone();
                mutated.replace_range(lo..hi, "Relaxed");
                let description = format!(
                    "fn {}: {}.{} {} -> Relaxed",
                    s.func, s.receiver, s.method, ord
                );
                outcomes.push(run_mutant(
                    &files,
                    &f.rel,
                    &mutated,
                    class_of(&s.method, ord),
                    s.line,
                    description,
                )?);
            }
        }
    }

    // 2. Injected CAS in a PCM update path: replace the first
    // `fetch_add` in `pcm.rs` with `compare_exchange`. The scratch is
    // analyzed, not compiled, so the arity mismatch is irrelevant —
    // what matters is that `rmw-hazard` (and the conformance pass)
    // refuse the shape.
    if let Some(f) = files.iter().find(|f| f.rel == "pcm.rs") {
        if let Some(s) = f.sites.iter().find(|s| s.method == "fetch_add") {
            let (lo, hi) = s.method_span;
            let mut mutated = f.src.clone();
            mutated.replace_range(lo..hi, "compare_exchange");
            let description = format!(
                "fn {}: {}.fetch_add -> compare_exchange (injected CAS)",
                s.func, s.receiver
            );
            outcomes.push(run_mutant(
                &files,
                &f.rel,
                &mutated,
                "injected-cas",
                s.line,
                description,
            )?);
        }
    }

    // 3. Behavioural differential for the lease pair.
    let correct = lease_handoff_step_model(false);
    let weakened = lease_handoff_step_model(true);
    let ww = |r: &crate::hb::HbReport| {
        r.findings
            .iter()
            .any(|f| matches!(f.issue, HbIssue::WwRace { .. }))
    };
    let lease_hb_differential = !ww(&correct) && ww(&weakened);

    Ok(MutationReport {
        baseline_clean: baseline.is_clean(),
        baseline_findings,
        outcomes,
        lease_hb_differential,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_names_cover_the_required_classes() {
        assert_eq!(class_of("store", "Release"), "release-store");
        assert_eq!(class_of("load", "Acquire"), "acquire-load");
        assert_eq!(class_of("swap", "AcqRel"), "acqrel-rmw");
        assert_eq!(class_of("fetch_max", "AcqRel"), "acqrel-rmw");
    }

    #[test]
    fn lease_model_differential_holds() {
        let correct = lease_handoff_step_model(false);
        let weakened = lease_handoff_step_model(true);
        let ww = |r: &crate::hb::HbReport| {
            r.findings
                .iter()
                .any(|f| matches!(f.issue, HbIssue::WwRace { .. }))
        };
        assert!(!ww(&correct), "{}", correct.render());
        assert!(ww(&weakened), "{}", weakened.render());
    }
}
