//! Site-level atomics conformance: every atomic access in
//! `crates/concurrent`, checked against a per-site discipline table.
//!
//! The scanner walks the [`crate::syn`] token stream of each source
//! file and extracts every atomic access **site**: the enclosing
//! `fn`, the receiver expression, the method (`load`, `store`,
//! `fetch_add`, `compare_exchange`, ...) and the literal `Ordering::`
//! argument(s). Comments, string literals and the trailing
//! `#[cfg(test)]` module are invisible to it — the regex era's false
//! positives (doc examples, prose mentioning `Ordering::Relaxed`)
//! cannot occur.
//!
//! Each site must be matched by a row of the "Atomic access sites"
//! table in `crates/concurrent/ORDERINGS.md`, and each row is tagged
//! with a **discipline** — a named access protocol from the paper's
//! correctness arguments:
//!
//! | discipline | allowed shapes | argument |
//! |---|---|---|
//! | `pcm-cell` | `fetch_add(Relaxed)`, `load(Relaxed)`, `load(Acquire)` | commutative accumulation on shared sketch cells; Lemma 7 bounds every intermediate mix a reader can combine, so no fencing is needed (an `Acquire` read is permitted where a reader wants no-older-than guarantees, but correctness never rests on it) |
//! | `swmr-slot` | `load(Relaxed)`, `store(Release)`, `load(Acquire)` | single-writer cells: the owner's unfenced read-modify-write-back pairs its `Release` store with readers' `Acquire` loads (the simulator's SWMR register model) |
//! | `lease-flag` | `swap(AcqRel)`, `store(Release)`, `load(Acquire)` | shard-ownership handoff: the `Release` on lease return pairs with the next holder's `AcqRel` swap, ordering lease generations (weakening this is what the mutation harness demonstrates the HB analyzer catches) |
//! | `cas-loop` | `load(Acquire)`, `compare_exchange(AcqRel, Acquire)` | at-most-once probabilistic transitions; only legal in the exempt files (`morris_conc.rs`) — everywhere else `rmw-hazard` also fires |
//! | `monotone-merge` | `fetch_max(AcqRel)`, `fetch_min(AcqRel)`, `fetch_add(AcqRel)`, `load(Acquire)` | commutative monotone merges whose `AcqRel` publishes the merged value to `Acquire` readers |
//! | `id-alloc` | `fetch_add(Relaxed)` | unique-id allocation: only uniqueness matters, never order |
//!
//! Conformance is two-layered: the **site ↔ row match** (exact
//! method + orderings, so `Release → Relaxed` at one site is a
//! finding even when some other site legally uses `Relaxed`), and
//! **row legality** (a row's shape must be allowed by its claimed
//! discipline, so mis-tagging a CAS as `pcm-cell` is also a finding).
//! `Ordering::` values that appear in code *outside* a recognized
//! call site (e.g. bound to a variable and passed indirectly) are
//! findings too — orderings must be literal at the access, or the
//! audit cannot see them.

use crate::lint::{LintFinding, LintReport};
use crate::syn::{matching_close, matching_open, ScannedFile, TokKind};
use std::fs;
use std::path::{Path, PathBuf};

/// Atomic RMW methods that identify a site even without a literal
/// `Ordering::` argument (their names are unambiguous).
const RMW_METHODS: [&str; 12] = [
    "fetch_add",
    "fetch_sub",
    "fetch_max",
    "fetch_min",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
];

/// Methods that are atomic accesses only when a literal `Ordering::`
/// appears among the arguments (`load`/`store`/`swap` exist on plenty
/// of non-atomic types).
const ORDERED_METHODS: [&str; 3] = ["load", "store", "swap"];

/// Number of `Ordering` arguments the method signature takes.
fn expected_orderings(method: &str) -> usize {
    match method {
        "compare_exchange" | "compare_exchange_weak" | "fetch_update" => 2,
        _ => 1,
    }
}

/// One atomic access site in non-test code.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AtomicSite {
    /// Path relative to the scanned source root (e.g. `sharded.rs`).
    pub file: String,
    /// 1-based line of the method identifier.
    pub line: u32,
    /// Innermost enclosing `fn`, or `-` at module level.
    pub func: String,
    /// Receiver expression, whitespace-normalized (e.g.
    /// `self.in_use[self.shard]`), or `?` when not recoverable.
    pub receiver: String,
    /// Method name (`load`, `store`, `swap`, `fetch_add`, ...).
    pub method: String,
    /// Literal `Ordering::` arguments, in argument order.
    pub orderings: Vec<String>,
    /// Byte span of each ordering identifier in the source (used by
    /// the mutation harness to rewrite exactly one literal).
    pub ordering_spans: Vec<(usize, usize)>,
    /// Byte span of the method identifier (used to inject a CAS).
    pub method_span: (usize, usize),
}

impl AtomicSite {
    /// The orderings cell as rendered in the audit table.
    pub fn orderings_cell(&self) -> String {
        self.orderings.join(", ")
    }

    /// `fn/receiver.method(orderings)` one-liner for messages.
    pub fn describe(&self) -> String {
        format!(
            "{}:{} fn {}: {}.{}({})",
            self.file,
            self.line,
            self.func,
            self.receiver,
            self.method,
            self.orderings_cell()
        )
    }
}

/// Scan result for one file.
#[derive(Clone, Debug)]
pub struct FileSites {
    /// Path relative to the source root.
    pub rel: String,
    /// Absolute path.
    pub path: PathBuf,
    /// The source text the spans index into.
    pub src: String,
    /// Non-test atomic access sites, in source order.
    pub sites: Vec<AtomicSite>,
    /// Non-test code `Ordering::X` mentions *outside* any site's
    /// argument list: `(line, ordering name)`.
    pub strays: Vec<(u32, String)>,
}

/// Scans one source text for atomic access sites and stray ordering
/// mentions. Test code (at or after the trailing `#[cfg(test)]`) is
/// skipped entirely.
pub fn scan_source(rel: &str, src: &str) -> (Vec<AtomicSite>, Vec<(u32, String)>) {
    let file = ScannedFile::new(src);
    let mut sites = Vec::new();
    // Code positions of `Ordering`-path tokens consumed by a site.
    let mut consumed = vec![false; file.code.len()];

    for ci in 0..file.code.len() {
        let t = file.code_tok(ci);
        if t.kind != TokKind::Ident {
            continue;
        }
        let method = t.text;
        let is_rmw = RMW_METHODS.contains(&method);
        if !is_rmw && !ORDERED_METHODS.contains(&method) {
            continue;
        }
        if ci == 0 || !file.code_tok(ci - 1).is_punct('.') {
            continue;
        }
        let Some(open) = file
            .code
            .get(ci + 1)
            .filter(|_| file.code_tok(ci + 1).is_punct('('))
            .map(|_| ci + 1)
        else {
            continue;
        };
        let Some(close) = matching_close(&file, open) else {
            continue;
        };
        // Literal orderings inside the argument list.
        let mut orderings = Vec::new();
        let mut spans = Vec::new();
        let mut arg_consumed = Vec::new();
        let mut j = open + 1;
        while j + 3 <= close {
            if file.code_tok(j).is_ident("Ordering")
                && file.code_tok(j + 1).is_punct(':')
                && file.code_tok(j + 2).is_punct(':')
                && file.code_tok(j + 3).kind == TokKind::Ident
            {
                let ord = file.code_tok(j + 3);
                orderings.push(ord.text.to_string());
                spans.push((ord.lo, ord.hi()));
                arg_consumed.extend([j, j + 1, j + 2, j + 3]);
                j += 4;
            } else {
                j += 1;
            }
        }
        if !is_rmw && orderings.is_empty() {
            continue; // load/store/swap on some non-atomic type
        }
        if file.in_test(ci) {
            // Test code is out of audit scope, but mark its ordering
            // tokens consumed so they are not reported as strays.
            for p in arg_consumed {
                consumed[p] = true;
            }
            continue;
        }
        for p in arg_consumed {
            consumed[p] = true;
        }
        let receiver = receiver_text(&file, ci - 1).unwrap_or_else(|| "?".to_string());
        sites.push(AtomicSite {
            file: rel.to_string(),
            line: t.line,
            func: file.enclosing_fn[ci].unwrap_or("-").to_string(),
            receiver,
            method: method.to_string(),
            orderings,
            ordering_spans: spans,
            method_span: (t.lo, t.hi()),
        });
    }

    // Stray mentions: code, non-test `Ordering::X` outside any site.
    let mut strays = Vec::new();
    for (ci, &used) in consumed
        .iter()
        .enumerate()
        .take(file.code.len().saturating_sub(3))
    {
        if used || file.in_test(ci) {
            continue;
        }
        if file.code_tok(ci).is_ident("Ordering")
            && file.code_tok(ci + 1).is_punct(':')
            && file.code_tok(ci + 2).is_punct(':')
            && file.code_tok(ci + 3).kind == TokKind::Ident
        {
            strays.push((
                file.code_tok(ci).line,
                file.code_tok(ci + 3).text.to_string(),
            ));
        }
    }
    (sites, strays)
}

/// Receiver expression ending at the `.` at code-position `dot`:
/// walks back through `ident`/`self` segments, `.`/`::` separators
/// and balanced `(...)`/`[...]` suffixes, then joins the code tokens
/// (whitespace and comments drop out).
fn receiver_text(file: &ScannedFile<'_>, dot: usize) -> Option<String> {
    if dot == 0 {
        return None;
    }
    let mut j = dot - 1;
    let start;
    loop {
        let t = file.code_tok(j);
        if t.is_punct(')') || t.is_punct(']') {
            j = matching_open(file, j)?;
            if j == 0 {
                start = j;
                break;
            }
            let p = file.code_tok(j - 1);
            if p.kind == TokKind::Ident || p.is_punct(')') || p.is_punct(']') {
                j -= 1;
                continue;
            }
            start = j;
            break;
        }
        if t.kind == TokKind::Ident || t.kind == TokKind::Number {
            if j == 0 {
                start = j;
                break;
            }
            let p = file.code_tok(j - 1);
            // A member-access dot continues the receiver; the second
            // dot of a range (`0..c.load(...)`) does not.
            if p.is_punct('.') && j >= 2 && !file.code_tok(j - 2).is_punct('.') {
                j -= 2;
                continue;
            }
            if p.is_punct(':') && j >= 2 && file.code_tok(j - 2).is_punct(':') && j >= 3 {
                j -= 3;
                continue;
            }
            start = j;
            break;
        }
        return None;
    }
    Some((start..dot).map(|k| file.code_tok(k).text).collect())
}

/// Collects per-file scan results for every `.rs` file under `src_dir`
/// (recursively, sorted), with paths relative to `src_dir`.
pub fn collect_file_sites(src_dir: &Path) -> Vec<FileSites> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
        let Ok(entries) = fs::read_dir(dir) else {
            return;
        };
        let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                walk(&path, out);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    let mut files = Vec::new();
    walk(src_dir, &mut files);
    files
        .into_iter()
        .filter_map(|path| {
            let src = fs::read_to_string(&path).ok()?;
            let rel = path
                .strip_prefix(src_dir)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let (sites, strays) = scan_source(&rel, &src);
            Some(FileSites {
                rel,
                path,
                src,
                sites,
                strays,
            })
        })
        .collect()
}

/// One row of the "Atomic access sites" table in `ORDERINGS.md`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SiteRow {
    /// Source file, relative to `crates/concurrent/src`.
    pub file: String,
    /// Enclosing `fn` (or `-`).
    pub func: String,
    /// Receiver expression (whitespace-normalized).
    pub receiver: String,
    /// Method name.
    pub method: String,
    /// Orderings, in argument order.
    pub orderings: Vec<String>,
    /// Claimed discipline tag.
    pub discipline: String,
    /// Free-text justification.
    pub justification: String,
}

/// Parses "Atomic access sites" rows:
/// `| file.rs | fn | receiver | method | orderings | discipline | justification |`.
/// Rows are recognized by a `.rs` first cell and ≥ 7 cells, so they
/// coexist with the "Served objects" table in the same document.
pub fn parse_site_table(text: &str) -> Vec<SiteRow> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line
            .trim_matches('|')
            .split('|')
            .map(|c| c.trim())
            .collect();
        if cells.len() < 7 || !cells[0].ends_with(".rs") {
            continue;
        }
        rows.push(SiteRow {
            file: cells[0].to_string(),
            func: cells[1].to_string(),
            receiver: cells[2].replace('`', ""),
            method: cells[3].to_string(),
            orderings: cells[4]
                .split(',')
                .map(|o| o.trim().to_string())
                .filter(|o| !o.is_empty())
                .collect(),
            discipline: cells[5].to_string(),
            justification: cells[6].to_string(),
        });
    }
    rows
}

/// One `(method, orderings)` shape a discipline permits.
pub type DisciplineShape = (&'static str, &'static [&'static str]);

/// The allowed `(method, orderings)` shapes per discipline, plus the
/// file allowlist for `cas-loop`.
pub const DISCIPLINES: [(&str, &[DisciplineShape]); 6] = [
    (
        "pcm-cell",
        &[
            ("fetch_add", &["Relaxed"]),
            ("load", &["Relaxed"]),
            ("load", &["Acquire"]),
        ],
    ),
    (
        "swmr-slot",
        &[
            ("load", &["Relaxed"]),
            ("store", &["Release"]),
            ("load", &["Acquire"]),
        ],
    ),
    (
        "lease-flag",
        &[
            ("swap", &["AcqRel"]),
            ("store", &["Release"]),
            ("load", &["Acquire"]),
        ],
    ),
    (
        "cas-loop",
        &[
            ("load", &["Acquire"]),
            ("compare_exchange", &["AcqRel", "Acquire"]),
        ],
    ),
    (
        "monotone-merge",
        &[
            ("fetch_max", &["AcqRel"]),
            ("fetch_min", &["AcqRel"]),
            ("fetch_add", &["AcqRel"]),
            ("load", &["Acquire"]),
        ],
    ),
    ("id-alloc", &[("fetch_add", &["Relaxed"])]),
];

/// Files in which `cas-loop` rows are legal (mirrors the `rmw-hazard`
/// exemption: probabilistic at-most-once transitions need CAS).
pub const CAS_EXEMPT_FILES: [&str; 2] = ["morris_conc.rs", "min_register.rs"];

/// Whether `(method, orderings)` is an allowed shape of `discipline`.
/// `None` when the discipline name is unknown.
pub fn discipline_allows(discipline: &str, method: &str, orderings: &[String]) -> Option<bool> {
    let (_, shapes) = DISCIPLINES.iter().find(|(n, _)| *n == discipline)?;
    Some(shapes.iter().any(|(m, ords)| {
        *m == method
            && ords.len() == orderings.len()
            && ords.iter().zip(orderings).all(|(a, b)| a == b)
    }))
}

/// Best-guess discipline for a site shape (used by `ivl_lint --sites`
/// to prefill new rows; ambiguous shapes get the first match in
/// [`DISCIPLINES`] order).
pub fn guess_discipline(file: &str, method: &str, orderings: &[String]) -> Option<&'static str> {
    DISCIPLINES
        .iter()
        .filter(|(name, _)| *name != "cas-loop" || CAS_EXEMPT_FILES.contains(&file))
        .find(|(name, _)| discipline_allows(name, method, orderings) == Some(true))
        .map(|(name, _)| *name)
}

/// Renders the current tree's sites as audit-table rows, reusing the
/// discipline and justification of any existing matching row so the
/// table can be regenerated without losing its arguments.
pub fn render_site_rows(files: &[FileSites], existing: &[SiteRow]) -> String {
    let mut used = vec![false; existing.len()];
    let mut out = String::from(
        "| file | fn | receiver | method | orderings | discipline | justification |\n\
         | --- | --- | --- | --- | --- | --- | --- |\n",
    );
    for f in files {
        for s in &f.sites {
            let row = existing.iter().enumerate().find(|(i, r)| {
                !used[*i]
                    && r.file == s.file
                    && r.func == s.func
                    && r.receiver == s.receiver
                    && r.method == s.method
                    && r.orderings == s.orderings
            });
            let (discipline, justification) = match row {
                Some((i, r)) => {
                    used[i] = true;
                    (r.discipline.clone(), r.justification.clone())
                }
                None => (
                    guess_discipline(&s.file, &s.method, &s.orderings)
                        .unwrap_or("?")
                        .to_string(),
                    "TODO: justify this access".to_string(),
                ),
            };
            out.push_str(&format!(
                "| {} | {} | `{}` | {} | {} | {} | {} |\n",
                s.file,
                s.func,
                s.receiver,
                s.method,
                s.orderings_cell(),
                discipline,
                justification
            ));
        }
    }
    out
}

/// Check name used for every finding this pass reports.
pub const CHECK: &str = "atomics-conformance";

fn rel_of(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Runs the site-level conformance pass over
/// `root/crates/concurrent`, appending findings to `report`.
pub fn check_conformance(root: &Path, report: &mut LintReport) {
    let src_dir = root.join("crates").join("concurrent").join("src");
    let audit_path = root.join("crates").join("concurrent").join("ORDERINGS.md");
    let files = collect_file_sites(&src_dir);
    if files.is_empty() {
        return;
    }
    report.files_scanned += files.len();
    let audit = fs::read_to_string(&audit_path).unwrap_or_default();
    let rows = parse_site_table(&audit);
    let audit_rel = rel_of(root, &audit_path);
    let mut row_used = vec![false; rows.len()];

    for f in &files {
        let file_rel = rel_of(root, &f.path);
        for (line, ord) in &f.strays {
            report.findings.push(LintFinding {
                check: CHECK,
                file: file_rel.clone(),
                line: *line as usize,
                message: format!(
                    "`Ordering::{ord}` outside a recognized atomic access site; pass orderings \
                     literally at the access so the audit can see them"
                ),
            });
        }
        for s in &f.sites {
            if s.orderings.len() < expected_orderings(&s.method) {
                report.findings.push(LintFinding {
                    check: CHECK,
                    file: file_rel.clone(),
                    line: s.line as usize,
                    message: format!(
                        "`{}.{}` takes {} Ordering argument(s) but only {} literal(s) found; \
                         orderings must be literal at the access site",
                        s.receiver,
                        s.method,
                        expected_orderings(&s.method),
                        s.orderings.len()
                    ),
                });
                continue;
            }
            // Exact match first; then a same-site row with different
            // orderings (drift); then unaudited.
            let exact = rows.iter().enumerate().find(|(i, r)| {
                !row_used[*i]
                    && r.file == s.file
                    && r.func == s.func
                    && r.receiver == s.receiver
                    && r.method == s.method
                    && r.orderings == s.orderings
            });
            if let Some((i, _)) = exact {
                row_used[i] = true;
                continue;
            }
            let drift = rows.iter().enumerate().find(|(i, r)| {
                !row_used[*i]
                    && r.file == s.file
                    && r.func == s.func
                    && r.receiver == s.receiver
                    && r.method == s.method
            });
            match drift {
                Some((i, r)) => {
                    row_used[i] = true;
                    report.findings.push(LintFinding {
                        check: CHECK,
                        file: file_rel.clone(),
                        line: s.line as usize,
                        message: format!(
                            "ordering drift at `{}` in fn {}: code uses `{}.{}({})` but {} \
                             audits `{}` under discipline {}; re-argue the access and update the row",
                            s.receiver,
                            s.func,
                            s.receiver,
                            s.method,
                            s.orderings_cell(),
                            audit_rel,
                            r.orderings.join(", "),
                            r.discipline
                        ),
                    });
                }
                None => {
                    report.findings.push(LintFinding {
                        check: CHECK,
                        file: file_rel.clone(),
                        line: s.line as usize,
                        message: format!(
                            "unaudited atomic access site {}; add `| {} | {} | `{}` | {} | {} | \
                             <discipline> | <justification> |` to {}",
                            s.describe(),
                            s.file,
                            s.func,
                            s.receiver,
                            s.method,
                            s.orderings_cell(),
                            audit_rel
                        ),
                    });
                }
            }
        }
    }

    // Stale rows: audited sites no longer present in the code.
    for (i, r) in rows.iter().enumerate() {
        if !row_used[i] {
            report.findings.push(LintFinding {
                check: CHECK,
                file: audit_rel.clone(),
                line: 0,
                message: format!(
                    "stale site row `{} fn {}: {}.{}({})`: no matching atomic access left",
                    r.file,
                    r.func,
                    r.receiver,
                    r.method,
                    r.orderings.join(", ")
                ),
            });
        }
    }

    // Row legality: the claimed discipline must allow the shape.
    for r in &rows {
        match discipline_allows(&r.discipline, &r.method, &r.orderings) {
            None => report.findings.push(LintFinding {
                check: CHECK,
                file: audit_rel.clone(),
                line: 0,
                message: format!(
                    "unknown discipline `{}` on site row `{} fn {}`; known: {}",
                    r.discipline,
                    r.file,
                    r.func,
                    DISCIPLINES
                        .iter()
                        .map(|(n, _)| *n)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            }),
            Some(false) => report.findings.push(LintFinding {
                check: CHECK,
                file: audit_rel.clone(),
                line: 0,
                message: format!(
                    "site row `{} fn {}: {}.{}({})` is not a legal `{}` shape; either the \
                     discipline tag or the access is wrong",
                    r.file,
                    r.func,
                    r.receiver,
                    r.method,
                    r.orderings.join(", "),
                    r.discipline
                ),
            }),
            Some(true) => {}
        }
        if r.discipline == "cas-loop" && !CAS_EXEMPT_FILES.contains(&r.file.as_str()) {
            report.findings.push(LintFinding {
                check: CHECK,
                file: audit_rel.clone(),
                line: 0,
                message: format!(
                    "cas-loop discipline claimed for `{}`, which is not an exempt file ({})",
                    r.file,
                    CAS_EXEMPT_FILES.join(", ")
                ),
            });
        }
        if r.justification.is_empty() || r.justification.starts_with("TODO") {
            report.findings.push(LintFinding {
                check: CHECK,
                file: audit_rel.clone(),
                line: 0,
                message: format!(
                    "site row `{} fn {}: {}.{}` has no justification — every audited access \
                     carries its argument",
                    r.file, r.func, r.receiver, r.method
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scanner_extracts_sites_with_receivers_and_orderings() {
        let src = r#"
use std::sync::atomic::{AtomicU64, Ordering};
pub fn upd(cells: &[AtomicU64], i: usize) {
    cells[i].fetch_add(1, Ordering::Relaxed);
}
pub fn cas(x: &AtomicU64) {
    let _ = x.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire);
}
"#;
        let (sites, strays) = scan_source("t.rs", src);
        assert!(strays.is_empty(), "{strays:?}");
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].func, "upd");
        assert_eq!(sites[0].receiver, "cells[i]");
        assert_eq!(sites[0].method, "fetch_add");
        assert_eq!(sites[0].orderings, vec!["Relaxed"]);
        assert_eq!(sites[1].orderings, vec!["AcqRel", "Acquire"]);
    }

    #[test]
    fn comments_strings_and_tests_are_invisible() {
        let src = r#"
// Ordering::SeqCst in a comment
pub fn f() {
    let _ = "Ordering::Relaxed in a string";
}
#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};
    fn t(x: &AtomicU64) { x.load(Ordering::Relaxed); }
}
"#;
        let (sites, strays) = scan_source("t.rs", src);
        assert!(sites.is_empty(), "{sites:?}");
        assert!(strays.is_empty(), "{strays:?}");
    }

    #[test]
    fn indirect_orderings_are_strays() {
        let src = "pub fn f(x: &A) { let o = Ordering::Relaxed; x.load(o); }\n";
        let (sites, strays) = scan_source("t.rs", src);
        assert!(sites.is_empty());
        assert_eq!(strays, vec![(1, "Relaxed".to_string())]);
    }

    #[test]
    fn discipline_shapes() {
        let ok = |d: &str, m: &str, o: &[&str]| {
            discipline_allows(d, m, &o.iter().map(|s| s.to_string()).collect::<Vec<_>>())
        };
        assert_eq!(ok("pcm-cell", "fetch_add", &["Relaxed"]), Some(true));
        assert_eq!(ok("pcm-cell", "fetch_add", &["AcqRel"]), Some(false));
        assert_eq!(ok("swmr-slot", "store", &["Relaxed"]), Some(false));
        assert_eq!(ok("lease-flag", "swap", &["AcqRel"]), Some(true));
        assert_eq!(ok("nope", "load", &["Relaxed"]), None);
    }
}
