//! Mutation tests: plant model-discipline violations in toy step
//! machines and assert the happens-before analyzer reports each one
//! with a schedule that replays it.

use ivl_analyzer::{analyze_config, hb::replay_schedule, HbIssue};
use ivl_shmem::algorithms::IvlCounterSim;
use ivl_shmem::executor::{SimObject, SimOp, Workload};
use ivl_shmem::machine::{MemCtx, OpMachine, StepStatus};
use ivl_shmem::{FixedScheduler, Memory, RegValue, RegisterId, RoundRobinScheduler};
use ivl_spec::ProcessId;

/// A two-process toy object over one SWMR register per process.
/// `mode` selects which discipline violation process 1 commits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Bug {
    /// Process 1 writes process 0's register.
    ForeignWrite,
    /// Process 1 reads both registers in a single step.
    DoubleAccess,
    /// No bug: each process writes its own register.
    None,
}

#[derive(Clone, Debug)]
struct ToyObject {
    regs: Vec<RegisterId>,
    bug: Bug,
}

impl ToyObject {
    fn new(mem: &mut Memory, bug: Bug) -> Self {
        ToyObject {
            regs: mem.alloc_swmr_array(2),
            bug,
        }
    }
}

impl SimObject for ToyObject {
    fn begin_op(&mut self, process: ProcessId, op: &SimOp) -> Box<dyn OpMachine> {
        let value = match op {
            SimOp::Update(v) => *v,
            SimOp::Query(_) => 0,
        };
        let target = match (self.bug, process.0) {
            // The planted SWMR violation: p1 writes p0's register.
            (Bug::ForeignWrite, 1) => self.regs[0],
            _ => self.regs[process.0 as usize],
        };
        Box::new(ToyMachine {
            regs: self.regs.clone(),
            target,
            value,
            double: self.bug == Bug::DoubleAccess && process.0 == 1,
        })
    }

    fn num_processes(&self) -> usize {
        2
    }

    fn box_clone(&self) -> Box<dyn SimObject> {
        Box::new(self.clone())
    }
}

#[derive(Clone, Debug)]
struct ToyMachine {
    regs: Vec<RegisterId>,
    target: RegisterId,
    value: u64,
    double: bool,
}

impl OpMachine for ToyMachine {
    fn step(&mut self, ctx: &mut MemCtx<'_>) -> StepStatus {
        if self.double {
            // Two shared accesses in one "step": breaks the uniform
            // step-complexity measure.
            let a = ctx.read(self.regs[0]).as_int();
            let b = ctx.read(self.regs[1]).as_int();
            let _ = a + b;
            return StepStatus::Done(None);
        }
        ctx.write(self.target, RegValue::Int(self.value));
        StepStatus::Done(None)
    }

    fn box_clone(&self) -> Box<dyn OpMachine> {
        Box::new(self.clone())
    }
}

fn toy_workloads() -> Vec<Workload> {
    vec![
        Workload {
            ops: vec![SimOp::Update(7)],
        },
        Workload {
            ops: vec![SimOp::Update(9)],
        },
    ]
}

#[test]
fn planted_swmr_violation_is_reported_and_replayable() {
    let mut mem = Memory::new();
    let obj = ToyObject::new(&mut mem, Bug::ForeignWrite);
    let (report, _) = analyze_config(
        mem,
        Box::new(obj.clone()),
        toy_workloads(),
        RoundRobinScheduler::new(),
        1_000,
    );
    assert!(!report.is_clean(), "planted bug must be found");
    let finding = report
        .findings
        .iter()
        .find(|f| matches!(f.issue, HbIssue::SwmrViolation { .. }))
        .expect("SWMR violation reported");
    assert_eq!(finding.process, 1, "process 1 is the culprit");
    assert!(matches!(
        finding.issue,
        HbIssue::SwmrViolation { owner: Some(0), .. }
    ));
    // The foreign write also manifests behaviourally: p0's write and
    // p1's write to the same register are happens-before unordered.
    assert!(
        report
            .findings
            .iter()
            .any(|f| matches!(f.issue, HbIssue::WwRace { .. })),
        "unordered writes must surface as a WW race: {report:?}"
    );

    // The schedule replays to the same finding.
    let mut mem2 = Memory::new();
    let obj2 = ToyObject::new(&mut mem2, Bug::ForeignWrite);
    let (replayed, _) = replay_schedule(mem2, Box::new(obj2), toy_workloads(), &finding.schedule);
    let again = replayed
        .findings
        .iter()
        .find(|f| matches!(f.issue, HbIssue::SwmrViolation { .. }))
        .expect("replay reproduces the violation");
    assert_eq!(again.step, finding.step);
    assert_eq!(again.schedule, finding.schedule);
}

#[test]
fn planted_double_access_is_reported_and_replayable() {
    let mut mem = Memory::new();
    let obj = ToyObject::new(&mut mem, Bug::DoubleAccess);
    let (report, _) = analyze_config(
        mem,
        Box::new(obj),
        toy_workloads(),
        RoundRobinScheduler::new(),
        1_000,
    );
    let finding = report
        .findings
        .iter()
        .find(|f| matches!(f.issue, HbIssue::NonAtomicStep { accesses: 2 }))
        .expect("non-atomic step reported");
    assert_eq!(finding.process, 1);

    let mut mem2 = Memory::new();
    let obj2 = ToyObject::new(&mut mem2, Bug::DoubleAccess);
    let (replayed, _) = replay_schedule(mem2, Box::new(obj2), toy_workloads(), &finding.schedule);
    assert!(replayed
        .findings
        .iter()
        .any(
            |f| matches!(f.issue, HbIssue::NonAtomicStep { accesses: 2 }) && f.step == finding.step
        ));
}

#[test]
fn clean_toy_object_passes() {
    let mut mem = Memory::new();
    let obj = ToyObject::new(&mut mem, Bug::None);
    let (report, _) = analyze_config(
        mem,
        Box::new(obj),
        toy_workloads(),
        RoundRobinScheduler::new(),
        1_000,
    );
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.rw_conflicts, 0);
}

#[test]
fn ivl_counter_is_clean_but_shows_intermediate_reads() {
    // Algorithm 2 under a schedule that interleaves an update between
    // the reader's register scans: SWMR discipline holds (no
    // findings), while the unordered read->write pair count is
    // positive — the intermediate-read pattern is information, not an
    // error.
    let mut mem = Memory::new();
    let obj = IvlCounterSim::new(&mut mem, 2);
    let workloads = vec![
        Workload {
            ops: vec![SimOp::Update(5)],
        },
        Workload {
            ops: vec![SimOp::Query(0)],
        },
    ];
    // Reader starts (reads r0), then the updater writes r0, then the
    // reader finishes.
    let (report, result) = analyze_config(
        mem,
        Box::new(obj),
        workloads,
        FixedScheduler::new(vec![1, 0, 1]),
        1_000,
    );
    assert!(report.is_clean(), "{}", report.render());
    assert!(
        report.rw_conflicts > 0,
        "overlap must register as informational rw pairs"
    );
    let rw = report.first_rw_conflict.as_ref().expect("first rw kept");
    assert_eq!(rw.reader, 1);
    assert_eq!(rw.writer, 0);
    assert_eq!(result.stats.len(), 2);
    // JSON renders without panicking and mentions cleanliness.
    assert!(report.to_json().contains("\"clean\":true"));
}
