//! End-to-end mutation self-validation against the *real* repository:
//! the acceptance gate behind `ivl_lint --mutate`.
//!
//! The harness plants one weakened-ordering mutant per strong literal
//! in `crates/concurrent` (plus an injected CAS in a PCM update path)
//! and must catch every single one, from a clean baseline. This test
//! is what makes the lint rules *demonstrated* rather than assumed:
//! if someone relaxes a check (or a table row) far enough that a
//! weakening slips through, this fails — not a fixture, the actual
//! tree.

use ivl_analyzer::{run_mutations, MutationReport};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("repo root")
}

/// Each test gets its own scratch dir — the harness deletes mutant
/// trees as it goes, and tests run in parallel.
fn run(name: &str) -> MutationReport {
    let scratch = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&scratch);
    let report = run_mutations(&repo_root(), &scratch).expect("mutation harness I/O");
    let _ = std::fs::remove_dir_all(&scratch);
    report
}

#[test]
fn every_mutant_is_caught_from_a_clean_baseline() {
    let report = run("mut_fx_all_caught");
    assert!(
        report.baseline_clean,
        "baseline dirty: {:?}",
        report.baseline_findings
    );
    // The acceptance floor is 6 distinct mutants; the real tree
    // carries far more strong orderings than that.
    assert!(
        report.outcomes.len() >= 6,
        "only {} mutant(s): {}",
        report.outcomes.len(),
        report.render()
    );
    let escaped: Vec<_> = report.outcomes.iter().filter(|o| !o.caught).collect();
    assert!(escaped.is_empty(), "escaped mutants: {escaped:?}");
    assert!(report.is_valid(), "{}", report.render());
}

#[test]
fn required_mutant_classes_are_covered() {
    let report = run("mut_fx_classes");
    for class in [
        "release-store",
        "acquire-load",
        "acqrel-rmw",
        "injected-cas",
    ] {
        assert!(
            report.outcomes.iter().any(|o| o.class == class && o.caught),
            "class {class} missing or escaped: {}",
            report.render()
        );
    }
    // The named centerpiece mutants from the issue: the sharded.rs
    // lease pair, and the CAS injected into pcm.rs.
    assert!(report.outcomes.iter().any(|o| {
        o.file == "sharded.rs" && o.class == "release-store" && o.description.contains("drop")
    }));
    assert!(report
        .outcomes
        .iter()
        .any(|o| o.file == "sharded.rs" && o.description.contains("acquire_free_shard")));
    assert!(report
        .outcomes
        .iter()
        .any(|o| o.file == "pcm.rs" && o.class == "injected-cas"));
}

#[test]
fn lease_weakening_is_also_caught_behaviourally() {
    // The static catch (table drift) and the behavioural catch (the
    // HB analyzer's step model of the handoff) must agree.
    let report = run("mut_fx_lease");
    assert!(report.lease_hb_differential, "{}", report.render());
    let correct = ivl_analyzer::lease_handoff_step_model(false);
    let weakened = ivl_analyzer::lease_handoff_step_model(true);
    let ww = |r: &ivl_analyzer::HbReport| {
        r.findings
            .iter()
            .any(|f| matches!(f.issue, ivl_analyzer::HbIssue::WwRace { .. }))
    };
    assert!(!ww(&correct), "{}", correct.render());
    assert!(ww(&weakened), "{}", weakened.render());
}

#[test]
fn mutation_json_schema_is_stable() {
    let report = run("mut_fx_json");
    let json = report.to_json();
    for key in [
        "\"valid\":true",
        "\"baseline_clean\":true",
        "\"baseline_findings\":[]",
        "\"mutants\":",
        "\"caught\":",
        "\"lease_hb_differential\":true",
        "\"outcomes\":[",
        "\"class\":\"release-store\"",
        "\"class\":\"injected-cas\"",
        "\"finding\":\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}
