//! Property tests for the `ivl-syn` lexer and the atomic-site
//! scanner built on it.
//!
//! Two properties anchor the whole token-level lint layer:
//!
//! 1. **Byte-exact round-trip** — concatenating the token texts of
//!    `lex(src)` reproduces `src` exactly, for arbitrary
//!    concatenations of Rust-like fragments (comments, nested block
//!    comments, strings, raw strings, lifetimes, char literals,
//!    ranges). Every byte lands in exactly one token, so no code can
//!    hide between tokens.
//! 2. **Scanner vs. the regex era** — the orderings the token scanner
//!    reports (site arguments + strays) are a *subset* of what the
//!    old `Ordering::` substring count saw, with exact expected
//!    counts per fragment: code orderings are all found, while
//!    comments, strings and the trailing `#[cfg(test)]` module — the
//!    regex era's false positives — are invisible.

use ivl_analyzer::atomics::scan_source;
use ivl_analyzer::syn::lex;
use proptest::prelude::*;

/// Fragment pool: `(source, orderings the token scanner must see,
/// "Ordering::" substring occurrences the old regex scanner saw)`.
const FRAGMENTS: &[(&str, usize, usize)] = &[
    (
        "pub fn fa(x: &std::sync::atomic::AtomicU64) { x.fetch_add(1, Ordering::Relaxed); }",
        1,
        1,
    ),
    (
        "pub fn sr(x: &std::sync::atomic::AtomicU64) { x.store(7, Ordering::Release); }",
        1,
        1,
    ),
    (
        "pub fn cas(x: &std::sync::atomic::AtomicU64) { let _ = x.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire); }",
        2,
        2,
    ),
    // An indirect ordering is still token-visible — as a stray.
    ("pub fn stray() { let _o = Ordering::SeqCst; }", 1, 1),
    // The regex era's false positives: text, not code.
    ("// a comment mentioning Ordering::SeqCst", 0, 1),
    ("/* block /* nested Ordering::Acquire */ comment */", 0, 1),
    (
        "pub fn s() -> &'static str { \"Ordering::Relaxed in a string\" }",
        0,
        1,
    ),
    (
        "pub fn raw() -> &'static str { r#\"Ordering::Release raw\"# }",
        0,
        1,
    ),
    // Ordering-free shapes that stress the lexer's tricky corners.
    ("pub fn plain(a: u64, b: u64) -> u64 { a.wrapping_mul(b) }", 0, 0),
    (
        "pub fn lt<'a>(s: &'a str, c: char) -> bool { s.starts_with(c) && c != 'x' }",
        0,
        0,
    ),
    ("pub fn rng() -> u64 { (0..10).map(|i| i * 2).sum() }", 0, 0),
    ("pub fn bytes() -> (&'static [u8], u8) { (b\"x\\\"y\", b'z') }", 0, 0),
];

/// A trailing test module with one atomic access: one substring hit
/// for the regex era, zero for the token scanner.
const TEST_TAIL: &str = "#[cfg(test)]\nmod tests {\n    use std::sync::atomic::{AtomicU64, Ordering};\n    #[test]\n    fn t() { AtomicU64::new(0).load(Ordering::SeqCst); }\n}\n";

fn build_source(picks: &[usize], with_test_tail: bool) -> (String, usize, usize) {
    let mut src = String::new();
    let mut code_ords = 0;
    let mut text_ords = 0;
    for &p in picks {
        let (frag, c, t) = FRAGMENTS[p % FRAGMENTS.len()];
        src.push_str(frag);
        src.push('\n');
        code_ords += c;
        text_ords += t;
    }
    if with_test_tail {
        src.push_str(TEST_TAIL);
        text_ords += 1;
    }
    (src, code_ords, text_ords)
}

/// What the token scanner reports: site ordering arguments + strays.
fn token_orderings(src: &str) -> usize {
    let (sites, strays) = scan_source("f.rs", src);
    sites.iter().map(|s| s.orderings.len()).sum::<usize>() + strays.len()
}

/// The regex-era oracle: raw substring occurrences.
fn substring_orderings(src: &str) -> usize {
    src.matches("Ordering::").count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn lex_round_trips_byte_for_byte(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..24),
        with_test_tail in any::<bool>(),
    ) {
        let (src, _, _) = build_source(&picks, with_test_tail);
        let joined: String = lex(&src).iter().map(|t| t.text).collect();
        prop_assert_eq!(&joined, &src);
    }

    #[test]
    fn token_scanner_sees_code_and_only_code(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..24),
        with_test_tail in any::<bool>(),
    ) {
        let (src, code_ords, text_ords) = build_source(&picks, with_test_tail);
        let tok = token_orderings(&src);
        let sub = substring_orderings(&src);
        // Exact counts: everything in code (and nothing else).
        prop_assert_eq!(tok, code_ords, "token scanner on:\n{}", src);
        prop_assert_eq!(sub, text_ords, "substring oracle on:\n{}", src);
        // The subset relation the migration preserves: the token
        // scanner never reports an ordering the regex era missed.
        prop_assert!(tok <= sub, "token {} > substring {}:\n{}", tok, sub, src);
    }
}

/// The same two properties over every real source file of the
/// workspace's lexed crates — the lexer must round-trip the code it
/// is actually pointed at, and the token scanner must never exceed
/// the substring oracle on it.
#[test]
fn real_sources_round_trip_and_scanner_is_subset() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let mut files = Vec::new();
    for krate in ["concurrent", "analyzer", "service", "shmem", "spec"] {
        collect_rs(&root.join("crates").join(krate).join("src"), &mut files);
    }
    assert!(files.len() >= 20, "expected a real tree, found {files:?}");
    for path in files {
        let src = std::fs::read_to_string(&path).unwrap();
        let joined: String = lex(&src).iter().map(|t| t.text).collect();
        assert_eq!(joined, src, "round-trip failed for {}", path.display());
        assert!(
            token_orderings(&src) <= substring_orderings(&src),
            "token scanner exceeded the substring oracle in {}",
            path.display()
        );
    }
}

fn collect_rs(dir: &std::path::Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|x| x == "rs") {
            out.push(p);
        }
    }
}
