//! Lint engine tests: the real repository must pass every check, and
//! fixture trees with planted violations must fail the right one.
//!
//! Since PR 7 the passes run on the `ivl-syn` token stream, so the
//! fixtures also pin the *negative* space: orderings in comments,
//! strings and `#[cfg(test)]` modules must NOT produce findings (or
//! satisfy audit rows), and stale `lint:allow` annotations must.

use ivl_analyzer::run_lints;
use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("repo root")
}

/// A scratch repository tree under the target directory; removed on
/// drop so reruns start clean.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Self {
        let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("fixture root");
        Fixture { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("dirs");
        fs::write(path, content).expect("write fixture file");
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const CLEAN_LIB: &str = "//! Fixture crate.\n#![forbid(unsafe_code)]\npub fn f() {}\n";

#[test]
fn real_repository_lints_clean() {
    let report = run_lints(&repo_root());
    assert!(report.files_scanned > 20, "{}", report.files_scanned);
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn missing_forbid_unsafe_is_flagged() {
    let fx = Fixture::new("lint_fx_attrs");
    fx.write("crates/good/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/bad/src/lib.rs",
        "//! No forbid attr.\npub fn f() {}\n",
    );
    let report = run_lints(&fx.root);
    assert_eq!(report.findings.len(), 1, "{}", report.render());
    let f = &report.findings[0];
    assert_eq!(f.check, "crate-attrs");
    assert_eq!(f.file, "crates/bad/src/lib.rs");
}

#[test]
fn forbid_in_a_comment_does_not_satisfy_crate_attrs() {
    let fx = Fixture::new("lint_fx_attrs_comment");
    fx.write(
        "crates/bad/src/lib.rs",
        "//! Mentions #![forbid(unsafe_code)] in prose only.\npub fn f() {}\n",
    );
    let report = run_lints(&fx.root);
    assert_eq!(report.findings.len(), 1, "{}", report.render());
    assert_eq!(report.findings[0].check, "crate-attrs");
}

#[test]
fn conformance_catches_every_planted_violation_class() {
    let fx = Fixture::new("lint_fx_conformance");
    fx.write("crates/concurrent/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/concurrent/src/a.rs",
        concat!(
            "use std::sync::atomic::{AtomicU64, Ordering};\n",
            "pub fn upd(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n",
            "pub fn weak(c: &AtomicU64) { c.store(1, Ordering::Relaxed); }\n",
            "pub fn newsite(c: &AtomicU64) { c.load(Ordering::Acquire); }\n",
            "pub fn indirect() { let _o = Ordering::SeqCst; }\n",
        ),
    );
    // upd is audited correctly; weak's row still claims Release
    // (ordering drift); newsite has no row; plus one stale row, one
    // row whose shape its discipline forbids, one cas-loop row in a
    // non-exempt file, and one row with no justification.
    fx.write(
        "crates/concurrent/ORDERINGS.md",
        concat!(
            "| file | fn | receiver | method | orderings | discipline | justification |\n",
            "| --- | --- | --- | --- | --- | --- | --- |\n",
            "| a.rs | upd | `c` | fetch_add | Relaxed | pcm-cell | commutative cell |\n",
            "| a.rs | weak | `c` | store | Release | swmr-slot | writer publish |\n",
            "| a.rs | ghost | `g` | load | Acquire | swmr-slot | access was removed |\n",
            "| a.rs | bad | `b` | store | Release | pcm-cell | mis-tagged shape |\n",
            "| a.rs | casf | `x` | compare_exchange | AcqRel, Acquire | cas-loop | wrong file |\n",
            "| a.rs | nojust | `n` | load | Acquire | swmr-slot |  |\n",
        ),
    );
    let report = run_lints(&fx.root);
    assert!(
        report
            .findings
            .iter()
            .all(|f| f.check == "atomics-conformance"),
        "{}",
        report.render()
    );
    let has = |needle: &str| report.findings.iter().any(|f| f.message.contains(needle));
    assert!(has("ordering drift"), "{}", report.render());
    assert!(has("unaudited atomic access site"), "{}", report.render());
    assert!(
        has("outside a recognized atomic access site"),
        "{}",
        report.render()
    );
    assert!(has("stale site row"), "{}", report.render());
    assert!(has("not a legal `pcm-cell` shape"), "{}", report.render());
    assert!(has("not an exempt file"), "{}", report.render());
    assert!(has("no justification"), "{}", report.render());
    // The drifted site anchors to its line in the code.
    assert!(report
        .findings
        .iter()
        .any(|f| f.file.ends_with("a.rs") && f.line == 3 && f.message.contains("drift")));
}

#[test]
fn orderings_in_comments_strings_and_tests_need_no_rows() {
    let fx = Fixture::new("lint_fx_invisible");
    fx.write("crates/concurrent/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/concurrent/src/quiet.rs",
        concat!(
            "//! Doc prose mentioning Ordering::Relaxed and x.load(Ordering::Acquire).\n",
            "/* block comment: c.fetch_add(1, Ordering::Relaxed) */\n",
            "pub fn f() -> &'static str { \"Ordering::SeqCst\" }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    use std::sync::atomic::{AtomicU64, Ordering};\n",
            "    #[test]\n",
            "    fn t() { AtomicU64::new(0).load(Ordering::SeqCst); }\n",
            "}\n",
        ),
    );
    // No audit table at all: with no real sites, none is needed —
    // this is exactly the regex era's false-positive class.
    let report = run_lints(&fx.root);
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn non_literal_ordering_is_flagged() {
    let fx = Fixture::new("lint_fx_nonliteral");
    fx.write("crates/concurrent/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/concurrent/src/c.rs",
        concat!(
            "use std::sync::atomic::{AtomicU64, Ordering};\n",
            "pub fn f(c: &AtomicU64, o: Ordering) {\n",
            "    let _ = c.compare_exchange(0, 1, Ordering::AcqRel, o);\n",
            "}\n",
        ),
    );
    let report = run_lints(&fx.root);
    assert_eq!(report.findings.len(), 1, "{}", report.render());
    let f = &report.findings[0];
    assert_eq!(f.check, "atomics-conformance");
    assert_eq!(f.line, 3);
    assert!(f.message.contains("must be literal"), "{}", f.message);
}

#[test]
fn cas_in_pcm_update_path_is_flagged() {
    let fx = Fixture::new("lint_fx_rmw");
    fx.write("crates/concurrent/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/concurrent/src/pcm.rs",
        concat!(
            "pub fn upd(c: &std::sync::atomic::AtomicU64) {\n",
            "    let _ = c.compare_exchange(0, 1, O, O);\n",
            "}\n",
            "// compare_exchange in a comment is NOT a hazard\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t(c: &A) { let _ = c.compare_exchange(0, 1, O, O); }\n",
            "}\n",
        ),
    );
    // CAS in the exempt Morris module is fine.
    fx.write(
        "crates/concurrent/src/morris_conc.rs",
        "pub fn m(c: &A) { let _ = c.compare_exchange(0, 1, O, O); }\n",
    );
    let report = run_lints(&fx.root);
    let hazards: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.check == "rmw-hazard")
        .collect();
    assert_eq!(hazards.len(), 1, "{}", report.render());
    assert!(hazards[0].file.ends_with("pcm.rs"));
    assert_eq!(hazards[0].line, 2);
}

#[test]
fn hot_path_sleep_is_flagged_and_markers_or_tests_are_exempt() {
    let fx = Fixture::new("lint_fx_sleep");
    fx.write("crates/service/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/service/src/server.rs",
        concat!(
            "pub fn serve() {\n",
            "    std::thread::sleep(d); // hot path: flagged\n",
            "    // lint:allow sleep — deliberate backoff\n",
            "    std::thread::sleep(d); // annotated: allowed\n",
            "}\n",
            "// \"thread::sleep\" in a string or comment is not a sleep\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() { std::thread::sleep(d); } // test code: allowed\n",
            "}\n",
        ),
    );
    let report = run_lints(&fx.root);
    assert_eq!(report.findings.len(), 1, "{}", report.render());
    let f = &report.findings[0];
    assert_eq!(f.check, "no-sleep");
    assert_eq!(f.line, 2);
}

#[test]
fn stale_allow_annotation_is_flagged() {
    let fx = Fixture::new("lint_fx_stale_allow");
    fx.write("crates/service/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/service/src/server.rs",
        concat!(
            "pub fn serve() {\n",
            "    // lint:allow sleep — the backoff this excused is long gone\n",
            "    do_work();\n",
            "}\n",
        ),
    );
    let report = run_lints(&fx.root);
    assert_eq!(report.findings.len(), 1, "{}", report.render());
    let f = &report.findings[0];
    assert_eq!(f.check, "stale-allow");
    assert_eq!(f.line, 2);
    assert!(f.message.contains("delete it"), "{}", f.message);
}

#[test]
fn duplicate_frame_tags_are_flagged() {
    let fx = Fixture::new("lint_fx_tags");
    fx.write("crates/service/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/service/src/protocol.rs",
        concat!(
            "const OP_UPDATE: u8 = 0x01;\n",
            "const OP_QUERY: u8 = 0x02;\n",
            "const OP_CLASH: u8 = 0x01;\n",
            "pub const NOT_A_TAG: u32 = 1;\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn roundtrip() { let _ = (OP_UPDATE, OP_QUERY, OP_CLASH); }\n",
            "}\n",
        ),
    );
    // Both bytes documented, so frame-docs stays quiet and the
    // collision is the only finding.
    fx.write(
        "README.md",
        "| frame | opcode |\n|---|---|\n| `UPDATE` | `0x01` |\n| `QUERY` | `0x02` |\n",
    );
    let report = run_lints(&fx.root);
    assert_eq!(report.findings.len(), 1, "{}", report.render());
    let f = &report.findings[0];
    assert_eq!(f.check, "frame-tags");
    assert_eq!(f.line, 3);
    assert!(f.message.contains("OP_UPDATE"));
}

#[test]
fn undocumented_opcode_is_flagged() {
    let fx = Fixture::new("lint_fx_frame_docs");
    fx.write("crates/service/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/service/src/protocol.rs",
        concat!(
            "const OP_UPDATE: u8 = 0x01;\n",
            "const OP_NEW: u8 = 0x15;\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn roundtrip() { let _ = (OP_UPDATE, OP_NEW); }\n",
            "}\n",
        ),
    );
    fx.write(
        "README.md",
        "prose mentioning 0x15 outside a table does not count\n| `UPDATE` | `0x01` | body | reply |\n",
    );
    let report = run_lints(&fx.root);
    assert_eq!(report.findings.len(), 1, "{}", report.render());
    let f = &report.findings[0];
    assert_eq!(f.check, "frame-docs");
    assert_eq!(f.line, 2);
    assert!(f.message.contains("OP_NEW"), "{}", f.message);
    assert!(f.message.contains("0x15"), "{}", f.message);
    assert!(f.message.contains("README"), "{}", f.message);
}

#[test]
fn untested_opcode_is_flagged() {
    // Documented in the README but never referenced from the file's
    // test module: the frame-docs check's round-trip leg fires. A
    // mention in non-test code (the decoder) does not count.
    let fx = Fixture::new("lint_fx_frame_tests");
    fx.write("crates/service/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/service/src/protocol.rs",
        concat!(
            "const OP_UPDATE: u8 = 0x01;\n",
            "const OP_NEW: u8 = 0x15;\n",
            "fn decode(op: u8) -> bool { op == OP_NEW }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn roundtrip() { let _ = OP_UPDATE; }\n",
            "}\n",
        ),
    );
    fx.write(
        "README.md",
        "| `UPDATE` | `0x01` | body | reply |\n| `NEW` | `0x15` | body | reply |\n",
    );
    let report = run_lints(&fx.root);
    assert_eq!(report.findings.len(), 1, "{}", report.render());
    let f = &report.findings[0];
    assert_eq!(f.check, "frame-docs");
    assert_eq!(f.line, 2);
    assert!(f.message.contains("OP_NEW"), "{}", f.message);
    assert!(f.message.contains("round-trip test"), "{}", f.message);
}

#[test]
fn unlisted_served_objects_are_flagged() {
    let fx = Fixture::new("lint_fx_served");
    fx.write("crates/service/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/service/src/objects.rs",
        concat!(
            "impl ServedObject for ServedListed {\n}\n",
            "impl ServedObject for ServedUnlisted {\n}\n",
        ),
    );
    // ServedListed has a row; ServedUnlisted does not; ServedGhost is
    // a stale row with no implementation left.
    fx.write(
        "crates/concurrent/ORDERINGS.md",
        concat!(
            "| served object | kind | recorded functional & verdict argument |\n",
            "| --- | --- | --- |\n",
            "| ServedListed | cm | records the estimate, monotone |\n",
            "| ServedGhost | hll | implementation was removed |\n",
        ),
    );
    let report = run_lints(&fx.root);
    let served: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.check == "served-objects")
        .collect();
    assert_eq!(served.len(), 2, "{}", report.render());
    assert!(served.iter().any(|f| f.file.ends_with("objects.rs")
        && f.line == 3
        && f.message.contains("no row for it")));
    assert!(served.iter().any(|f| f.file.ends_with("ORDERINGS.md")
        && f.message
            .contains("stale served-objects row for ServedGhost")));
}

#[test]
fn envelope_variant_missing_from_compose_is_flagged() {
    let fx = Fixture::new("lint_fx_compose");
    fx.write("crates/service/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/service/src/envelope.rs",
        concat!(
            "pub enum ErrorEnvelope {\n",
            "    /// Handled below.\n",
            "    Frequency(Envelope),\n",
            "    Cardinality {\n",
            "        estimate: f64,\n",
            "        observed: u64,\n",
            "    },\n",
            "}\n",
            "impl ErrorEnvelope {\n",
            "    pub fn compose(parts: &[Self]) -> Result<Self, ComposeError> {\n",
            "        match parts {\n",
            "            [ErrorEnvelope::Frequency(head), ..] => todo!(),\n",
            "            _ => Err(ComposeError::KindMismatch),\n",
            "        }\n",
            "    }\n",
            "    pub fn observed(&self) -> u64 {\n",
            "        0\n",
            "    }\n",
            "}\n",
        ),
    );
    let report = run_lints(&fx.root);
    let compose: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.check == "envelope-compose")
        .collect();
    assert_eq!(compose.len(), 1, "{}", report.render());
    let f = compose[0];
    assert!(f.file.ends_with("envelope.rs"));
    assert_eq!(f.line, 4);
    assert!(f.message.contains("ErrorEnvelope::Cardinality"));
}

#[test]
fn json_report_shape_is_stable() {
    let fx = Fixture::new("lint_fx_json");
    fx.write("crates/x/src/lib.rs", "pub fn f() {}\n");
    let report = run_lints(&fx.root);
    let json = report.to_json();
    assert!(json.contains("\"clean\":false"));
    assert!(json.contains("\"check\":\"crate-attrs\""));
    // The full checks roster, in execution order — the README schema
    // and the human renderer both key off this list.
    assert!(
        json.contains(concat!(
            "\"checks\":[\"crate-attrs\",\"atomics-conformance\",\"rmw-hazard\",",
            "\"no-sleep\",\"stale-allow\",\"frame-tags\",\"frame-docs\",",
            "\"served-objects\",\"envelope-compose\"]"
        )),
        "{json}"
    );
}
