//! Lint engine tests: the real repository must pass every check, and
//! fixture trees with planted violations must fail the right one.

use ivl_analyzer::run_lints;
use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .expect("repo root")
}

/// A scratch repository tree under the target directory; removed on
/// drop so reruns start clean.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Self {
        let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("fixture root");
        Fixture { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("dirs");
        fs::write(path, content).expect("write fixture file");
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const CLEAN_LIB: &str = "//! Fixture crate.\n#![forbid(unsafe_code)]\npub fn f() {}\n";

#[test]
fn real_repository_lints_clean() {
    let report = run_lints(&repo_root());
    assert!(report.files_scanned > 20, "{}", report.files_scanned);
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn missing_forbid_unsafe_is_flagged() {
    let fx = Fixture::new("lint_fx_attrs");
    fx.write("crates/good/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/bad/src/lib.rs",
        "//! No forbid attr.\npub fn f() {}\n",
    );
    let report = run_lints(&fx.root);
    assert_eq!(report.findings.len(), 1, "{}", report.render());
    let f = &report.findings[0];
    assert_eq!(f.check, "crate-attrs");
    assert_eq!(f.file, "crates/bad/src/lib.rs");
}

#[test]
fn unaudited_and_drifted_orderings_are_flagged() {
    let fx = Fixture::new("lint_fx_orderings");
    fx.write(
        "crates/concurrent/src/lib.rs",
        &format!("{CLEAN_LIB}pub mod a;\npub mod b;\n"),
    );
    fx.write(
        "crates/concurrent/src/a.rs",
        "pub fn f() { let _ = (Ordering::Relaxed, Ordering::Acquire); }\n",
    );
    fx.write(
        "crates/concurrent/src/b.rs",
        "pub fn g() { let _ = Ordering::SeqCst; }\n",
    );
    // a.rs audited with a stale count; b.rs not audited at all; one
    // stale row for a file that does not exist.
    fx.write(
        "crates/concurrent/ORDERINGS.md",
        "| file | count | justification |\n| --- | --- | --- |\n| a.rs | 1 | stale count |\n| ghost.rs | 3 | file is gone |\n",
    );
    let report = run_lints(&fx.root);
    let checks: Vec<&str> = report.findings.iter().map(|f| f.check).collect();
    assert_eq!(checks, vec!["ordering-audit"; 3], "{}", report.render());
    assert!(report
        .findings
        .iter()
        .any(|f| f.file.ends_with("a.rs") && f.message.contains("audits 1")));
    assert!(report
        .findings
        .iter()
        .any(|f| f.file.ends_with("b.rs") && f.message.contains("no audit row")));
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("stale audit row for ghost.rs")));
}

#[test]
fn cas_in_pcm_update_path_is_flagged() {
    let fx = Fixture::new("lint_fx_rmw");
    fx.write("crates/concurrent/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/concurrent/src/pcm.rs",
        "pub fn upd(c: &std::sync::atomic::AtomicU64) {\n    let _ = c.compare_exchange(0, 1, O, O);\n}\n",
    );
    // CAS in the exempt Morris module is fine.
    fx.write(
        "crates/concurrent/src/morris_conc.rs",
        "pub fn m(c: &A) { let _ = c.compare_exchange(0, 1, O, O); }\n",
    );
    let report = run_lints(&fx.root);
    assert_eq!(report.findings.len(), 1, "{}", report.render());
    let f = &report.findings[0];
    assert_eq!(f.check, "rmw-hazard");
    assert!(f.file.ends_with("pcm.rs"));
    assert_eq!(f.line, 2);
}

#[test]
fn hot_path_sleep_is_flagged_and_markers_or_tests_are_exempt() {
    let fx = Fixture::new("lint_fx_sleep");
    fx.write("crates/service/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/service/src/server.rs",
        concat!(
            "pub fn serve() {\n",
            "    std::thread::sleep(d); // hot path: flagged\n",
            "    // lint:allow sleep — deliberate backoff\n",
            "    std::thread::sleep(d); // annotated: allowed\n",
            "}\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    fn t() { std::thread::sleep(d); } // test code: allowed\n",
            "}\n",
        ),
    );
    let report = run_lints(&fx.root);
    assert_eq!(report.findings.len(), 1, "{}", report.render());
    let f = &report.findings[0];
    assert_eq!(f.check, "no-sleep");
    assert_eq!(f.line, 2);
}

#[test]
fn duplicate_frame_tags_are_flagged() {
    let fx = Fixture::new("lint_fx_tags");
    fx.write("crates/service/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/service/src/protocol.rs",
        concat!(
            "const OP_UPDATE: u8 = 0x01;\n",
            "const OP_QUERY: u8 = 0x02;\n",
            "const OP_CLASH: u8 = 0x01;\n",
            "pub const NOT_A_TAG: u32 = 1;\n",
        ),
    );
    let report = run_lints(&fx.root);
    assert_eq!(report.findings.len(), 1, "{}", report.render());
    let f = &report.findings[0];
    assert_eq!(f.check, "frame-tags");
    assert_eq!(f.line, 3);
    assert!(f.message.contains("OP_UPDATE"));
}

#[test]
fn unlisted_served_objects_are_flagged() {
    let fx = Fixture::new("lint_fx_served");
    fx.write("crates/service/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/service/src/objects.rs",
        concat!(
            "impl ServedObject for ServedListed {\n}\n",
            "impl ServedObject for ServedUnlisted {\n}\n",
        ),
    );
    // ServedListed has a row; ServedUnlisted does not; ServedGhost is
    // a stale row with no implementation left.
    fx.write(
        "crates/concurrent/ORDERINGS.md",
        concat!(
            "| served object | kind | recorded functional & verdict argument |\n",
            "| --- | --- | --- |\n",
            "| ServedListed | cm | records the estimate, monotone |\n",
            "| ServedGhost | hll | implementation was removed |\n",
        ),
    );
    let report = run_lints(&fx.root);
    let served: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.check == "served-objects")
        .collect();
    assert_eq!(served.len(), 2, "{}", report.render());
    assert!(served.iter().any(|f| f.file.ends_with("objects.rs")
        && f.line == 3
        && f.message.contains("no row for it")));
    assert!(served.iter().any(|f| f.file.ends_with("ORDERINGS.md")
        && f.message
            .contains("stale served-objects row for ServedGhost")));
}

#[test]
fn envelope_variant_missing_from_compose_is_flagged() {
    let fx = Fixture::new("lint_fx_compose");
    fx.write("crates/service/src/lib.rs", CLEAN_LIB);
    fx.write(
        "crates/service/src/envelope.rs",
        concat!(
            "pub enum ErrorEnvelope {\n",
            "    /// Handled below.\n",
            "    Frequency(Envelope),\n",
            "    Cardinality {\n",
            "        estimate: f64,\n",
            "        observed: u64,\n",
            "    },\n",
            "}\n",
            "impl ErrorEnvelope {\n",
            "    pub fn compose(parts: &[Self]) -> Result<Self, ComposeError> {\n",
            "        match parts {\n",
            "            [ErrorEnvelope::Frequency(head), ..] => todo!(),\n",
            "            _ => Err(ComposeError::KindMismatch),\n",
            "        }\n",
            "    }\n",
            "    pub fn observed(&self) -> u64 {\n",
            "        0\n",
            "    }\n",
            "}\n",
        ),
    );
    let report = run_lints(&fx.root);
    let compose: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.check == "envelope-compose")
        .collect();
    assert_eq!(compose.len(), 1, "{}", report.render());
    let f = compose[0];
    assert!(f.file.ends_with("envelope.rs"));
    assert_eq!(f.line, 4);
    assert!(f.message.contains("ErrorEnvelope::Cardinality"));
}

#[test]
fn json_report_shape_is_stable() {
    let fx = Fixture::new("lint_fx_json");
    fx.write("crates/x/src/lib.rs", "pub fn f() {}\n");
    let report = run_lints(&fx.root);
    let json = report.to_json();
    assert!(json.contains("\"clean\":false"));
    assert!(json.contains("\"check\":\"crate-attrs\""));
    assert!(json.contains("\"checks\":[\"crate-attrs\",\"ordering-audit\""));
}
