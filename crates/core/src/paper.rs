//! Paper-to-code map: where each definition, algorithm, theorem and
//! example of Rinberg & Keidar (DISC 2020) lives in this workspace.
//!
//! | Paper | Code | Validated by |
//! |---|---|---|
//! | §2.1 histories, `≺_H`, well-formedness | [`ivl_spec::history`] | `history` unit tests |
//! | §2.1 linearizability | [`ivl_spec::linearize::check_linearizable`] | `linearize` tests; `tests/counter_histories.rs` |
//! | §3.1 skeleton histories `H?` | [`ivl_spec::history::History::skeleton`] | `skeleton_erases_query_values` |
//! | §3.1 quantitative objects, `τ_H` | [`ivl_spec::spec`] | `spec` tests (Example 1 re-enacted in the crate docs) |
//! | **Definition 2 (IVL)** | [`ivl_spec::ivl::check_ivl_exact`] | `ivl` tests; fuzzed against the fast path |
//! | **Theorem 1 (locality)** | [`ivl_spec::ivl::check_ivl_by_locality`] | `locality_theorem` proptest (E11) |
//! | §3.3 coin-flip vectors, `A(c̄)` | [`ivl_sketch::coins::CoinFlips`] | determinism tests across the sketch crate |
//! | §3.4 regular-like semantics | [`ivl_spec::relaxations::check_regular_subset`] | `tests/relaxation_hierarchy.rs` (E10) |
//! | §3.4 inc/dec counterexample | [`ivl_concurrent::inc_dec`], [`ivl_spec::specs::IncDecCounterSpec`] | `tests/nonmonotone_counterexample.rs` |
//! | **Definition 4/5 ((ε,δ)-bounded)** | [`ivl_spec::bounded::epsilon_bounded_report`], [`ivl_spec::linearize::query_value_bounds`] | `definition5_checker_on_recorded_pcm_run` |
//! | **Theorem 6 (bounds preserved)** | [`crate::theorem6::theorem6_run`] | `tests/theorem6_validation.rs` (E8) |
//! | §5 Algorithm 1 (CountMin) | [`ivl_sketch::countmin::CountMin`] | sketch tests + E13 |
//! | §5 `PCM(c̄)` | [`ivl_concurrent::pcm::Pcm`] | `recorded_pcm_runs_are_ivl` proptest (E6) |
//! | **Lemma 7 (PCM is IVL)** | monotone interval checker on recorded runs | `pcm_histories_ivl_at_scale` |
//! | **Corollary 8** | [`crate::theorem6`] envelope check | `pcm_preserves_error_bounds` |
//! | **Example 9 (PCM not linearizable)** | [`ivl_shmem::algorithms::pcm_sim`] | `tests/example9.rs` (E7), deterministic + sampled-hash + statistical |
//! | §6.1 Algorithm 2 (IVL counter) | [`ivl_counter::ivl_batched::IvlBatchedCounter`] (threads), [`ivl_shmem::algorithms::ivl_counter`] (step model) | `tests/counter_histories.rs` (E4/E5) |
//! | **Lemma 10 / Theorem 11** | step counts in [`ivl_shmem::experiments`] | `sweep_confirms_theorem_11_and_14_shapes` (E1) |
//! | §6.2 Algorithm 3 (binary snapshot) | [`ivl_counter::binary_snapshot`], [`ivl_shmem::algorithms::binary_snapshot`] | `tests/snapshot_reduction.rs` (E12), Invariant 1 |
//! | **Lemma 13** | recorded snapshot histories linearize | `snapshot_over_linearizable_counter_linearizes` |
//! | **Theorem 14 (Ω(n))** | operational content: snapshot counter ≥ 2n+1 steps; reduction breaks over the IVL counter | `update_costs_at_least_2n_plus_1_steps`, `ivl_counter_breaks_the_reduction` (E2) |
//! | §7 future work: more sketches | [`ivl_concurrent::hll_conc`], [`ivl_concurrent::morris_conc`], [`ivl_concurrent::rank_conc`] | E13/E14 |
//! | §7 future work: priority queues | antitone min registers: [`ivl_spec::specs::MinRegisterSpec`], [`ivl_concurrent::min_register`] | `recorded_histories_are_ivl_antitone` |
//!
//! The experiment ids (E1–E14) are indexed in `DESIGN.md` and their
//! measured outcomes recorded in `EXPERIMENTS.md`.
