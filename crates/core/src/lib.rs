//! # Intermediate Value Linearizability (IVL)
//!
//! A reproduction of Rinberg & Keidar, *"Intermediate Value
//! Linearizability: A Quantitative Correctness Criterion"* (DISC
//! 2020): the IVL correctness criterion made executable, every
//! construction in the paper implemented, and every claim turned into
//! a checkable experiment.
//!
//! This facade crate re-exports the workspace and hosts the
//! [`theorem6`] empirical validator. The pieces:
//!
//! | crate | contents |
//! |---|---|
//! | [`spec`] (ivl-spec) | histories, linearizations, the IVL/linearizability checkers |
//! | [`shmem`] (ivl-shmem) | shared-memory simulator, step-counted runs of Algorithms 2 & 3 |
//! | [`sketch`] (ivl-sketch) | sequential (ε,δ)-bounded sketches: CountMin, CountSketch, Morris, HLL, SpaceSaving, GK quantiles |
//! | [`counter`] (ivl-counter) | real-thread batched counters: IVL (Algorithm 2) + linearizable baselines |
//! | [`concurrent`] (ivl-concurrent) | `PCM` (§5) + locked/delegation baselines, concurrent Morris/HLL |
//! | [`service`] (ivl-service) | sharded sketch-serving TCP subsystem with IVL error envelopes |
//!
//! ## Quickstart
//!
//! ```
//! use ivl_core::prelude::*;
//!
//! // The paper's batched counter (Algorithm 2): O(1) update, O(n) read.
//! let counter = IvlBatchedCounter::new(4);
//! counter.update_slot(0, 3);
//! assert_eq!(counter.read(), 3);
//!
//! // The paper's concurrent CountMin (Algorithm 1 parallelized).
//! let mut coins = CoinFlips::from_seed(42);
//! let pcm = Pcm::for_bounds(0.01, 0.01, &mut coins);
//! pcm.update(7);
//! assert!(pcm.estimate(7) >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod guide;
pub mod paper;
pub mod theorem6;

pub use ivl_concurrent as concurrent;
pub use ivl_counter as counter;
pub use ivl_service as service;
pub use ivl_shmem as shmem;
pub use ivl_sketch as sketch;
pub use ivl_spec as spec;

/// One-stop imports for the common API surface.
pub mod prelude {
    pub use crate::theorem6::{counter_envelope_run, theorem6_run, EnvelopeReport, Theorem6Report};
    pub use ivl_concurrent::{
        ConcurrentHll, ConcurrentMorris, ConcurrentSketch, DelegatedCountMin, MutexCountMin, Pcm,
        RecordedSketch, SketchHandle, SnapshotCountMin,
    };
    pub use ivl_counter::{
        BinarySnapshot, FetchAddCounter, IvlBatchedCounter, MutexBatchedCounter, RecordedCounter,
        SharedBatchedCounter, SnapshotBatchedCounter, ThresholdMonitor,
    };
    pub use ivl_service::{Client, Envelope, ServerConfig, StatsReport, WeightedCmSpec};
    pub use ivl_sketch::{
        CoinFlips, CountMin, CountMinParams, CountSketch, FrequencySketch, GkQuantiles,
        HyperLogLog, MorrisCounter, SpaceSaving,
    };
    pub use ivl_spec::{
        check_ivl_exact, check_ivl_monotone, check_linearizable, History, HistoryBuilder,
        IvlVerdict, LinVerdict, MonotoneSpec, ObjectId, ObjectSpec, OpId, ProcessId, QueryBounds,
        Recorder,
    };
}
