//! # A guided tour: Intermediate Value Linearizability in practice
//!
//! This is a narrative walkthrough of the workspace, written for a
//! reader who knows concurrency but has not read the paper. Every code
//! block compiles and runs as a doctest.
//!
//! ## 1. The problem
//!
//! Big-data systems summarize streams with *sketches* — CountMin for
//! frequencies, HyperLogLog for distinct counts — and need queries to
//! run concurrently with very fast ingestion. Under linearizability,
//! a read overlapping a batched update of +3 must return the value
//! *before* or *after* the whole batch. Nothing in between:
//!
//! ```
//! use ivl_core::prelude::*;
//! use ivl_spec::specs::BatchedCounterSpec;
//!
//! // Counter at 7; inc(3) in flight; overlapping read returns 8.
//! let mut b = HistoryBuilder::<u64, (), u64>::new();
//! let seed = b.invoke_update(ProcessId(0), ObjectId(0), 7);
//! b.respond_update(seed);
//! let inc = b.invoke_update(ProcessId(0), ObjectId(0), 3);
//! let read = b.invoke_query(ProcessId(1), ObjectId(0), ());
//! b.respond_query(read, 8);
//! b.respond_update(inc);
//! let h = b.finish();
//!
//! assert!(!check_linearizable(&[BatchedCounterSpec], &h).is_linearizable());
//! ```
//!
//! But if the system designer would accept either 7 or 10, why not 8?
//! That is **IVL** (Definition 2): a query may return anything
//! *bounded between two legal linearization values*:
//!
//! ```
//! # use ivl_core::prelude::*;
//! # use ivl_spec::specs::BatchedCounterSpec;
//! # let mut b = HistoryBuilder::<u64, (), u64>::new();
//! # let seed = b.invoke_update(ProcessId(0), ObjectId(0), 7);
//! # b.respond_update(seed);
//! # let inc = b.invoke_update(ProcessId(0), ObjectId(0), 3);
//! # let read = b.invoke_query(ProcessId(1), ObjectId(0), ());
//! # b.respond_query(read, 8);
//! # b.respond_update(inc);
//! # let h = b.finish();
//! assert!(check_ivl_exact(&[BatchedCounterSpec], &h).is_ivl());
//! ```
//!
//! ## 2. Why IVL rather than "sees a subset of concurrent updates"
//!
//! Regularity-style conditions break for objects that can move both
//! ways: a query concurrent with `inc(1); dec(1)` that sees only the
//! decrement returns −1 — *below every value the object ever legally
//! held*. IVL forbids this, and the distinction matters because it is
//! exactly what makes error bounds transfer (§3 below). See
//! [`ivl_spec::relaxations`] for the executable comparison.
//!
//! ## 3. The payoff: free error bounds (Theorem 6)
//!
//! A CountMin sketch guarantees `f ≤ f̂ ≤ f + ε` with probability
//! 1 − δ, *proved for sequential executions*. Theorem 6 says: if your
//! concurrent implementation is IVL, the same bound holds around the
//! interval's `v_min`/`v_max` — no new analysis. The paper's `PCM`
//! (per-cell atomic increments) is IVL, so:
//!
//! ```
//! use ivl_core::prelude::*;
//!
//! let mut coins = CoinFlips::from_seed(1);
//! let pcm = Pcm::for_bounds(0.01, 0.01, &mut coins);
//! crossbeam::scope(|s| {
//!     for _ in 0..2 {
//!         s.spawn(|_| {
//!             for _ in 0..1_000 {
//!                 pcm.update(7);
//!             }
//!         });
//!     }
//!     // Concurrent reads are intermediate values: sound bounds.
//!     let est = pcm.estimate(7);
//!     assert!(est <= 2_000);
//! })
//! .unwrap();
//! ```
//!
//! The empirical validator ([`crate::theorem6`]) drives this with
//! ground-truth tracking; the formal checker
//! ([`ivl_spec::bounded::epsilon_bounded_report`]) evaluates
//! Definition 5 on recorded histories.
//!
//! ## 4. The price of linearizability (Theorems 11 & 14)
//!
//! The paper's batched counter separates the criteria by *cost*: IVL
//! admits an O(1)-update counter from single-writer registers, while
//! any linearizable one needs Ω(n) steps per update. The workspace
//! measures this in the paper's own cost model with a step-counting
//! simulator:
//!
//! ```
//! use ivl_core::shmem::experiments::step_complexity_sweep;
//!
//! let rows = step_complexity_sweep(&[2, 8], 4, 1);
//! assert_eq!(rows[0].ivl_update_max, 1);          // O(1), exactly
//! assert!(rows[1].lin_update_min >= 17);          // ≥ 2n+1 at n=8
//! ```
//!
//! And on real threads, [`ivl_counter::IvlBatchedCounter`] is the
//! NUMA-friendly realization: per-thread cache-padded slots, one store
//! per update.
//!
//! ## 5. Checking your own implementation
//!
//! Wrap an object with [`ivl_spec::record::Recorder`] (or use the
//! provided wrappers), run your stress test, and hand the history to a
//! checker. For monotone objects — counters, CountMin, max/min
//! registers — the interval fast path scales to millions of events:
//!
//! ```
//! use ivl_core::prelude::*;
//! use ivl_spec::specs::BatchedCounterSpec;
//!
//! let counter = RecordedCounter::new(IvlBatchedCounter::new(2));
//! crossbeam::scope(|s| {
//!     s.spawn(|_| {
//!         for _ in 0..100 {
//!             counter.update(0, 1);
//!         }
//!     });
//!     s.spawn(|_| {
//!         for _ in 0..50 {
//!             counter.read_from(1);
//!         }
//!     });
//! })
//! .unwrap();
//! let history = counter.finish();
//! assert!(check_ivl_monotone(&BatchedCounterSpec, &history).is_ivl());
//! ```
//!
//! Histories also round-trip through a text format
//! ([`ivl_spec::io`]) so recordings from other languages can be
//! checked with the `ivl_check` CLI.
//!
//! ## 6. Going further
//!
//! * Exhaustive verification of small instances (every schedule, not a
//!   sample): [`ivl_core::shmem::exhaustive`] — it finds the paper's
//!   Example 9 schedule as the *unique* violating interleaving of the
//!   minimal configuration.
//! * The antitone frontier (priority queues):
//!   [`ivl_concurrent::min_register`].
//! * The full paper-to-code index: [`crate::paper`].
//!
//! [`ivl_core::shmem::exhaustive`]: crate::shmem::exhaustive
