//! Empirical validation of Theorem 6 / Corollary 8.
//!
//! **Theorem 6**: an IVL implementation of a sequential (ε,δ)-bounded
//! object is a concurrent (ε,δ)-bounded object — each query's return
//! value lies in `[v_min − ε, v_max + ε]` with probability `≥ 1 − δ`,
//! where `v_min`/`v_max` are the least/greatest ideal values over
//! linearizations of the query's interval.
//!
//! **Corollary 8** instantiates this for the concurrent CountMin
//! `PCM`: `f_a^start ≤ f̂_a ≤ f_a^end + ε` with probability `≥ 1 − δ`,
//! where `f_a^start` is the item's ideal frequency when the query
//! starts and `f_a^end` at its end.
//!
//! [`theorem6_run`] drives any [`ConcurrentSketch`] with updater
//! threads and a concurrent query thread while tracking exact ground
//! truth per item with two atomics (`invoked` bumped before the sketch
//! update, `completed` after). For each query it checks the **sound
//! outer envelope**
//!
//! ```text
//! completed(a)@start  ≤  f̂_a  ≤  invoked(a)@end + ε
//! ```
//!
//! which contains the Corollary 8 interval (`completed@start ≤
//! f_start` and `f_end ≤ invoked@end`), so a violation of the envelope
//! implies a violation of Corollary 8's bound. An IVL sketch (PCM)
//! passes with violation rate ≲ δ; the delegation sketch violates the
//! *lower* side deterministically under bursts — the experiment that
//! separates IVL from regular-like staleness semantics.

use ivl_concurrent::{ConcurrentSketch, SketchHandle};
use ivl_counter::SharedBatchedCounter;
use ivl_sketch::stream::ZipfStream;
use std::sync::atomic::{AtomicU64, Ordering};

/// Configuration of a Theorem-6 validation run.
#[derive(Clone, Copy, Debug)]
pub struct Theorem6Config {
    /// Number of updater threads.
    pub threads: usize,
    /// Updates per thread.
    pub updates_per_thread: u64,
    /// Item alphabet size (items are `0..alphabet`).
    pub alphabet: usize,
    /// Zipf exponent of the update streams.
    pub zipf_s: f64,
    /// Queries issued by the concurrent query thread.
    pub queries: u64,
    /// The sketch's additive-error factor α (ε = α·n).
    pub alpha: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for Theorem6Config {
    fn default() -> Self {
        Theorem6Config {
            threads: 4,
            updates_per_thread: 50_000,
            alphabet: 1_000,
            zipf_s: 1.1,
            queries: 2_000,
            alpha: 0.01,
            seed: 1,
        }
    }
}

/// Outcome of a Theorem-6 validation run.
#[derive(Clone, Debug)]
pub struct Theorem6Report {
    /// Queries issued concurrently with updates.
    pub queries: u64,
    /// Queries whose estimate fell below `completed@start` — forbidden
    /// by IVL regardless of δ for CountMin (its lower bound is
    /// deterministic).
    pub lower_violations: u64,
    /// Queries whose estimate exceeded `invoked@end + ε`.
    pub upper_violations: u64,
    /// Total updates when the run finished.
    pub stream_len: u64,
    /// The additive bound ε = α·n used (computed from the final
    /// stream length — an over-approximation of the paper's "maximum ε
    /// during the query interval" only in the benign direction for the
    /// *upper* check of early queries; see `upper_violation_rate`).
    pub epsilon: f64,
}

impl Theorem6Report {
    /// Fraction of queries violating the upper bound (compare with δ).
    pub fn upper_violation_rate(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.upper_violations as f64 / self.queries as f64
    }
}

/// Runs the Theorem-6 / Corollary-8 validation against `sketch`.
///
/// Per-query checks use ε = α·(invoked at query end), the paper's
/// "maximum value the bound takes during the query's interval".
pub fn theorem6_run<S: ConcurrentSketch>(sketch: &S, cfg: &Theorem6Config) -> Theorem6Report {
    let invoked: Vec<AtomicU64> = (0..cfg.alphabet).map(|_| AtomicU64::new(0)).collect();
    let completed: Vec<AtomicU64> = (0..cfg.alphabet).map(|_| AtomicU64::new(0)).collect();
    let total_invoked = AtomicU64::new(0);
    let lower_violations = AtomicU64::new(0);
    let upper_violations = AtomicU64::new(0);

    crossbeam::scope(|s| {
        for t in 0..cfg.threads {
            let mut handle = sketch.handle();
            let invoked = &invoked;
            let completed = &completed;
            let total_invoked = &total_invoked;
            let mut stream = ZipfStream::new(cfg.alphabet, cfg.zipf_s, cfg.seed ^ (t as u64) << 32);
            s.spawn(move |_| {
                for _ in 0..cfg.updates_per_thread {
                    let item = stream.next_item();
                    invoked[item as usize].fetch_add(1, Ordering::SeqCst);
                    total_invoked.fetch_add(1, Ordering::SeqCst);
                    handle.update(item);
                    completed[item as usize].fetch_add(1, Ordering::SeqCst);
                }
                handle.flush();
            });
        }

        // Query thread: interleaves queries with the whole ingest.
        {
            let sketch = &sketch;
            let invoked = &invoked;
            let completed = &completed;
            let total_invoked = &total_invoked;
            let lower_violations = &lower_violations;
            let upper_violations = &upper_violations;
            let mut qstream = ZipfStream::new(cfg.alphabet, cfg.zipf_s, cfg.seed ^ 0xdead_beef);
            s.spawn(move |_| {
                let mut issued = 0;
                while issued < cfg.queries {
                    let item = qstream.next_item();
                    let start_lower = completed[item as usize].load(Ordering::SeqCst);
                    let est = sketch.query(item);
                    let end_upper = invoked[item as usize].load(Ordering::SeqCst);
                    let n_end = total_invoked.load(Ordering::SeqCst);
                    let eps = (cfg.alpha * n_end as f64).ceil() as u64;
                    if est < start_lower {
                        lower_violations.fetch_add(1, Ordering::Relaxed);
                    }
                    if est > end_upper + eps {
                        upper_violations.fetch_add(1, Ordering::Relaxed);
                    }
                    issued += 1;
                }
            });
        }
    })
    .unwrap();

    let stream_len = total_invoked.load(Ordering::SeqCst);
    Theorem6Report {
        queries: cfg.queries,
        lower_violations: lower_violations.load(Ordering::Relaxed),
        upper_violations: upper_violations.load(Ordering::Relaxed),
        stream_len,
        epsilon: cfg.alpha * stream_len as f64,
    }
}

/// Outcome of a batched-counter IVL-envelope run.
#[derive(Clone, Copy, Debug)]
pub struct EnvelopeReport {
    /// Reads performed concurrently with updates.
    pub reads: u64,
    /// Reads below the sum of updates completed at read start.
    pub lower_violations: u64,
    /// Reads above the sum of updates invoked at read end.
    pub upper_violations: u64,
    /// Final counter total.
    pub final_total: u64,
}

/// Drives a [`SharedBatchedCounter`] with one updater per slot and a
/// concurrent reader, checking every read against the IVL envelope
/// `[completed@start, invoked@end]` (Lemma 10's guarantee, and the
/// deterministic ε = 0 case of Theorem 6).
pub fn counter_envelope_run<C: SharedBatchedCounter>(
    counter: &C,
    updates_per_slot: u64,
    value_per_update: u64,
    reads: u64,
) -> EnvelopeReport {
    let n = counter.num_slots();
    let invoked_sum = AtomicU64::new(0);
    let completed_sum = AtomicU64::new(0);
    let lower_violations = AtomicU64::new(0);
    let upper_violations = AtomicU64::new(0);

    crossbeam::scope(|s| {
        for slot in 0..n {
            let counter = &counter;
            let invoked_sum = &invoked_sum;
            let completed_sum = &completed_sum;
            s.spawn(move |_| {
                for _ in 0..updates_per_slot {
                    invoked_sum.fetch_add(value_per_update, Ordering::SeqCst);
                    counter.update_slot(slot, value_per_update);
                    completed_sum.fetch_add(value_per_update, Ordering::SeqCst);
                }
            });
        }
        {
            let counter = &counter;
            let invoked_sum = &invoked_sum;
            let completed_sum = &completed_sum;
            let lower_violations = &lower_violations;
            let upper_violations = &upper_violations;
            s.spawn(move |_| {
                for _ in 0..reads {
                    let lo = completed_sum.load(Ordering::SeqCst);
                    let v = counter.read();
                    let hi = invoked_sum.load(Ordering::SeqCst);
                    if v < lo {
                        lower_violations.fetch_add(1, Ordering::Relaxed);
                    }
                    if v > hi {
                        upper_violations.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    })
    .unwrap();

    EnvelopeReport {
        reads,
        lower_violations: lower_violations.load(Ordering::Relaxed),
        upper_violations: upper_violations.load(Ordering::Relaxed),
        final_total: counter.read(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivl_concurrent::Pcm;
    use ivl_counter::IvlBatchedCounter;
    use ivl_sketch::CoinFlips;

    #[test]
    fn pcm_passes_theorem6() {
        let cfg = Theorem6Config {
            threads: 3,
            updates_per_thread: 20_000,
            queries: 500,
            alpha: 0.01,
            ..Theorem6Config::default()
        };
        let pcm = Pcm::for_bounds(cfg.alpha, 0.01, &mut CoinFlips::from_seed(3));
        let report = theorem6_run(&pcm, &cfg);
        assert_eq!(
            report.lower_violations, 0,
            "CountMin's lower bound is deterministic under IVL"
        );
        assert!(
            report.upper_violation_rate() <= 0.02,
            "upper violations {} / {}",
            report.upper_violations,
            report.queries
        );
    }

    #[test]
    fn ivl_counter_passes_envelope() {
        let c = IvlBatchedCounter::new(4);
        let report = counter_envelope_run(&c, 50_000, 1, 5_000);
        assert_eq!(report.lower_violations, 0);
        assert_eq!(report.upper_violations, 0);
        assert_eq!(report.final_total, 200_000);
    }
}
