//! `ivl_replicate`: a replication frontend speaking the ordinary
//! `ivl-service` wire protocol, backed by N `ivl_serve` replicas.
//!
//! ```text
//! usage: ivl_replicate [addr] --replica ADDR [--replica ADDR]...
//!                      [--mode partition|mirror] [--seed N]
//!                      [--retries N] [--backoff-ms MS]
//!   addr          listen address (default 127.0.0.1:7272; port 0 picks one)
//!   --replica     a backend ivl_serve address (repeatable, >= 1)
//!   --mode        partition (default): each update routed to one
//!                 replica by key hash; mirror: fanned to all
//!   --seed        the replicas' --seed (1): rebuilds the hash
//!                 prototypes used to merge their snapshots
//!   --retries     reconnect attempts per replica per operation (2)
//!   --backoff-ms  pause between reconnect attempts (20)
//! ```
//!
//! Clients connect as if to a single `ivl_serve`: updates and batches
//! are acknowledged after the group placed them, queries and
//! snapshots return merged state with the composed IVL envelope, and
//! replicas that die degrade the answer (widened envelope) instead of
//! failing it. Merging replicas with mismatched coins or dimensions
//! answers a typed `merge-mismatch` wire error, never a panic.
//! `SHUTDOWN` propagates to every reachable replica, then drains the
//! frontend itself.

use ivl_replica::{ReplicaError, ReplicaGroup, ReplicaMode};
use ivl_service::protocol::{self, read_frame};
use ivl_service::{
    ClientError, DeltaChange, ErrorCode, Metrics, ObjectSnapshot, Request, Response, SnapshotDelta,
};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn usage() -> ExitCode {
    eprintln!(
        "usage: ivl_replicate [addr] --replica ADDR [--replica ADDR]... \
         [--mode partition|mirror] [--seed N] [--retries N] [--backoff-ms MS]"
    );
    ExitCode::from(1)
}

/// Frontend-wide shared state: the stats surface and the drain flag.
struct Shared {
    metrics: Metrics,
    /// Total acknowledged update weight through this frontend (the
    /// stats `stream_len`).
    observed: AtomicU64,
    shutdown: AtomicBool,
    /// The bound listen address, for the self-connect that wakes the
    /// accept loop out of `accept(2)` when a client requests shutdown.
    listen: std::sync::OnceLock<std::net::SocketAddr>,
    replicas: Vec<String>,
    mode: ReplicaMode,
    seed: u64,
    retries: u32,
    backoff: Duration,
}

impl Shared {
    fn group(&self) -> Result<ReplicaGroup, ReplicaError> {
        let mut group = ReplicaGroup::new(self.replicas.clone(), self.mode, self.seed)?;
        group.set_retry_limit(self.retries);
        group.set_backoff(self.backoff);
        Ok(group)
    }
}

/// Maps a group error to the wire error the client sees. Mismatched
/// replica states get the typed `merge-mismatch` code; a fully
/// unreachable group reads as `busy` (retryable — the replicas may be
/// restarting); a replica's own refusal is forwarded verbatim.
fn wire_error(e: ReplicaError) -> Response {
    let (code, message) = match e {
        ReplicaError::MergeMismatch { why } => (ErrorCode::MergeMismatch, why),
        ReplicaError::Compose(e) => (ErrorCode::MergeMismatch, e.to_string()),
        ReplicaError::Client(ClientError::Server { code, message }) => (code, message),
        ReplicaError::AllUnreachable { what } => {
            (ErrorCode::Busy, format!("no replica reachable for {what}"))
        }
        other => (ErrorCode::Busy, other.to_string()),
    };
    Response::Error { code, message }
}

/// Serves one frontend connection with its own replica group (its own
/// backend connections, so frontend connections scale like clients).
fn serve_conn(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut group = match shared.group() {
        Ok(g) => g,
        Err(_) => return,
    };
    // Per-connection cumulative applied-update count, mirroring the
    // backend servers' ACK semantics.
    let mut applied = 0u64;
    let mut buf = Vec::new();
    while let Ok(Some(payload)) = read_frame(&mut stream, protocol::DEFAULT_MAX_FRAME_LEN) {
        shared.metrics.record_frame();
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                shared.metrics.record_protocol_error();
                let rsp = Response::Error {
                    code: ErrorCode::Protocol,
                    message: e.to_string(),
                };
                buf.clear();
                rsp.encode(&mut buf);
                let _ = stream.write_all(&buf);
                return;
            }
        };
        if shared.shutdown.load(Ordering::Acquire) {
            let rsp = Response::Error {
                code: ErrorCode::ShuttingDown,
                message: "frontend is draining".into(),
            };
            buf.clear();
            rsp.encode(&mut buf);
            let _ = stream.write_all(&buf);
            return;
        }
        let rsp = match request {
            Request::Update {
                object,
                key,
                weight,
            } => {
                let start = Instant::now();
                match group.update(object, key, weight) {
                    Ok(_) => {
                        shared.metrics.record_updates(1, start.elapsed().as_nanos());
                        shared.observed.fetch_add(weight, Ordering::Relaxed);
                        applied += 1;
                        Response::Ack { applied }
                    }
                    Err(e) => wire_error(e),
                }
            }
            Request::Batch { object, items } => {
                let start = Instant::now();
                let weight: u64 = items.iter().map(|&(_, w)| w).sum();
                match group.batch(object, &items) {
                    Ok(_) => {
                        shared.metrics.record_batch();
                        shared
                            .metrics
                            .record_updates(items.len() as u64, start.elapsed().as_nanos());
                        shared.observed.fetch_add(weight, Ordering::Relaxed);
                        applied += items.len() as u64;
                        Response::Ack { applied }
                    }
                    Err(e) => wire_error(e),
                }
            }
            Request::Query { object, key } => {
                let start = Instant::now();
                match group.query(object, key) {
                    Ok(read) => {
                        shared.metrics.record_query(start.elapsed().as_nanos());
                        Response::Envelope(read.envelope)
                    }
                    Err(e) => wire_error(e),
                }
            }
            Request::Snapshot { object } => {
                let start = Instant::now();
                match group.snapshot_merged(object) {
                    Ok(merged) => {
                        shared.metrics.record_query(start.elapsed().as_nanos());
                        Response::Snapshot(ObjectSnapshot {
                            object: merged.object,
                            kind: merged.kind,
                            state: merged.state,
                            envelope: merged.envelope,
                        })
                    }
                    Err(e) => wire_error(e),
                }
            }
            Request::SnapshotSince { object, .. } => {
                // The frontend keeps no composite epoch bookkeeping,
                // so it never answers `Unchanged` or a sparse delta:
                // every SNAPSHOT_SINCE gets the full merged state —
                // a legal reply at any base (a group stacked on this
                // frontend just sees no delta savings across the hop).
                let start = Instant::now();
                match group.snapshot_merged(object) {
                    Ok(merged) => {
                        shared.metrics.record_query(start.elapsed().as_nanos());
                        let epoch = merged.envelope.observed();
                        Response::SnapshotDelta(SnapshotDelta {
                            object: merged.object,
                            kind: merged.kind,
                            epoch,
                            change: DeltaChange::Full(merged.state),
                            envelope: merged.envelope,
                        })
                    }
                    Err(e) => wire_error(e),
                }
            }
            Request::PushState { object, .. } => {
                // Catch-up pushes belong between a group and its own
                // backends: the frontend holds no mergeable state of
                // its own to absorb into, and relaying a peer's state
                // into *every* replica would double-count it under
                // partition placement. Refused typed, never absorbed.
                Response::Error {
                    code: ErrorCode::MergeMismatch,
                    message: format!(
                        "object {object}: the replication frontend serves merged state but \
                         absorbs none; push to a backend replica instead"
                    ),
                }
            }
            Request::Objects => match group.objects() {
                Ok(infos) => Response::Objects(infos),
                Err(e) => wire_error(e),
            },
            Request::Stats => Response::Stats(
                shared
                    .metrics
                    .report(shared.observed.load(Ordering::Relaxed), Vec::new()),
            ),
            Request::Shutdown => {
                let acked = group.shutdown();
                shared.shutdown.store(true, Ordering::Release);
                eprintln!("ivl_replicate: shutdown propagated to {acked} replicas, draining");
                buf.clear();
                Response::Goodbye.encode(&mut buf);
                let _ = stream.write_all(&buf);
                // Wake the accept loop so the process exits promptly.
                if let Some(addr) = shared.listen.get() {
                    let _ = TcpStream::connect(addr);
                }
                return;
            }
        };
        buf.clear();
        rsp.encode(&mut buf);
        if stream.write_all(&buf).is_err() {
            return;
        }
    }
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7272".to_owned();
    let mut replicas: Vec<String> = Vec::new();
    let mut mode = ReplicaMode::Partition;
    let mut seed = 1u64;
    let mut retries = 2u32;
    let mut backoff_ms = 20u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| -> Option<String> {
            let v = args.next();
            if v.is_none() {
                eprintln!("{what} needs a value");
            }
            v
        };
        match arg.as_str() {
            "--replica" => match take("--replica") {
                Some(v) => replicas.push(v),
                None => return usage(),
            },
            "--mode" => match take("--mode").map(|v| v.parse()) {
                Some(Ok(v)) => mode = v,
                Some(Err(e)) => {
                    eprintln!("--mode: {e}");
                    return usage();
                }
                None => return usage(),
            },
            "--seed" => match take("--seed").and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--retries" => match take("--retries").and_then(|v| v.parse().ok()) {
                Some(v) => retries = v,
                None => return usage(),
            },
            "--backoff-ms" => match take("--backoff-ms").and_then(|v| v.parse().ok()) {
                Some(v) => backoff_ms = v,
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            other if !other.starts_with('-') => addr = other.to_owned(),
            _ => return usage(),
        }
    }
    if replicas.is_empty() {
        eprintln!("need at least one --replica");
        return usage();
    }
    let shared = Arc::new(Shared {
        metrics: Metrics::new(),
        observed: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
        listen: std::sync::OnceLock::new(),
        replicas,
        mode,
        seed,
        retries,
        backoff: Duration::from_millis(backoff_ms),
    });
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::from(1);
        }
    };
    let local = listener.local_addr().expect("bound address");
    let _ = shared.listen.set(local);
    println!(
        "ivl_replicate listening on {local} [{mode} mode] over {} replicas [{}] (seed {seed})",
        shared.replicas.len(),
        shared.replicas.join(", ")
    );
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        shared.metrics.connection_accepted();
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            serve_conn(&shared, stream);
            shared.metrics.connection_closed();
        });
    }
    ExitCode::SUCCESS
}
