//! `ivl-replica`: N-replica serving with merge-on-query and composed
//! IVL error envelopes.
//!
//! The paper's objects are *mergeable summaries*: CountMin cells add
//! cell-wise, HLL registers max register-wise, Morris exponents and
//! min registers are scalars with obvious joins. This crate is the
//! distributed layer that cashes that property in: a [`ReplicaGroup`]
//! fans updates out to N independent `ivl_serve` backends and answers
//! reads by pulling each replica's `SNAPSHOT` (its mergeable state
//! plus the [`ErrorEnvelope`] in force), merging the states, and
//! shipping one composed envelope ([`ErrorEnvelope::compose`]) instead
//! of inventing a bound.
//!
//! Two placement modes ([`ReplicaMode`]):
//!
//! * **partition** — each update goes to exactly one replica (routed
//!   by key hash, with failover); replicas hold disjoint substreams
//!   and merged state is the *sum* (CountMin cells add, estimates
//!   add). The composed envelope sums `ε`, `lag`, `stream_len` and
//!   union-bounds `δ` — exactly the sequential merge theorem, read
//!   through Theorem 6.
//! * **mirror** — each update goes to every reachable replica;
//!   replicas hold the same stream and merged state is the cell-wise
//!   *max* (sound because cells are monotone counters of one stream;
//!   HLL/min merges are idempotent, so mirror and partition coincide
//!   for them).
//!
//! **Health and degradation.** Each replica has a ledger: connect
//! failures are retried a bounded number of times with backoff; a
//! replica that stays unreachable is dropped from the merge and the
//! group degrades to the reachable quorum rather than erroring. The
//! merged frequency envelope *widens* to account for what the merge
//! can no longer see: the missing replica's recorded update weight
//! (its last observed count) is added to `lag` — acknowledged weight
//! that may be invisible to this read is precisely what `lag` bounds
//! (Lemma 10's shape, at replica granularity). Partition-mode updates
//! whose connection died mid-roundtrip are *never silently resent* to
//! the same replica (they could double-apply); they fail over to the
//! next replica and their weight is recorded as in-doubt, widening
//! both envelope sides (`ε` for a possible double count, `lag` for a
//! possible miss).
//!
//! **Delta reads.** Merged queries do not re-pull full state: the
//! group keeps one cached snapshot per replica per object, keyed to
//! the connection generation, and asks each replica `SNAPSHOT_SINCE`
//! its cached epoch. A quiescent replica answers a tiny `Unchanged`
//! frame; an active one answers a sparse delta that patches the cache
//! in place; a merged accumulator absorbs the patches so a read on a
//! quiescent group re-merges nothing. Staleness is IVL-quantified, not
//! refused: a replica that stops answering keeps contributing its
//! cached cells, with the frequency `lag` widened by the weight that
//! may have landed there since the cache was taken. A reconnect (new
//! [`Client::generation`]) invalidates the replica's cache before a
//! base epoch is chosen, so no delta is ever applied across
//! connections; servers predating `SNAPSHOT_SINCE` are detected by
//! their `Protocol` refusal and served full snapshots thereafter.
//!
//! **Catch-up (anti-entropy).** A replica that restarts comes back
//! empty; reactive degradation alone would widen merged envelopes by
//! its forgotten weight forever. The group detects the rejoin — a
//! fresh full snapshot whose `observed` is *below* the replica's
//! cached one means the replica lost history — retains the displaced
//! cache as the catch-up payload, and pushes it back over
//! `PUSH_STATE` on the next refresh. The pushed state is the
//! replica's *own* retained summary, so absorbing it (cell-wise add;
//! the other kinds' idempotent joins) is the exact union of the two
//! disjoint uptime windows in both placement modes. Until the push is
//! acknowledged the forgotten weight is carried in a `lost` ledger
//! bucket that widens merged `lag`; an acknowledged push settles it
//! (and any in-doubt weight at that replica), invalidates the cache,
//! and the next refresh re-pulls the absorbed state — the envelope
//! narrows back to its pre-kill width. `PUSH_STATE` is not
//! idempotent, so a push whose connection dies mid-roundtrip is never
//! resent; its weight simply stays on the `lost` ledger
//! (conservative). [`ReplicaGroup::catchup_stats`] counts all of it.
//!
//! **Merge safety.** Replicas may only be merged if they sampled the
//! same hash functions — the same `--seed` and object roster. Every
//! snapshot carries a probe fingerprint of its hashes; the group
//! rebuilds the prototype from [`slot_coins`]`(seed, object)` and
//! refuses mismatches with a typed [`ReplicaError::MergeMismatch`]
//! (surfaced on the wire as `ErrorCode::MergeMismatch` by the
//! `ivl_replicate` frontend) instead of a panic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use ivl_service::{
    cm_hash_fingerprint, hll_hash_fingerprint, merge_states, slot_coins, Client, ClientError,
    ComposeError, DeltaChange, Envelope, ErrorCode, ErrorEnvelope, MergePolicy, MergeableState,
    ObjectInfo, ObjectKind, ObjectSnapshot, SnapshotDelta, SnapshotState, StatePatch, WireError,
};
use ivl_sketch::countmin::{CountMin, CountMinParams};
use ivl_sketch::hll::HyperLogLog;
use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

/// How a [`ReplicaGroup`] places updates across its replicas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplicaMode {
    /// Each update goes to one replica (routed by key hash, failover
    /// to the next reachable); merged state is the cell-wise sum over
    /// disjoint substreams.
    Partition,
    /// Each update goes to every reachable replica; merged state is
    /// the cell-wise max over copies of the same stream.
    Mirror,
}

impl fmt::Display for ReplicaMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReplicaMode::Partition => "partition",
            ReplicaMode::Mirror => "mirror",
        })
    }
}

impl std::str::FromStr for ReplicaMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "partition" | "part" => Ok(ReplicaMode::Partition),
            "mirror" | "mirrored" => Ok(ReplicaMode::Mirror),
            other => Err(format!(
                "unknown replica mode {other:?} (want partition|mirror)"
            )),
        }
    }
}

/// Errors a replica-group operation can produce.
#[derive(Debug)]
pub enum ReplicaError {
    /// The group was built with no replica addresses.
    NoReplicas,
    /// No replica could be reached (after bounded retries) for the
    /// named operation — nothing to degrade to.
    AllUnreachable {
        /// What was being attempted.
        what: &'static str,
    },
    /// Replica states cannot be merged: kinds, dimensions, or hash
    /// coins disagree (different `--seed` or roster). Typed, not a
    /// panic — the frontend maps it to `ErrorCode::MergeMismatch`.
    MergeMismatch {
        /// Human-readable mismatch description.
        why: String,
    },
    /// Envelope composition refused the parts.
    Compose(ComposeError),
    /// A replica answered with a non-transient error (server refusal,
    /// protocol violation).
    Client(ClientError),
}

impl fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicaError::NoReplicas => write!(f, "replica group has no replicas"),
            ReplicaError::AllUnreachable { what } => {
                write!(f, "no replica reachable for {what}")
            }
            ReplicaError::MergeMismatch { why } => write!(f, "merge mismatch: {why}"),
            ReplicaError::Compose(e) => write!(f, "compose: {e}"),
            ReplicaError::Client(e) => write!(f, "replica: {e}"),
        }
    }
}

impl std::error::Error for ReplicaError {}

impl From<ComposeError> for ReplicaError {
    fn from(e: ComposeError) -> Self {
        ReplicaError::Compose(e)
    }
}

impl From<ClientError> for ReplicaError {
    fn from(e: ClientError) -> Self {
        ReplicaError::Client(e)
    }
}

/// One replica's health row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplicaHealth {
    /// The replica's address as configured.
    pub addr: String,
    /// Whether a connection is currently held.
    pub connected: bool,
    /// Connection failures seen so far (connects and mid-roundtrip
    /// deaths, across all objects).
    pub failures: u64,
}

/// A merged read: one composed envelope over the reachable replicas,
/// plus per-replica accounting for degradation-aware callers.
#[derive(Clone, Debug, PartialEq)]
pub struct MergedRead {
    /// The composed envelope (estimate re-derived from merged state
    /// for CountMin and HLL).
    pub envelope: ErrorEnvelope,
    /// Per-replica acknowledged update weight at the state that merged
    /// (`None` = nothing to contribute: unreachable with no cached
    /// state).
    pub parts: Vec<Option<u64>>,
    /// Replicas that answered this round (a cached replica can still
    /// contribute without being reached — its staleness widens `lag`).
    pub reached: usize,
    /// Replicas configured.
    pub total: usize,
    /// Acknowledged weight possibly invisible to this read — missing
    /// replicas' recorded counts plus cached-but-silent replicas'
    /// overhang — the amount the frequency `lag` was widened by.
    pub missing_observed: u64,
}

/// A merged snapshot: the merged mergeable state itself, with the
/// composed envelope — what the `ivl_replicate` frontend serves for
/// `SNAPSHOT` so groups stack.
#[derive(Clone, Debug, PartialEq)]
pub struct MergedSnapshot {
    /// Object id (same on every replica by construction).
    pub object: u32,
    /// Object kind.
    pub kind: ObjectKind,
    /// The merged state (sum or max of the parts, per mode).
    pub state: SnapshotState,
    /// The composed envelope (frequency `key`/`estimate` are the
    /// snapshot-form zero sentinels).
    pub envelope: ErrorEnvelope,
    /// Per-replica acknowledged weight (`None` = unreachable).
    pub parts: Vec<Option<u64>>,
    /// Recorded update weight of the unreachable replicas.
    pub missing_observed: u64,
}

/// Per-replica ledger: health plus the degradation accounting.
#[derive(Debug, Default)]
struct Ledger {
    /// Connection failures (connects and mid-roundtrip deaths).
    failures: u64,
    /// Update weight this group routed here and saw acknowledged,
    /// per object.
    acked: HashMap<u32, u64>,
    /// Observed weight from the replica's last successful snapshot,
    /// per object (covers writes by other clients).
    last_seen: HashMap<u32, u64>,
    /// Partition mode: weight of updates whose connection died
    /// mid-roundtrip here — possibly applied, possibly not — before
    /// failing over. Widens both envelope sides.
    in_doubt: HashMap<u32, u64>,
    /// Mirror mode: weight acknowledged by the group that this
    /// replica did not receive (it was unreachable).
    missed: HashMap<u32, u64>,
    /// Weight this replica demonstrably forgot (it rejoined observing
    /// less than its cached state) that has not yet been pushed back —
    /// widens merged `lag` until the catch-up push is acknowledged.
    lost: HashMap<u32, u64>,
    /// Weight settled by acknowledged catch-up pushes: recovered
    /// `lost` weight plus resolved `in_doubt` weight — kept for audit,
    /// no longer widening anything.
    settled: HashMap<u32, u64>,
}

impl Ledger {
    fn bump(map: &mut HashMap<u32, u64>, object: u32, weight: u64) {
        *map.entry(object).or_insert(0) += weight;
    }

    fn get(map: &HashMap<u32, u64>, object: u32) -> u64 {
        map.get(&object).copied().unwrap_or(0)
    }
}

/// The prototype rebuilt from the group seed, cached per object — the
/// hash functions every replica must share for its state to merge.
#[derive(Debug)]
enum Proto {
    Cm(CountMin),
    Hll(HyperLogLog),
}

/// Cumulative accounting for the delta-read path (and for full
/// gathers, so `--no-delta` runs compare like for like).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Snapshot roundtrips that returned (delta or full).
    pub reads: u64,
    /// Replies that were `Unchanged` — the epoch fast path.
    pub unchanged: u64,
    /// Replies that were a sparse delta (CountMin runs / HLL range).
    pub deltas: u64,
    /// Replies that carried full state (no cache, evicted base, delta
    /// not worth it, or a non-delta-capable replica).
    pub fulls: u64,
    /// Request bytes those roundtrips wrote, frame prefixes included.
    pub bytes_out: u64,
    /// Response bytes they read, frame prefixes included.
    pub bytes_in: u64,
}

impl DeltaStats {
    /// Fraction of snapshot roundtrips answered `Unchanged` (0 when
    /// none happened).
    pub fn unchanged_rate(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.unchanged as f64 / self.reads as f64
        }
    }
}

/// Cumulative catch-up (anti-entropy) accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CatchupStats {
    /// Rejoins detected: a replica answered a fresh full state whose
    /// `observed` was below its cached one (it restarted and lost
    /// history).
    pub detected: u64,
    /// `PUSH_STATE` frames sent.
    pub pushed: u64,
    /// Pushes the replica acknowledged absorbing.
    pub acked: u64,
    /// Pushes that failed: the connection died (never resent — absorb
    /// is not idempotent) or the replica refused.
    pub failed: u64,
    /// Ledger weight settled by acknowledged pushes: recovered `lost`
    /// weight plus resolved `in_doubt` weight.
    pub settled_weight: u64,
}

/// A retained catch-up payload: the cache a rejoin displaced, held
/// until it can be pushed back to the replica that forgot it.
#[derive(Debug)]
struct PendingPush {
    replica: usize,
    object: u32,
    /// Acknowledged weight the retained state covers — the `observed`
    /// the push reports so the replica can credit it.
    observed: u64,
    state: SnapshotState,
}

/// One replica's cached snapshot of one object — the delta base.
#[derive(Debug)]
struct CachedSnapshot {
    /// [`Client::generation`] of the connection the cache was read
    /// over. A cache from another generation is never used as a base.
    generation: u64,
    /// The replica's update epoch at cache time (`u64::MAX` for caches
    /// filled over plain `SNAPSHOT`, which carries no epoch — such a
    /// cache still merges but never serves as a delta base).
    epoch: u64,
    /// The cached state and envelope.
    snapshot: ObjectSnapshot,
}

/// The persistent merged accumulator: per-replica patches fold into it
/// so a read on a quiescent group re-merges nothing.
#[derive(Debug)]
enum MergedCells {
    Cm {
        width: u32,
        depth: u32,
        hash_fp: u64,
        cells: Vec<u64>,
    },
    Hll {
        hash_fp: u64,
        registers: Vec<u8>,
    },
}

/// What one replica's refresh did to its cache.
enum RefreshOutcome {
    /// Stayed unreachable; the cache (if any) is served stale.
    Unreachable,
    /// The cache is current; the [`StatePatch`] reported by
    /// [`MergeableState::apply_change`] says what moved (nothing, a
    /// foldable sparse patch, or a wholesale replacement).
    Refreshed(StatePatch),
}

/// Why a single-replica write did not succeed.
enum SendFailure {
    /// No connection could be established (nothing was sent — safe to
    /// route the update elsewhere).
    Unreached,
    /// The connection died mid-roundtrip (the update may or may not
    /// have applied — ambiguous, never resent to the same replica).
    Ambiguous,
    /// The replica answered with a refusal; surfaced to the caller.
    Fatal(ClientError),
}

/// A client-side replica group: N backends speaking the ordinary
/// `ivl-service` protocol, one merged answer.
#[derive(Debug)]
pub struct ReplicaGroup {
    addrs: Vec<String>,
    mode: ReplicaMode,
    seed: u64,
    retry_limit: u32,
    backoff: Duration,
    clients: Vec<Option<Client>>,
    ledgers: Vec<Ledger>,
    protos: HashMap<u32, Proto>,
    /// Per-replica, per-object cached snapshots — the delta bases.
    caches: Vec<HashMap<u32, CachedSnapshot>>,
    /// Per-object merged accumulator over the caches.
    accums: HashMap<u32, MergedCells>,
    /// Cleared for a replica the first time it refuses
    /// `SNAPSHOT_SINCE` with a `Protocol` error (a pre-delta server);
    /// it is served plain full snapshots from then on.
    supports_delta: Vec<bool>,
    /// Whether merged reads use the delta path at all (`--no-delta`
    /// benchmarking flips this off).
    delta_reads: bool,
    delta_stats: DeltaStats,
    /// Retained states awaiting a catch-up push to a rejoined replica.
    pending_pushes: Vec<PendingPush>,
    catchup: CatchupStats,
}

/// The merge policy a placement mode implies: partitioned replicas
/// hold disjoint substreams (cells add), mirrored replicas hold copies
/// of one stream (cells join by max).
fn policy_for(mode: ReplicaMode) -> MergePolicy {
    match mode {
        ReplicaMode::Partition => MergePolicy::Add,
        ReplicaMode::Mirror => MergePolicy::Join,
    }
}

/// splitmix64 finalizer — scrambles keys before the `% n` partition
/// route so consecutive keys spread across replicas.
fn mix64(v: u64) -> u64 {
    let mut x = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Whether a client error means the connection died (vs the server
/// answering something) — the only failures health tracking treats as
/// transient.
fn transient(e: &ClientError) -> bool {
    matches!(
        e,
        ClientError::Io(_) | ClientError::Wire(WireError::Truncated | WireError::Io(_))
    )
}

impl ReplicaGroup {
    /// Builds a group over `addrs` (each `host:port`). Connections are
    /// opened lazily per replica; an unreachable replica is retried on
    /// every later operation, so a replica that comes up after the
    /// group does is picked up automatically.
    ///
    /// `seed` must equal the replicas' `--seed`: it rebuilds the hash
    /// prototypes used to re-derive estimates from merged state, and
    /// snapshots whose fingerprints disagree with it are refused.
    pub fn new(addrs: Vec<String>, mode: ReplicaMode, seed: u64) -> Result<Self, ReplicaError> {
        if addrs.is_empty() {
            return Err(ReplicaError::NoReplicas);
        }
        let n = addrs.len();
        Ok(ReplicaGroup {
            addrs,
            mode,
            seed,
            retry_limit: 2,
            backoff: Duration::from_millis(20),
            clients: (0..n).map(|_| None).collect(),
            ledgers: (0..n).map(|_| Ledger::default()).collect(),
            protos: HashMap::new(),
            caches: (0..n).map(|_| HashMap::new()).collect(),
            accums: HashMap::new(),
            supports_delta: vec![true; n],
            delta_reads: true,
            delta_stats: DeltaStats::default(),
            pending_pushes: Vec::new(),
            catchup: CatchupStats::default(),
        })
    }

    /// The placement mode.
    pub fn mode(&self) -> ReplicaMode {
        self.mode
    }

    /// Number of configured replicas.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the group has no replicas (never true once built).
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Sets how many reconnect attempts (with backoff between them) an
    /// operation may spend per replica before degrading (default 2).
    pub fn set_retry_limit(&mut self, limit: u32) {
        self.retry_limit = limit;
    }

    /// Sets the pause between reconnect attempts (default 20ms).
    pub fn set_backoff(&mut self, backoff: Duration) {
        self.backoff = backoff;
    }

    /// Turns the delta-cached read path off (on by default): merged
    /// reads then pull full snapshots every time, as before
    /// `SNAPSHOT_SINCE` existed — the baseline the wire-byte savings
    /// are measured against.
    pub fn set_delta_reads(&mut self, enabled: bool) {
        self.delta_reads = enabled;
    }

    /// Cumulative snapshot-read accounting (deltas and fulls alike).
    pub fn delta_stats(&self) -> DeltaStats {
        self.delta_stats
    }

    /// Cumulative catch-up (anti-entropy) accounting.
    pub fn catchup_stats(&self) -> CatchupStats {
        self.catchup
    }

    /// Retained states still waiting to be pushed back to a rejoined
    /// replica (0 once the group has converged).
    pub fn catchup_pending(&self) -> usize {
        self.pending_pushes.len()
    }

    /// Drops the held connection to replica `i` (if any). The next
    /// operation reconnects; useful for operators cycling a replica
    /// and for tests simulating one dying mid-run.
    pub fn disconnect(&mut self, i: usize) {
        self.clients[i] = None;
    }

    /// Per-replica health rows.
    pub fn health(&self) -> Vec<ReplicaHealth> {
        self.addrs
            .iter()
            .zip(&self.clients)
            .zip(&self.ledgers)
            .map(|((addr, client), ledger)| ReplicaHealth {
                addr: addr.clone(),
                connected: client.is_some(),
                failures: ledger.failures,
            })
            .collect()
    }

    /// The partition route of `key`: which replica its substream
    /// lives on (before failover).
    pub fn route(&self, key: u64) -> usize {
        (mix64(key) % self.addrs.len() as u64) as usize
    }

    /// Ensures a connection to replica `i`, retrying a bounded number
    /// of times with backoff; `None` when it stays unreachable.
    fn ensure_client(&mut self, i: usize) -> Option<&mut Client> {
        if self.clients[i].is_none() {
            let mut attempts_left = self.retry_limit;
            loop {
                match Client::connect(self.addrs[i].as_str()) {
                    Ok(mut c) => {
                        // The group does its own retrying in `read_on`
                        // (with a *new* client, hence a new
                        // generation). The client's internal
                        // reconnect-and-resend must stay off: it would
                        // resend a delta base chosen under the old
                        // generation over a connection whose epochs may
                        // mean something else.
                        c.set_reconnect_limit(0);
                        self.clients[i] = Some(c);
                        break;
                    }
                    Err(_) if attempts_left > 0 => {
                        attempts_left -= 1;
                        self.ledgers[i].failures += 1;
                        // lint:allow sleep — bounded backoff between reconnects to a down replica
                        std::thread::sleep(self.backoff);
                    }
                    Err(_) => {
                        self.ledgers[i].failures += 1;
                        return None;
                    }
                }
            }
        }
        self.clients[i].as_mut()
    }

    /// Runs an idempotent request against replica `i` with bounded
    /// reconnect retries. `Ok(None)` = unreachable (degrade);
    /// `Err` = the replica answered a refusal (do not degrade —
    /// surfacing a config mismatch matters more than availability).
    fn read_on<T>(
        &mut self,
        i: usize,
        f: impl Fn(&mut Client) -> Result<T, ClientError>,
    ) -> Result<Option<T>, ReplicaError> {
        let mut attempts_left = self.retry_limit;
        loop {
            let Some(client) = self.ensure_client(i) else {
                return Ok(None);
            };
            match f(client) {
                Ok(v) => return Ok(Some(v)),
                Err(e) if transient(&e) => {
                    self.clients[i] = None;
                    self.ledgers[i].failures += 1;
                    if attempts_left == 0 {
                        return Ok(None);
                    }
                    attempts_left -= 1;
                    // lint:allow sleep — bounded backoff before retrying an idempotent read
                    std::thread::sleep(self.backoff);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Sends one write (update or batch) to replica `i`, exactly once:
    /// a mid-roundtrip death is reported as [`SendFailure::Ambiguous`],
    /// never resent here.
    fn send_write(
        &mut self,
        i: usize,
        object: u32,
        items: &[(u64, u64)],
    ) -> Result<(), SendFailure> {
        let weight: u64 = items.iter().map(|&(_, w)| w).sum();
        let Some(client) = self.ensure_client(i) else {
            return Err(SendFailure::Unreached);
        };
        let sent = if let [(key, w)] = items {
            client.object_id(object).update(*key, *w)
        } else {
            client.object_id(object).batch(items)
        };
        match sent {
            Ok(_) => {
                Ledger::bump(&mut self.ledgers[i].acked, object, weight);
                Ok(())
            }
            Err(e) if transient(&e) => {
                self.clients[i] = None;
                self.ledgers[i].failures += 1;
                Err(SendFailure::Ambiguous)
            }
            Err(e) => Err(SendFailure::Fatal(e)),
        }
    }

    /// Partition-mode write of a sub-batch whose primary is
    /// `route(items[0].0)`: tries the primary, then fails over to the
    /// next replicas in ring order. Returns the replica that applied.
    fn write_partitioned(
        &mut self,
        object: u32,
        items: &[(u64, u64)],
    ) -> Result<usize, ReplicaError> {
        let n = self.addrs.len();
        let primary = self.route(items[0].0);
        let weight: u64 = items.iter().map(|&(_, w)| w).sum();
        for off in 0..n {
            let i = (primary + off) % n;
            match self.send_write(i, object, items) {
                Ok(()) => return Ok(i),
                Err(SendFailure::Unreached) => {}
                Err(SendFailure::Ambiguous) => {
                    // Possibly applied at i; the failover may double
                    // it, or it may be lost — both sides of the merged
                    // envelope widen by this weight.
                    Ledger::bump(&mut self.ledgers[i].in_doubt, object, weight);
                }
                Err(SendFailure::Fatal(e)) => return Err(e.into()),
            }
        }
        Err(ReplicaError::AllUnreachable { what: "update" })
    }

    /// Mirror-mode write: fans `items` to every replica; succeeds if
    /// at least one acknowledged. Replicas that missed it are debited
    /// in their ledger so merged reads widen accordingly.
    fn write_mirrored(
        &mut self,
        object: u32,
        items: &[(u64, u64)],
    ) -> Result<Vec<usize>, ReplicaError> {
        let weight: u64 = items.iter().map(|&(_, w)| w).sum();
        let mut applied = Vec::new();
        for i in 0..self.addrs.len() {
            match self.send_write(i, object, items) {
                Ok(()) => applied.push(i),
                Err(SendFailure::Unreached) | Err(SendFailure::Ambiguous) => {
                    // Max-merge cannot double-count, so ambiguity just
                    // means "treat as missed" (conservative).
                    Ledger::bump(&mut self.ledgers[i].missed, object, weight);
                }
                Err(SendFailure::Fatal(e)) => return Err(e.into()),
            }
        }
        if applied.is_empty() {
            return Err(ReplicaError::AllUnreachable { what: "update" });
        }
        Ok(applied)
    }

    /// Ingests `weight` occurrences of `key` into object `object`.
    /// Returns the replica indices that acknowledged (one in partition
    /// mode, every reachable replica in mirror mode).
    pub fn update(
        &mut self,
        object: u32,
        key: u64,
        weight: u64,
    ) -> Result<Vec<usize>, ReplicaError> {
        self.batch(object, &[(key, weight)])
    }

    /// Ingests many `(key, weight)` pairs. Partition mode splits the
    /// batch by key route and sends one sub-batch per replica; mirror
    /// mode fans the whole batch to every reachable replica.
    pub fn batch(&mut self, object: u32, items: &[(u64, u64)]) -> Result<Vec<usize>, ReplicaError> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        match self.mode {
            ReplicaMode::Mirror => self.write_mirrored(object, items),
            ReplicaMode::Partition => {
                let n = self.addrs.len();
                let mut routed: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
                for &(key, weight) in items {
                    routed[self.route(key)].push((key, weight));
                }
                let mut applied = Vec::new();
                for sub in routed.iter().filter(|sub| !sub.is_empty()) {
                    let i = self.write_partitioned(object, sub)?;
                    if !applied.contains(&i) {
                        applied.push(i);
                    }
                }
                Ok(applied)
            }
        }
    }

    /// Pulls every reachable replica's snapshot of `object`; `None`
    /// entries are replicas that stayed unreachable after retries.
    fn gather(&mut self, object: u32) -> Result<Vec<Option<ObjectSnapshot>>, ReplicaError> {
        let mut parts = Vec::with_capacity(self.addrs.len());
        for i in 0..self.addrs.len() {
            let got = self.read_on(i, move |c| {
                let (out0, in0) = c.wire_bytes();
                let snap = c.snapshot(object)?;
                let (out1, in1) = c.wire_bytes();
                Ok((snap, out1 - out0, in1 - in0))
            })?;
            let snap = got.map(|(s, bytes_out, bytes_in)| {
                self.delta_stats.reads += 1;
                self.delta_stats.fulls += 1;
                self.delta_stats.bytes_out += bytes_out;
                self.delta_stats.bytes_in += bytes_in;
                self.ledgers[i]
                    .last_seen
                    .insert(object, s.envelope.observed());
                s
            });
            parts.push(snap);
        }
        if parts.iter().all(Option::is_none) {
            return Err(ReplicaError::AllUnreachable { what: "snapshot" });
        }
        Ok(parts)
    }

    /// Refreshes every replica's cached snapshot of `object` over the
    /// delta protocol and folds the changes into the merged
    /// accumulator. Returns which replicas answered this round.
    fn refresh(&mut self, object: u32) -> Result<Vec<bool>, ReplicaError> {
        // Catch-up pushes detected by the previous refresh go out
        // first: a replica caught up here re-reads as fully converged
        // in this very round.
        self.flush_pending_pushes()?;
        let r = self.refresh_inner(object);
        if r.is_err() {
            // An abandoned refresh may have patched caches without
            // folding the accumulator; drop it so the next read
            // rebuilds from the caches instead of silently drifting.
            self.accums.remove(&object);
        }
        r
    }

    /// Records a rejoin of replica `i`: its fresh state observes less
    /// than what this group had cached from it, so it restarted and
    /// lost history. The displaced cache is retained as the catch-up
    /// payload and the forgotten weight moves to the `lost` ledger
    /// bucket, widening merged envelopes until the push lands.
    fn note_rejoin(&mut self, i: usize, object: u32, old: ObjectSnapshot, lost: u64) {
        self.catchup.detected += 1;
        Ledger::bump(&mut self.ledgers[i].lost, object, lost);
        let observed = old.envelope.observed();
        if let Some(p) = self
            .pending_pushes
            .iter_mut()
            .find(|p| p.replica == i && p.object == object)
        {
            // The replica flapped again before the first push went
            // out. The two retained copies cover disjoint uptime
            // windows of the same replica, so cell-wise addition is
            // their exact union.
            if old.state.merge_into(&mut p.state, MergePolicy::Add).is_ok() {
                p.observed += observed;
            }
            return;
        }
        self.pending_pushes.push(PendingPush {
            replica: i,
            object,
            observed,
            state: old.state,
        });
    }

    /// Sends every retained catch-up payload back over `PUSH_STATE`.
    /// An acknowledged push settles the ledger (`lost` recovered,
    /// `in_doubt` resolved, both moved to `settled`) and invalidates
    /// that replica's cache so the next refresh re-pulls the absorbed
    /// state. An unreachable replica keeps its payload for the next
    /// round; a connection dying mid-roundtrip drops it (absorb is not
    /// idempotent — a resend could double-count) and leaves the `lost`
    /// weight widening, which is conservative. A typed refusal (seed
    /// or fingerprint skew) is surfaced as a [`ReplicaError`].
    fn flush_pending_pushes(&mut self) -> Result<(), ReplicaError> {
        if self.pending_pushes.is_empty() {
            return Ok(());
        }
        let pending = std::mem::take(&mut self.pending_pushes);
        let mut fatal = None;
        for push in pending {
            if fatal.is_some() {
                self.pending_pushes.push(push);
                continue;
            }
            let i = push.replica;
            let object = push.object;
            let sent = match self.ensure_client(i) {
                None => {
                    // Still down: retry on a later refresh (nothing
                    // was sent, so resending later is safe).
                    self.pending_pushes.push(push);
                    continue;
                }
                Some(client) => client.push_state(object, push.observed, push.state),
            };
            self.catchup.pushed += 1;
            match sent {
                Ok(_epoch) => {
                    self.catchup.acked += 1;
                    let ledger = &mut self.ledgers[i];
                    let lost = ledger.lost.remove(&object).unwrap_or(0);
                    let doubt = ledger.in_doubt.remove(&object).unwrap_or(0);
                    Ledger::bump(&mut ledger.settled, object, lost + doubt);
                    self.catchup.settled_weight += lost + doubt;
                    // The replica's state just jumped by the absorbed
                    // weight: drop the cache and the accumulator so
                    // the next refresh re-pulls instead of diffing a
                    // pre-absorb base.
                    self.caches[i].remove(&object);
                    self.accums.remove(&object);
                }
                Err(e) if transient(&e) => {
                    self.clients[i] = None;
                    self.ledgers[i].failures += 1;
                    self.catchup.failed += 1;
                }
                Err(ClientError::Server {
                    code: ErrorCode::MergeMismatch,
                    message,
                }) => {
                    // The replica refused the absorb (seed or
                    // fingerprint skew): surface it in the group's own
                    // typed shape, payload dropped (it can never land).
                    self.catchup.failed += 1;
                    fatal = Some(ReplicaError::MergeMismatch { why: message });
                }
                Err(e) => {
                    self.catchup.failed += 1;
                    fatal = Some(ReplicaError::from(e));
                }
            }
        }
        match fatal {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Drops every connection in `sent[from..]` that still holds an
    /// unread pipelined reply, so a stale frame is never read as the
    /// answer to a later request.
    fn drop_unread(&mut self, sent: &[bool], from: usize) {
        for (j, &pending) in sent.iter().enumerate().skip(from) {
            if pending {
                self.clients[j] = None;
            }
        }
    }

    fn refresh_inner(&mut self, object: u32) -> Result<Vec<bool>, ReplicaError> {
        let n = self.addrs.len();
        let mut outcomes: Vec<Option<RefreshOutcome>> = (0..n).map(|_| None).collect();
        // Phase 1: pipeline the `SNAPSHOT_SINCE` sends over every
        // already-live delta-capable connection, so the steady-state
        // merged read costs one roundtrip total instead of one per
        // replica. Cold or failed connections fall through to the
        // sequential pass below.
        let mut sent = vec![false; n];
        for (i, sent_flag) in sent.iter_mut().enumerate() {
            if !(self.delta_reads && self.supports_delta[i]) {
                continue;
            }
            let cached = self.caches[i].get(&object).map(|c| (c.epoch, c.generation));
            let Some(c) = self.clients[i].as_mut() else {
                continue;
            };
            // Same base rule as the sequential path: only a cache from
            // this exact connection generation may serve as the base.
            let base = match cached {
                Some((epoch, generation)) if generation == c.generation() => epoch,
                _ => u64::MAX,
            };
            let (out0, _) = c.wire_bytes();
            match c.send_snapshot_since(object, base) {
                Ok(()) => {
                    let (out1, _) = c.wire_bytes();
                    self.delta_stats.bytes_out += out1 - out0;
                    *sent_flag = true;
                }
                Err(_) => {
                    // Dead connection: the sequential pass reconnects
                    // (new generation, so the read goes full).
                    self.clients[i] = None;
                    self.ledgers[i].failures += 1;
                }
            }
        }
        // Phase 2: collect the pipelined replies in send order.
        for i in 0..n {
            if !sent[i] {
                continue;
            }
            let (result, generation) = {
                let c = self.clients[i].as_mut().expect("sent on a live client");
                let generation = c.generation();
                let (_, in0) = c.wire_bytes();
                let r = c.recv_snapshot_delta();
                let (_, in1) = c.wire_bytes();
                (r.map(|delta| (delta, in1 - in0)), generation)
            };
            outcomes[i] = match result {
                Ok((delta, bytes_in)) => {
                    self.delta_stats.reads += 1;
                    self.delta_stats.bytes_in += bytes_in;
                    match self.apply_delta(i, object, delta, generation) {
                        Ok(outcome) => Some(outcome),
                        Err(e) => {
                            self.drop_unread(&sent, i + 1);
                            return Err(e);
                        }
                    }
                }
                Err(e) if transient(&e) => {
                    // A died mid-read: the sequential pass retries with
                    // a fresh connection (full snapshot).
                    self.clients[i] = None;
                    self.ledgers[i].failures += 1;
                    None
                }
                Err(ClientError::Server {
                    code: ErrorCode::Protocol,
                    ..
                }) => {
                    // A pre-delta server: 0x15 did not parse there.
                    self.supports_delta[i] = false;
                    None
                }
                Err(e) => {
                    self.drop_unread(&sent, i + 1);
                    return Err(e.into());
                }
            };
        }
        // Phase 3: anything unresolved goes through the sequential
        // path — cold connections, failed sends or reads, pre-delta
        // replicas.
        let mut reached = vec![false; n];
        let mut rebuild = false;
        let mut patches: Vec<StatePatch> = Vec::new();
        for (i, (flag, outcome)) in reached.iter_mut().zip(outcomes).enumerate() {
            let outcome = match outcome {
                Some(o) => o,
                None => self.refresh_one(i, object)?,
            };
            match outcome {
                RefreshOutcome::Unreachable => {}
                RefreshOutcome::Refreshed(StatePatch::Unchanged) => *flag = true,
                RefreshOutcome::Refreshed(StatePatch::Replaced) => {
                    *flag = true;
                    rebuild = true;
                }
                RefreshOutcome::Refreshed(patch) => {
                    *flag = true;
                    patches.push(patch);
                }
            }
        }
        self.fold_accum(object, rebuild, patches)?;
        Ok(reached)
    }

    /// One replica's refresh: `SNAPSHOT_SINCE` the cached epoch when
    /// the cache's connection generation is still live, a full
    /// snapshot otherwise.
    fn refresh_one(&mut self, i: usize, object: u32) -> Result<RefreshOutcome, ReplicaError> {
        if !(self.delta_reads && self.supports_delta[i]) {
            return self.refresh_one_full(i, object);
        }
        let cached = self.caches[i].get(&object).map(|c| (c.epoch, c.generation));
        let got = self.read_on(i, move |c| {
            // A cache from another connection generation is dead: its
            // epoch belongs to whatever server the old connection
            // reached. Only a live match may serve as the delta base;
            // `u64::MAX` (never a real epoch) asks for full state.
            let base = match cached {
                Some((epoch, generation)) if generation == c.generation() => epoch,
                _ => u64::MAX,
            };
            let (out0, in0) = c.wire_bytes();
            let delta = c.snapshot_since(object, base)?;
            let (out1, in1) = c.wire_bytes();
            Ok((delta, c.generation(), out1 - out0, in1 - in0))
        });
        match got {
            Ok(None) => Ok(RefreshOutcome::Unreachable),
            Ok(Some((delta, generation, bytes_out, bytes_in))) => {
                self.delta_stats.reads += 1;
                self.delta_stats.bytes_out += bytes_out;
                self.delta_stats.bytes_in += bytes_in;
                self.apply_delta(i, object, delta, generation)
            }
            Err(ReplicaError::Client(ClientError::Server {
                code: ErrorCode::Protocol,
                ..
            })) => {
                // A pre-delta server: 0x15 did not parse there. Mark it
                // and serve it plain full snapshots from now on.
                self.supports_delta[i] = false;
                self.refresh_one_full(i, object)
            }
            Err(e) => Err(e),
        }
    }

    /// Full-snapshot refresh for replicas that cannot (or should not)
    /// speak deltas; the cache still fills so the replica can be
    /// served stale later, but it never becomes a delta base.
    fn refresh_one_full(&mut self, i: usize, object: u32) -> Result<RefreshOutcome, ReplicaError> {
        let got = self.read_on(i, move |c| {
            let (out0, in0) = c.wire_bytes();
            let snap = c.snapshot(object)?;
            let (out1, in1) = c.wire_bytes();
            Ok((snap, c.generation(), out1 - out0, in1 - in0))
        })?;
        let Some((snapshot, generation, bytes_out, bytes_in)) = got else {
            return Ok(RefreshOutcome::Unreachable);
        };
        self.delta_stats.reads += 1;
        self.delta_stats.fulls += 1;
        self.delta_stats.bytes_out += bytes_out;
        self.delta_stats.bytes_in += bytes_in;
        let observed = snapshot.envelope.observed();
        self.ledgers[i].last_seen.insert(object, observed);
        if let Some(old) = self.caches[i].get(&object) {
            let old_observed = old.snapshot.envelope.observed();
            if observed < old_observed {
                let old = self.caches[i].remove(&object).expect("just found");
                self.note_rejoin(i, object, old.snapshot, old_observed - observed);
            }
        }
        // Plain `SNAPSHOT` carries no epoch: `u64::MAX` keeps the
        // cache mergeable without ever offering it as a base.
        self.caches[i].insert(
            object,
            CachedSnapshot {
                generation,
                epoch: u64::MAX,
                snapshot,
            },
        );
        Ok(RefreshOutcome::Refreshed(StatePatch::Replaced))
    }

    /// Applies one `SNAPSHOT_SINCE` reply to replica `i`'s cache. The
    /// server echoes the base it diffed from; anything that does not
    /// line up with the cache that base came from is surfaced as a
    /// typed mismatch, never silently patched.
    fn apply_delta(
        &mut self,
        i: usize,
        object: u32,
        delta: SnapshotDelta,
        generation: u64,
    ) -> Result<RefreshOutcome, ReplicaError> {
        let observed = delta.envelope.observed();
        self.ledgers[i].last_seen.insert(object, observed);
        // A full state needs no base: it installs a fresh cache. It is
        // also where a rejoin shows itself — a server's `observed` is
        // monotone within one process, so a full state observing
        // *less* than the cache means the replica restarted and lost
        // history; the displaced cache becomes the catch-up payload.
        if let DeltaChange::Full(state) = delta.change {
            self.delta_stats.fulls += 1;
            if let Some(old) = self.caches[i].get(&object) {
                let old_observed = old.snapshot.envelope.observed();
                if observed < old_observed {
                    let old = self.caches[i].remove(&object).expect("just found");
                    self.note_rejoin(i, object, old.snapshot, old_observed - observed);
                }
            }
            self.caches[i].insert(
                object,
                CachedSnapshot {
                    generation,
                    epoch: delta.epoch,
                    snapshot: ObjectSnapshot {
                        object,
                        kind: delta.kind,
                        state,
                        envelope: delta.envelope,
                    },
                },
            );
            return Ok(RefreshOutcome::Refreshed(StatePatch::Replaced));
        }
        // Everything else patches the cache in place; the base the
        // server claims must be the cache actually held, over the same
        // connection generation.
        let (unchanged, base_epoch) = match &delta.change {
            DeltaChange::Unchanged => (true, None),
            DeltaChange::CmRuns { base_epoch, .. } | DeltaChange::HllRange { base_epoch, .. } => {
                (false, Some(*base_epoch))
            }
            DeltaChange::Full(_) => unreachable!("handled above"),
        };
        if unchanged {
            self.delta_stats.unchanged += 1;
        } else {
            self.delta_stats.deltas += 1;
        }
        let Some(cache) = self.caches[i].get_mut(&object) else {
            return Err(ReplicaError::MergeMismatch {
                why: if unchanged {
                    format!(
                        "object {object}: replica {i} answered `unchanged` with no cache to keep"
                    )
                } else {
                    format!("object {object}: replica {i} sent a delta with no cache to patch")
                },
            });
        };
        match base_epoch {
            None if cache.generation != generation => {
                return Err(ReplicaError::MergeMismatch {
                    why: format!(
                        "object {object}: replica {i} answered `unchanged` across a reconnect"
                    ),
                });
            }
            Some(base) if cache.generation != generation || cache.epoch != base => {
                return Err(ReplicaError::MergeMismatch {
                    why: format!(
                        "object {object}: replica {i} diffed from base {base}, cache holds epoch {} (generation moved or server lied)",
                        cache.epoch
                    ),
                });
            }
            _ => {}
        }
        // The kind and bounds checks — and the patch itself — are the
        // mergeable-state layer's job; this layer only prefixes the
        // object for the operator.
        let patch = cache
            .snapshot
            .state
            .apply_change(delta.change)
            .map_err(|e| ReplicaError::MergeMismatch {
                why: format!("object {object}: {e}"),
            })?;
        cache.epoch = delta.epoch;
        cache.snapshot.envelope = delta.envelope;
        Ok(RefreshOutcome::Refreshed(patch))
    }

    /// Folds this round's cache changes into the merged accumulator —
    /// sparse patches in place; a rebuild when some replica's state was
    /// wholesale replaced, the accumulator does not exist yet, or a
    /// patch does not fit (resync beats guessing).
    fn fold_accum(
        &mut self,
        object: u32,
        rebuild: bool,
        patches: Vec<StatePatch>,
    ) -> Result<(), ReplicaError> {
        if rebuild || (!patches.is_empty() && !self.accums.contains_key(&object)) {
            return self.rebuild_accum(object);
        }
        if patches.is_empty() {
            return Ok(());
        }
        let mode = self.mode;
        let mut resync = false;
        if let Some(accum) = self.accums.get_mut(&object) {
            'fold: for op in &patches {
                match (op, &mut *accum) {
                    (StatePatch::CmCells(patch), MergedCells::Cm { cells, .. }) => {
                        for &(idx, old, new) in patch {
                            if idx >= cells.len() || new < old {
                                resync = true;
                                break 'fold;
                            }
                            match mode {
                                // The accumulator is the sum over
                                // replicas; this replica's cell moved
                                // by `new - old` (cells are monotone
                                // within one connection).
                                ReplicaMode::Partition => cells[idx] += new - old,
                                ReplicaMode::Mirror => cells[idx] = cells[idx].max(new),
                            }
                        }
                    }
                    (
                        StatePatch::HllRange { lo, registers },
                        MergedCells::Hll { registers: acc, .. },
                    ) => {
                        if lo + registers.len() > acc.len() {
                            resync = true;
                            break 'fold;
                        }
                        for (k, &b) in registers.iter().enumerate() {
                            acc[lo + k] = acc[lo + k].max(b);
                        }
                    }
                    _ => {
                        resync = true;
                        break 'fold;
                    }
                }
            }
        }
        if resync {
            return self.rebuild_accum(object);
        }
        Ok(())
    }

    /// Rebuilds the merged accumulator for `object` from every cached
    /// snapshot (scalar kinds keep no accumulator — their merge is
    /// already O(replicas)).
    fn rebuild_accum(&mut self, object: u32) -> Result<(), ReplicaError> {
        let mut states: Vec<&SnapshotState> = Vec::new();
        let mut kind = None;
        for cache in self.caches.iter().filter_map(|m| m.get(&object)) {
            match kind {
                None => kind = Some(cache.snapshot.kind),
                Some(k) if k != cache.snapshot.kind => {
                    return Err(ReplicaError::MergeMismatch {
                        why: format!("object {object}: replicas disagree on object kind"),
                    });
                }
                Some(_) => {}
            }
            states.push(&cache.snapshot.state);
        }
        let accum = match kind {
            None => None,
            Some(ObjectKind::CountMin) => {
                let (width, depth, hash_fp, cells) = cm_merge_cells(self.mode, object, &states)?;
                Some(MergedCells::Cm {
                    width,
                    depth,
                    hash_fp,
                    cells,
                })
            }
            Some(ObjectKind::Hll) => {
                let (hash_fp, registers) = hll_merge_registers(object, &states)?;
                Some(MergedCells::Hll { hash_fp, registers })
            }
            Some(ObjectKind::Morris | ObjectKind::MinRegister) => None,
        };
        match accum {
            Some(a) => {
                self.accums.insert(object, a);
            }
            None => {
                self.accums.remove(&object);
            }
        }
        Ok(())
    }

    /// Composes a merged read from the caches — the fast path behind
    /// [`query`](Self::query). `reached[i]` says whether replica `i`
    /// answered this round; a cached-but-silent replica still
    /// contributes its cells, with the weight that may have landed
    /// there since the cache was taken priced into `lag`.
    fn answer_cached(
        &mut self,
        object: u32,
        key: u64,
        reached: &[bool],
    ) -> Result<MergedRead, ReplicaError> {
        let n = self.addrs.len();
        let mut kind: Option<ObjectKind> = None;
        let mut envelopes = Vec::new();
        let mut parts: Vec<Option<u64>> = vec![None; n];
        let mut missing = 0u64; // unreachable with nothing cached
        let mut stale = 0u64; // cached but silent this round
        for i in 0..n {
            let known = Ledger::get(&self.ledgers[i].acked, object)
                .max(Ledger::get(&self.ledgers[i].last_seen, object));
            match self.caches[i].get(&object) {
                Some(cache) => {
                    match kind {
                        None => kind = Some(cache.snapshot.kind),
                        Some(k) if k != cache.snapshot.kind => {
                            return Err(ReplicaError::MergeMismatch {
                                why: format!("object {object}: replicas disagree on object kind"),
                            });
                        }
                        Some(_) => {}
                    }
                    envelopes.push(cache.snapshot.envelope.clone());
                    parts[i] = Some(cache.snapshot.envelope.observed());
                    if !reached[i] {
                        stale += known.saturating_sub(cache.snapshot.envelope.observed());
                    }
                }
                None => missing += known,
            }
        }
        let Some(kind) = kind else {
            return Err(ReplicaError::AllUnreachable { what: "snapshot" });
        };
        let doubt = self.doubt(object);
        let lost = self.lost(object);
        let mirror_missed = (0..n)
            .filter(|&i| parts[i].is_some())
            .map(|i| Ledger::get(&self.ledgers[i].missed, object))
            .min()
            .unwrap_or(0);
        let envelope = match kind {
            ObjectKind::CountMin => {
                let Some(MergedCells::Cm {
                    width,
                    depth,
                    hash_fp,
                    cells,
                }) = self.accums.get(&object)
                else {
                    return Err(ReplicaError::MergeMismatch {
                        why: format!("object {object}: merged accumulator lost sync with caches"),
                    });
                };
                let (widen_lag, widen_eps) = match self.mode {
                    ReplicaMode::Partition => (missing + doubt + stale + lost, doubt),
                    ReplicaMode::Mirror => (mirror_missed + stale + lost, 0),
                };
                cm_compose(
                    &mut self.protos,
                    self.seed,
                    self.mode,
                    object,
                    Some(key),
                    (*width, *depth, *hash_fp),
                    cells,
                    &envelopes,
                    widen_lag,
                    widen_eps,
                )?
            }
            ObjectKind::Hll => {
                let Some(MergedCells::Hll { hash_fp, registers }) = self.accums.get(&object) else {
                    return Err(ReplicaError::MergeMismatch {
                        why: format!("object {object}: merged accumulator lost sync with caches"),
                    });
                };
                hll_compose(
                    &mut self.protos,
                    self.seed,
                    self.mode,
                    object,
                    *hash_fp,
                    registers,
                    &envelopes,
                )?
            }
            ObjectKind::Morris | ObjectKind::MinRegister => {
                let included: Vec<&ObjectSnapshot> = self
                    .caches
                    .iter()
                    .filter_map(|m| m.get(&object))
                    .map(|c| &c.snapshot)
                    .collect();
                let (_, envelope) = if kind == ObjectKind::Morris {
                    merge_morris(object, &included, &envelopes, self.mode)?
                } else {
                    merge_min(object, &included, &envelopes, self.mode)?
                };
                envelope
            }
        };
        Ok(MergedRead {
            envelope,
            reached: reached.iter().filter(|&&r| r).count(),
            total: n,
            parts,
            missing_observed: missing + stale + lost,
        })
    }

    /// The weight the merge cannot see: each unreachable replica's
    /// recorded update count — the larger of what this group routed to
    /// it and what its last snapshot reported.
    fn missing_observed(&self, object: u32, parts: &[Option<ObjectSnapshot>]) -> u64 {
        parts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(i, _)| {
                Ledger::get(&self.ledgers[i].acked, object)
                    .max(Ledger::get(&self.ledgers[i].last_seen, object))
            })
            .sum()
    }

    /// Total in-doubt weight for `object` (partition failovers whose
    /// first attempt died mid-roundtrip).
    fn doubt(&self, object: u32) -> u64 {
        self.ledgers
            .iter()
            .map(|l| Ledger::get(&l.in_doubt, object))
            .sum()
    }

    /// Total weight rejoined replicas demonstrably forgot and have not
    /// yet been caught up on — widens merged `lag` in both modes until
    /// the retained state is pushed back and acknowledged.
    fn lost(&self, object: u32) -> u64 {
        self.ledgers
            .iter()
            .map(|l| Ledger::get(&l.lost, object))
            .sum()
    }

    /// Mirror-mode under-count bound: every included replica saw all
    /// acknowledged weight except what it missed, so the max-merge
    /// undershoots by at most the *smallest* miss among them.
    fn mirror_missed(&self, object: u32, parts: &[Option<ObjectSnapshot>]) -> u64 {
        parts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_some())
            .map(|(i, _)| Ledger::get(&self.ledgers[i].missed, object))
            .min()
            .unwrap_or(0)
    }

    /// Merges gathered snapshots into one state + composed envelope.
    /// `key` picks the frequency point estimate; `None` keeps the
    /// snapshot-form zero sentinels.
    fn merge_parts(
        &mut self,
        object: u32,
        key: Option<u64>,
        parts: Vec<Option<ObjectSnapshot>>,
    ) -> Result<MergedSnapshot, ReplicaError> {
        let included: Vec<&ObjectSnapshot> = parts.iter().flatten().collect();
        let kind = included[0].kind;
        if included.iter().any(|s| s.kind != kind) {
            return Err(ReplicaError::MergeMismatch {
                why: format!("object {object}: replicas disagree on object kind"),
            });
        }
        let missing = self.missing_observed(object, &parts);
        let doubt = self.doubt(object);
        let lost = self.lost(object);
        let mirror_missed = self.mirror_missed(object, &parts);
        let envelopes: Vec<ErrorEnvelope> = included.iter().map(|s| s.envelope.clone()).collect();

        let (state, envelope) = match kind {
            ObjectKind::CountMin => self.merge_count_min(
                object,
                key,
                &included,
                &envelopes,
                missing + lost,
                doubt,
                mirror_missed + lost,
            )?,
            ObjectKind::Hll => self.merge_hll(object, &included, &envelopes)?,
            ObjectKind::Morris => merge_morris(object, &included, &envelopes, self.mode)?,
            ObjectKind::MinRegister => merge_min(object, &included, &envelopes, self.mode)?,
        };
        Ok(MergedSnapshot {
            object,
            kind,
            state,
            envelope,
            parts: parts
                .iter()
                .map(|p| p.as_ref().map(|s| s.envelope.observed()))
                .collect(),
            missing_observed: missing,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn merge_count_min(
        &mut self,
        object: u32,
        key: Option<u64>,
        included: &[&ObjectSnapshot],
        envelopes: &[ErrorEnvelope],
        missing: u64,
        doubt: u64,
        mirror_missed: u64,
    ) -> Result<(SnapshotState, ErrorEnvelope), ReplicaError> {
        let states: Vec<&SnapshotState> = included.iter().map(|s| &s.state).collect();
        let (width, depth, hash_fp, merged) = cm_merge_cells(self.mode, object, &states)?;
        let (widen_lag, widen_eps) = match self.mode {
            ReplicaMode::Partition => (missing + doubt, doubt),
            ReplicaMode::Mirror => (mirror_missed, 0),
        };
        let envelope = cm_compose(
            &mut self.protos,
            self.seed,
            self.mode,
            object,
            key,
            (width, depth, hash_fp),
            &merged,
            envelopes,
            widen_lag,
            widen_eps,
        )?;
        let state = SnapshotState::CountMin {
            width,
            depth,
            hash_fp,
            cells: merged,
        };
        Ok((state, envelope))
    }

    fn merge_hll(
        &mut self,
        object: u32,
        included: &[&ObjectSnapshot],
        envelopes: &[ErrorEnvelope],
    ) -> Result<(SnapshotState, ErrorEnvelope), ReplicaError> {
        let states: Vec<&SnapshotState> = included.iter().map(|s| &s.state).collect();
        let (hash_fp, merged) = hll_merge_registers(object, &states)?;
        let envelope = hll_compose(
            &mut self.protos,
            self.seed,
            self.mode,
            object,
            hash_fp,
            &merged,
            envelopes,
        )?;
        Ok((
            SnapshotState::Hll {
                hash_fp,
                registers: merged,
            },
            envelope,
        ))
    }

    /// A merged snapshot of `object` over the reachable replicas.
    pub fn snapshot_merged(&mut self, object: u32) -> Result<MergedSnapshot, ReplicaError> {
        let parts = self.gather(object)?;
        self.merge_parts(object, None, parts)
    }

    /// Answers a query for `key` on `object` by merging the replicas'
    /// states — the group's read primitive. With delta reads on (the
    /// default) each replica is asked only what changed since its
    /// cached epoch; quiescent replicas answer a tiny `Unchanged`
    /// frame and the persistent accumulator re-merges nothing.
    pub fn query(&mut self, object: u32, key: u64) -> Result<MergedRead, ReplicaError> {
        if !self.delta_reads {
            let parts = self.gather(object)?;
            let total = parts.len();
            let merged = self.merge_parts(object, Some(key), parts)?;
            return Ok(MergedRead {
                reached: merged.parts.iter().flatten().count(),
                total,
                envelope: merged.envelope,
                parts: merged.parts,
                missing_observed: merged.missing_observed,
            });
        }
        let reached = self.refresh(object)?;
        self.answer_cached(object, key, &reached)
    }

    /// The object roster, from the first reachable replica (rosters
    /// must agree for the group to be meaningful).
    pub fn objects(&mut self) -> Result<Vec<ObjectInfo>, ReplicaError> {
        for i in 0..self.addrs.len() {
            if let Some(infos) = self.read_on(i, |c| c.objects())? {
                return Ok(infos);
            }
        }
        Err(ReplicaError::AllUnreachable { what: "objects" })
    }

    /// Asks every reachable replica to shut down; returns how many
    /// acknowledged.
    pub fn shutdown(&mut self) -> usize {
        let mut acked = 0;
        for i in 0..self.addrs.len() {
            if let Some(client) = self.ensure_client(i) {
                if client.shutdown().is_ok() {
                    acked += 1;
                }
                self.clients[i] = None;
            }
        }
        acked
    }
}

/// The CountMin prototype for `object`, rebuilt from the group seed
/// and checked against the snapshot fingerprint.
fn cm_proto_for(
    protos: &mut HashMap<u32, Proto>,
    seed: u64,
    object: u32,
    width: u32,
    depth: u32,
    hash_fp: u64,
) -> Result<&CountMin, ReplicaError> {
    let entry = protos.entry(object).or_insert_with(|| {
        let params = CountMinParams {
            width: width as usize,
            depth: depth as usize,
        };
        let mut coins = slot_coins(seed, object);
        Proto::Cm(CountMin::new(params, &mut coins))
    });
    match entry {
        Proto::Cm(proto) => {
            if cm_hash_fingerprint(proto.hashes()) != hash_fp {
                return Err(ReplicaError::MergeMismatch {
                    why: format!(
                        "object {object}: replica CountMin coins do not match group seed {seed}"
                    ),
                });
            }
            Ok(proto)
        }
        _ => Err(ReplicaError::MergeMismatch {
            why: format!("object {object} changed kind across reads"),
        }),
    }
}

/// The HLL prototype for `object`, rebuilt from the group seed and
/// checked against the snapshot fingerprint.
fn hll_proto_for(
    protos: &mut HashMap<u32, Proto>,
    seed: u64,
    object: u32,
    registers: usize,
    hash_fp: u64,
) -> Result<&HyperLogLog, ReplicaError> {
    let entry = protos.entry(object).or_insert_with(|| {
        let precision = registers.trailing_zeros();
        let mut coins = slot_coins(seed, object);
        Proto::Hll(HyperLogLog::new(precision, &mut coins))
    });
    match entry {
        Proto::Hll(proto) => {
            if hll_hash_fingerprint(proto) != hash_fp {
                return Err(ReplicaError::MergeMismatch {
                    why: format!(
                        "object {object}: replica HLL coins do not match group seed {seed}"
                    ),
                });
            }
            Ok(proto)
        }
        _ => Err(ReplicaError::MergeMismatch {
            why: format!("object {object} changed kind across reads"),
        }),
    }
}

/// Cell-merges CountMin states through the mergeable-state layer (sum
/// in partition, max in mirror — [`policy_for`]) after it checks they
/// share dimensions and coins. Returns
/// `(width, depth, hash_fp, merged_cells)`.
fn cm_merge_cells(
    mode: ReplicaMode,
    object: u32,
    states: &[&SnapshotState],
) -> Result<(u32, u32, u64, Vec<u64>), ReplicaError> {
    let merged =
        merge_states(policy_for(mode), states).map_err(|e| ReplicaError::MergeMismatch {
            why: format!("object {object}: {e}"),
        })?;
    let SnapshotState::CountMin {
        width,
        depth,
        hash_fp,
        cells,
    } = merged
    else {
        return Err(ReplicaError::MergeMismatch {
            why: format!("object {object}: kind tag and state disagree"),
        });
    };
    Ok((width, depth, hash_fp, cells))
}

/// Composes the CountMin envelope for already-merged cells: derives
/// the point estimate from them, composes the parts' envelopes, and
/// widens `lag` by `widen_lag` and `ε` by `widen_eps` (the weight the
/// merge cannot see, and the weight that may have double-counted).
#[allow(clippy::too_many_arguments)]
fn cm_compose(
    protos: &mut HashMap<u32, Proto>,
    seed: u64,
    mode: ReplicaMode,
    object: u32,
    key: Option<u64>,
    dims: (u32, u32, u64),
    merged: &[u64],
    envelopes: &[ErrorEnvelope],
    widen_lag: u64,
    widen_eps: u64,
) -> Result<ErrorEnvelope, ReplicaError> {
    let (width, depth, hash_fp) = dims;
    let proto = cm_proto_for(protos, seed, object, width, depth, hash_fp)?;
    let estimate = key
        .map(|k| {
            (0..depth as usize)
                .map(|row| merged[proto.cell_index(row, k)])
                .min()
                .unwrap_or(0)
        })
        .unwrap_or(0);
    match mode {
        ReplicaMode::Partition => {
            // Compose the parts' (ε, δ, n, lag), then install the
            // estimate derived from the merged (summed) cells and
            // widen for what the merge cannot see.
            let keyed: Vec<ErrorEnvelope> = envelopes
                .iter()
                .map(|e| match e {
                    ErrorEnvelope::Frequency(env) => {
                        let mut env = *env;
                        env.key = key.unwrap_or(0);
                        env.estimate = 0;
                        ErrorEnvelope::Frequency(env)
                    }
                    other => other.clone(),
                })
                .collect();
            let ErrorEnvelope::Frequency(mut acc) = ErrorEnvelope::compose(&keyed)? else {
                return Err(ReplicaError::MergeMismatch {
                    why: format!("object {object}: kind tag and envelope disagree"),
                });
            };
            acc.estimate = estimate;
            acc.lag += widen_lag;
            acc.epsilon += widen_eps;
            Ok(ErrorEnvelope::Frequency(acc))
        }
        ReplicaMode::Mirror => {
            let freqs: Vec<&Envelope> = envelopes
                .iter()
                .filter_map(ErrorEnvelope::frequency)
                .collect();
            if freqs.len() != envelopes.len() {
                return Err(ReplicaError::MergeMismatch {
                    why: format!("object {object}: kind tag and envelope disagree"),
                });
            }
            let head = freqs[0];
            if freqs.iter().any(|e| e.alpha != head.alpha) {
                return Err(ReplicaError::Compose(ComposeError::ParamMismatch("alpha")));
            }
            let stream_len = freqs.iter().map(|e| e.stream_len).max().unwrap_or(0);
            let lag = freqs.iter().map(|e| e.lag).max().unwrap_or(0);
            let mut env = Envelope::new(
                key.unwrap_or(0),
                estimate,
                stream_len,
                head.alpha,
                head.delta,
                lag,
            );
            // Every included replica missed at most the smallest
            // recorded miss (plus any staleness), folded in by the
            // caller as `widen_lag`.
            env.lag += widen_lag;
            env.epsilon += widen_eps;
            Ok(ErrorEnvelope::Frequency(env))
        }
    }
}

/// Register-merges HLL states through the mergeable-state layer (max
/// in both modes — the register join is idempotent) after it checks
/// they share precision and coins. Returns `(hash_fp, merged_registers)`.
fn hll_merge_registers(
    object: u32,
    states: &[&SnapshotState],
) -> Result<(u64, Vec<u8>), ReplicaError> {
    let merged =
        merge_states(MergePolicy::Join, states).map_err(|e| ReplicaError::MergeMismatch {
            why: format!("object {object}: {e}"),
        })?;
    let SnapshotState::Hll { hash_fp, registers } = merged else {
        return Err(ReplicaError::MergeMismatch {
            why: format!("object {object}: kind tag and state disagree"),
        });
    };
    Ok((hash_fp, registers))
}

/// Composes the cardinality envelope for already-merged HLL registers.
fn hll_compose(
    protos: &mut HashMap<u32, Proto>,
    seed: u64,
    mode: ReplicaMode,
    object: u32,
    hash_fp: u64,
    merged: &[u8],
    envelopes: &[ErrorEnvelope],
) -> Result<ErrorEnvelope, ReplicaError> {
    let proto = hll_proto_for(protos, seed, object, merged.len(), hash_fp)?;
    let mut seq = proto.clone();
    seq.merge_registers(merged);
    let register_sum: u64 = merged.iter().map(|&b| b as u64).sum();
    let observed = envelopes
        .iter()
        .map(ErrorEnvelope::observed)
        .fold(0u64, |acc, o| match mode {
            ReplicaMode::Partition => acc + o,
            ReplicaMode::Mirror => acc.max(o),
        });
    Ok(ErrorEnvelope::Cardinality {
        estimate: seq.estimate(),
        rel_std_err: seq.standard_error(),
        registers: merged.len() as u64,
        register_sum,
        observed,
    })
}

/// Morris merge: envelope-level (the exponent is the state). Partition
/// sums the unbiased estimates over disjoint substreams; mirror keeps
/// the max. The merged state keeps the max exponent as the monotone
/// indicator in both modes.
fn merge_morris(
    object: u32,
    included: &[&ObjectSnapshot],
    envelopes: &[ErrorEnvelope],
    mode: ReplicaMode,
) -> Result<(SnapshotState, ErrorEnvelope), ReplicaError> {
    let states: Vec<&SnapshotState> = included.iter().map(|s| &s.state).collect();
    let merged =
        merge_states(MergePolicy::Join, &states).map_err(|e| ReplicaError::MergeMismatch {
            why: format!("object {object}: {e}"),
        })?;
    let SnapshotState::Morris { exponent: exp_max } = merged else {
        return Err(ReplicaError::MergeMismatch {
            why: format!("object {object}: kind tag and state disagree"),
        });
    };
    let envelope = match mode {
        ReplicaMode::Partition => ErrorEnvelope::compose(envelopes)?,
        ReplicaMode::Mirror => {
            let (mut est, mut a_param, mut obs) = (0.0f64, None, 0u64);
            for env in envelopes {
                let ErrorEnvelope::ApproxCount {
                    estimate,
                    a,
                    observed,
                    ..
                } = env
                else {
                    return Err(ReplicaError::MergeMismatch {
                        why: format!("object {object}: kind tag and envelope disagree"),
                    });
                };
                match a_param {
                    None => a_param = Some(*a),
                    Some(p) if p != *a => {
                        return Err(ReplicaError::Compose(ComposeError::ParamMismatch("a")))
                    }
                    Some(_) => {}
                }
                est = est.max(*estimate);
                obs = obs.max(*observed);
            }
            ErrorEnvelope::ApproxCount {
                estimate: est,
                a: a_param.expect("at least one envelope"),
                exponent: exp_max,
                observed: obs,
            }
        }
    };
    Ok((SnapshotState::Morris { exponent: exp_max }, envelope))
}

/// Min-register merge: the union minimum is the min of part minima in
/// both modes; `observed` sums over disjoint substreams and maxes over
/// mirrored copies.
fn merge_min(
    object: u32,
    included: &[&ObjectSnapshot],
    envelopes: &[ErrorEnvelope],
    mode: ReplicaMode,
) -> Result<(SnapshotState, ErrorEnvelope), ReplicaError> {
    let states: Vec<&SnapshotState> = included.iter().map(|s| &s.state).collect();
    let merged =
        merge_states(MergePolicy::Join, &states).map_err(|e| ReplicaError::MergeMismatch {
            why: format!("object {object}: {e}"),
        })?;
    let SnapshotState::MinRegister { minimum: min } = merged else {
        return Err(ReplicaError::MergeMismatch {
            why: format!("object {object}: kind tag and state disagree"),
        });
    };
    let envelope = match mode {
        ReplicaMode::Partition => ErrorEnvelope::compose(envelopes)?,
        ReplicaMode::Mirror => {
            let mut obs = 0u64;
            for env in envelopes {
                let ErrorEnvelope::Minimum { observed, .. } = env else {
                    return Err(ReplicaError::MergeMismatch {
                        why: format!("object {object}: kind tag and envelope disagree"),
                    });
                };
                obs = obs.max(*observed);
            }
            ErrorEnvelope::Minimum {
                minimum: min,
                observed: obs,
            }
        }
    };
    Ok((SnapshotState::MinRegister { minimum: min }, envelope))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_parse_and_display() {
        assert_eq!(
            "partition".parse::<ReplicaMode>(),
            Ok(ReplicaMode::Partition)
        );
        assert_eq!("mirror".parse::<ReplicaMode>(), Ok(ReplicaMode::Mirror));
        assert!("primary".parse::<ReplicaMode>().is_err());
        assert_eq!(ReplicaMode::Partition.to_string(), "partition");
        assert_eq!(ReplicaMode::Mirror.to_string(), "mirror");
    }

    #[test]
    fn empty_group_is_refused() {
        assert!(matches!(
            ReplicaGroup::new(Vec::new(), ReplicaMode::Partition, 1),
            Err(ReplicaError::NoReplicas)
        ));
    }

    #[test]
    fn route_spreads_and_is_stable() {
        let g = ReplicaGroup::new(
            vec!["a:1".into(), "b:1".into(), "c:1".into()],
            ReplicaMode::Partition,
            1,
        )
        .unwrap();
        let mut hit = [false; 3];
        for key in 0..64u64 {
            let r = g.route(key);
            assert_eq!(r, g.route(key), "route must be deterministic");
            hit[r] = true;
        }
        assert!(
            hit.iter().all(|&h| h),
            "64 keys should touch all 3 replicas"
        );
    }

    #[test]
    fn unreachable_group_degrades_to_error_not_panic() {
        // Port 1 on localhost refuses immediately; with zero retries
        // the group reports AllUnreachable instead of hanging.
        let mut g =
            ReplicaGroup::new(vec!["127.0.0.1:1".into()], ReplicaMode::Partition, 1).unwrap();
        g.set_retry_limit(0);
        assert!(matches!(
            g.update(0, 5, 1),
            Err(ReplicaError::AllUnreachable { .. })
        ));
        assert!(matches!(
            g.query(0, 5),
            Err(ReplicaError::AllUnreachable { .. })
        ));
        let health = g.health();
        assert_eq!(health.len(), 1);
        assert!(!health[0].connected);
        assert!(health[0].failures >= 2);
    }
}
