//! Property tests of the composed-merge algebra the replication layer
//! rests on: partitioning a stream across replicas and merging their
//! mergeable states reproduces the single-stream sketch *exactly*, and
//! the composed [`ErrorEnvelope`] still covers the union stream's true
//! frequencies. Mismatched coins or parameters are refused with typed
//! errors — never a panic, never a silently wrong merge.

use ivl_service::{
    cm_hash_fingerprint, hll_hash_fingerprint, slot_coins, ComposeError, DeltaChange, Envelope,
    ErrorEnvelope, Metrics, ObjectConfig, ObjectKind, ObjectRegistry, SnapshotDelta, SnapshotState,
};
use ivl_sketch::countmin::{CountMin, CountMinParams};
use ivl_sketch::{FrequencySketch, HyperLogLog};
use proptest::prelude::*;
use std::collections::HashMap;

const CM_OBJECT: u32 = 0;
const HLL_OBJECT: u32 = 1;

/// The group's prototype build: dimensions fixed, coins from the
/// shared `(seed, object)` slot — what makes replica states mergeable.
fn fresh_cm(seed: u64) -> CountMin {
    CountMin::new(
        CountMinParams {
            width: 128,
            depth: 6,
        },
        &mut slot_coins(seed, CM_OBJECT),
    )
}

fn fresh_hll(seed: u64) -> HyperLogLog {
    HyperLogLog::new(8, &mut slot_coins(seed, HLL_OBJECT))
}

fn truth_of(stream: &[(u64, u64)]) -> HashMap<u64, u64> {
    let mut t = HashMap::new();
    for &(k, w) in stream {
        *t.entry(k).or_default() += w;
    }
    t
}

/// A served registry as a delta-capable replica runs it: a CountMin
/// and an HLL sharing the group seed, zero write buffer so every
/// update is snapshot-visible immediately.
fn delta_registry(seed: u64) -> ObjectRegistry {
    ObjectRegistry::build(
        &[
            ObjectConfig::new("cm", ObjectKind::CountMin),
            ObjectConfig::new("hll", ObjectKind::Hll),
        ],
        0.005,
        0.01,
        2,
        0,
        seed,
    )
}

/// Applies `batch` to object `id` through its ordinary write path.
fn feed(r: &ObjectRegistry, metrics: &Metrics, id: u32, batch: &[(u64, u64)]) {
    let obj = r.get(id).expect("registered object");
    let mut w = obj.writer(metrics);
    w.ensure_ready().expect("zero-buffer writer acquires");
    for &(k, wt) in batch {
        w.apply(k, wt);
    }
    w.release();
}

/// Applies a `SNAPSHOT_SINCE` reply into a client-side `(epoch, state)`
/// cache exactly as `ReplicaGroup` does: `Unchanged` keeps the cells,
/// runs and register ranges overwrite in place (runs carry summed
/// values, so patching is idempotent), `Full` replaces — refusing any
/// delta whose base epoch does not match the cache.
fn apply_delta(
    cache: &mut Option<(u64, SnapshotState)>,
    delta: SnapshotDelta,
) -> Result<(), String> {
    match delta.change {
        DeltaChange::Unchanged => {
            let Some((epoch, _)) = cache else {
                return Err("`unchanged` reply with no cache to keep".into());
            };
            *epoch = delta.epoch;
        }
        DeltaChange::CmRuns { base_epoch, runs } => {
            let Some((
                epoch,
                SnapshotState::CountMin {
                    width,
                    depth,
                    cells,
                    ..
                },
            )) = cache
            else {
                return Err("cell runs against a missing or non-CountMin cache".into());
            };
            if *epoch != base_epoch {
                return Err(format!(
                    "delta diffed from base {base_epoch}, cache holds epoch {epoch}"
                ));
            }
            let (w, d) = (*width as usize, *depth as usize);
            for run in runs {
                let (row, lo) = (run.row as usize, run.lo as usize);
                if row >= d || lo + run.values.len() > w {
                    return Err("delta run out of bounds".into());
                }
                cells[row * w + lo..row * w + lo + run.values.len()].copy_from_slice(&run.values);
            }
            *epoch = delta.epoch;
        }
        DeltaChange::HllRange {
            base_epoch,
            lo,
            registers,
        } => {
            let Some((
                epoch,
                SnapshotState::Hll {
                    registers: cached, ..
                },
            )) = cache
            else {
                return Err("register range against a missing or non-HLL cache".into());
            };
            if *epoch != base_epoch {
                return Err(format!(
                    "delta diffed from base {base_epoch}, cache holds epoch {epoch}"
                ));
            }
            let lo = lo as usize;
            if lo + registers.len() > cached.len() {
                return Err("delta register range out of bounds".into());
            }
            cached[lo..lo + registers.len()].copy_from_slice(&registers);
            *epoch = delta.epoch;
        }
        DeltaChange::Full(state) => *cache = Some((delta.epoch, state)),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Partitioned CountMin: cell-wise merging the parts reproduces
    /// the single-stream sketch exactly, and the merged estimate sits
    /// inside the envelope composed from the parts' own envelopes —
    /// the replication layer's served bound is the sequential merge
    /// theorem read through Theorem 6, not an invention.
    #[test]
    fn partitioned_countmin_merge_is_exact_and_covered(
        stream in proptest::collection::vec((0u64..40, 1u64..4), 1..200),
        parts in 1usize..5,
        seed in 0u64..1000,
    ) {
        let mut full = fresh_cm(seed);
        let mut shards: Vec<CountMin> = (0..parts).map(|_| fresh_cm(seed)).collect();
        for (i, &(k, w)) in stream.iter().enumerate() {
            full.update_by(k, w);
            shards[i % parts].update_by(k, w);
        }

        let mut merged = fresh_cm(seed);
        for s in &shards {
            merged.merge(s);
        }
        prop_assert_eq!(merged.cells(), full.cells());

        let alpha = merged.params().alpha();
        let delta = merged.params().delta();
        for (&k, &f) in &truth_of(&stream) {
            // Each part's envelope bounds its own substream; compose
            // them as the group does, then install the merged-cells
            // estimate in place of the (over-counting) estimate sum.
            let part_envs: Vec<ErrorEnvelope> = shards
                .iter()
                .map(|s| {
                    ErrorEnvelope::Frequency(Envelope::new(
                        k,
                        s.estimate(k),
                        s.stream_len(),
                        alpha,
                        delta,
                        0,
                    ))
                })
                .collect();
            let composed = match ErrorEnvelope::compose(&part_envs) {
                Ok(env) => env,
                Err(e) => return Err(proptest::test_runner::TestCaseError::fail(
                    format!("same-coin parts must compose: {e}"),
                )),
            };
            let Some(env) = composed.frequency() else {
                return Err(proptest::test_runner::TestCaseError::fail(
                    "composed frequency envelope changed kind",
                ));
            };
            prop_assert_eq!(env.stream_len, full.stream_len());
            let est = merged.estimate(k);
            prop_assert!(
                est <= env.estimate,
                "merged estimate above the sum of part estimates"
            );
            let mut installed = *env;
            installed.estimate = est;
            prop_assert!(
                installed.covers(f, f),
                "merged estimate outside the composed envelope"
            );
        }
    }

    /// Partitioned HLL: register-wise max merging the parts reproduces
    /// the single-stream registers exactly (the merge is idempotent
    /// and commutative), so the merged estimate equals the full
    /// stream's and dominates every part's.
    #[test]
    fn partitioned_hll_merge_equals_single_stream(
        stream in proptest::collection::vec(0u64..10_000, 1..300),
        parts in 1usize..5,
        seed in 0u64..1000,
    ) {
        let mut full = fresh_hll(seed);
        let mut shards: Vec<HyperLogLog> = (0..parts).map(|_| fresh_hll(seed)).collect();
        for (i, &k) in stream.iter().enumerate() {
            full.update(k);
            shards[i % parts].update(k);
        }
        let mut merged = fresh_hll(seed);
        for s in &shards {
            merged.merge(s);
        }
        prop_assert_eq!(merged.registers(), full.registers());
        for s in &shards {
            prop_assert!(merged.estimate() >= s.estimate());
        }
        // Mirroring (merging the same part twice) changes nothing.
        let before = merged.registers().to_vec();
        merged.merge(&shards[0]);
        prop_assert_eq!(merged.registers(), &before[..]);
    }

    /// The probe fingerprints carried in snapshots: equal for replicas
    /// sharing a seed slot, different across seeds — the mechanism
    /// that turns a mis-seeded merge into a typed refusal.
    #[test]
    fn coin_fingerprints_detect_seed_mismatch(
        seed in 0u64..5000,
        skew in 1u64..5000,
    ) {
        let a = fresh_cm(seed);
        let b = fresh_cm(seed);
        let c = fresh_cm(seed + skew);
        prop_assert_eq!(cm_hash_fingerprint(a.hashes()), cm_hash_fingerprint(b.hashes()));
        prop_assert_ne!(cm_hash_fingerprint(a.hashes()), cm_hash_fingerprint(c.hashes()));

        let ha = fresh_hll(seed);
        let hb = fresh_hll(seed);
        let hc = fresh_hll(seed + skew);
        prop_assert_eq!(hll_hash_fingerprint(&ha), hll_hash_fingerprint(&hb));
        prop_assert_ne!(hll_hash_fingerprint(&ha), hll_hash_fingerprint(&hc));
    }

    /// Composition refuses parts that cannot soundly merge — different
    /// kinds, or shared parameters that disagree — with typed errors.
    #[test]
    fn compose_refuses_mismatched_parts_with_typed_errors(
        key in 0u64..100,
        n in 1u64..1000,
        est in 0u64..50,
    ) {
        let freq = ErrorEnvelope::Frequency(Envelope::new(key, est, n, 0.01, 0.01, 0));
        let other_alpha = ErrorEnvelope::Frequency(Envelope::new(key, est, n, 0.02, 0.01, 0));
        prop_assert!(matches!(
            ErrorEnvelope::compose(&[freq.clone(), other_alpha]),
            Err(ComposeError::ParamMismatch("alpha"))
        ));
        let other_key = ErrorEnvelope::Frequency(Envelope::new(key + 1, est, n, 0.01, 0.01, 0));
        prop_assert!(matches!(
            ErrorEnvelope::compose(&[freq.clone(), other_key]),
            Err(ComposeError::ParamMismatch("key"))
        ));
        let minimum = ErrorEnvelope::Minimum {
            minimum: key,
            observed: n,
        };
        prop_assert!(matches!(
            ErrorEnvelope::compose(&[freq, minimum]),
            Err(ComposeError::KindMismatch)
        ));
        prop_assert!(matches!(
            ErrorEnvelope::compose(&[]),
            Err(ComposeError::Empty)
        ));
    }

    /// Random update/delta interleavings against a served registry: a
    /// client cache maintained purely by applying `SNAPSHOT_SINCE`
    /// replies (unchanged / sparse runs / register ranges / full
    /// fallback) stays cell-identical to a fresh full snapshot at
    /// every sync point, for both the CountMin and the HLL — the
    /// equivalence the replicated delta read path rests on. Rounds
    /// that drop the cache (a reconnect) must be answered with a full
    /// state, never a diff against the forgotten base.
    #[test]
    fn delta_applied_cache_is_cell_identical_to_full_snapshot(
        rounds in proptest::collection::vec(
            (proptest::collection::vec((0u64..64, 1u64..4), 0..20), any::<bool>()),
            1..12,
        ),
        seed in 0u64..1000,
    ) {
        let metrics = Metrics::new();
        let r = delta_registry(seed);
        let mut caches: Vec<Option<(u64, SnapshotState)>> = vec![None, None];
        for (batch, drop_cache) in rounds {
            for id in 0..2u32 {
                feed(&r, &metrics, id, &batch);
            }
            for id in 0..2u32 {
                let cache = &mut caches[id as usize];
                if drop_cache {
                    *cache = None;
                }
                let base = cache.as_ref().map_or(u64::MAX, |&(e, _)| e);
                let delta = r.snapshot_since(id, base).expect("registered object");
                if base == u64::MAX {
                    prop_assert!(
                        matches!(delta.change, DeltaChange::Full(_)),
                        "an unknown base must be answered with a full state"
                    );
                }
                if let Err(why) = apply_delta(cache, delta) {
                    return Err(proptest::test_runner::TestCaseError::fail(why));
                }
                let fresh = r.snapshot(id).expect("registered object");
                let (epoch, state) = cache.as_ref().expect("cache filled by reply");
                prop_assert_eq!(
                    state,
                    &fresh.state,
                    "delta-applied cache drifted from the full snapshot"
                );
                prop_assert_eq!(*epoch, r.get(id).expect("registered object").epoch());
            }
            // A quiet re-poll must answer `Unchanged` without touching
            // the (already current) cached cells.
            let delta = r.snapshot_since(0, caches[0].as_ref().expect("cached").0)
                .expect("registered object");
            prop_assert!(matches!(delta.change, DeltaChange::Unchanged));
        }
    }

    /// Partitioned replicas read only through delta caches: summing
    /// the caches' cells reproduces the single-stream CountMin exactly,
    /// and the envelope composed from the parts' cached estimates —
    /// with the merged-cells estimate installed, as the group serves
    /// it — still covers the union stream's true frequencies.
    #[test]
    fn partitioned_delta_caches_merge_covers_union_truth(
        stream in proptest::collection::vec((0u64..40, 1u64..4), 1..160),
        parts in 1usize..4,
        syncs in 1usize..5,
        seed in 0u64..1000,
    ) {
        let metrics = Metrics::new();
        let replicas: Vec<ObjectRegistry> = (0..parts).map(|_| delta_registry(seed)).collect();
        let full = delta_registry(seed);
        let mut caches: Vec<Option<(u64, SnapshotState)>> = vec![None; parts];
        let mut part_len = vec![0u64; parts];
        // Feed the stream in `syncs` slices, refreshing every replica's
        // delta cache after each slice — the interleaving a querying
        // group actually sees.
        let chunk = stream.len().div_ceil(syncs).max(1);
        for (slice_at, slice) in stream.chunks(chunk).enumerate() {
            for (j, &(k, w)) in slice.iter().enumerate() {
                let i = (slice_at * chunk + j) % parts;
                feed(&replicas[i], &metrics, CM_OBJECT, &[(k, w)]);
                feed(&full, &metrics, CM_OBJECT, &[(k, w)]);
                part_len[i] += w;
            }
            for (i, r) in replicas.iter().enumerate() {
                let base = caches[i].as_ref().map_or(u64::MAX, |&(e, _)| e);
                let delta = r.snapshot_since(CM_OBJECT, base).expect("registered object");
                if let Err(why) = apply_delta(&mut caches[i], delta) {
                    return Err(proptest::test_runner::TestCaseError::fail(why));
                }
            }
        }
        // Merge the caches cell-wise, as the group's accumulator does.
        let mut dims = None;
        let mut merged: Vec<u64> = Vec::new();
        for cache in &caches {
            let Some((_, SnapshotState::CountMin { width, depth, hash_fp, cells })) =
                cache.as_ref()
            else {
                return Err(proptest::test_runner::TestCaseError::fail(
                    "every replica cache holds a CountMin after syncing",
                ));
            };
            match dims {
                None => {
                    dims = Some((*width, *depth, *hash_fp));
                    merged = cells.clone();
                }
                Some(d) => {
                    prop_assert_eq!(d, (*width, *depth, *hash_fp));
                    for (m, c) in merged.iter_mut().zip(cells) {
                        *m += c;
                    }
                }
            }
        }
        let (width, depth, hash_fp) = dims.expect("at least one part");
        let proto = CountMin::new(
            CountMinParams {
                width: width as usize,
                depth: depth as usize,
            },
            &mut slot_coins(seed, CM_OBJECT),
        );
        prop_assert_eq!(cm_hash_fingerprint(proto.hashes()), hash_fp);
        // Exactness: delta-applied part caches sum to the single-stream
        // cells (CountMin updates are linear, so partitioning is
        // lossless).
        let full_snap = full.snapshot(CM_OBJECT).expect("registered object");
        let SnapshotState::CountMin { cells: full_cells, .. } = &full_snap.state else {
            return Err(proptest::test_runner::TestCaseError::fail(
                "object 0 snapshots as a CountMin",
            ));
        };
        prop_assert_eq!(&merged, full_cells);
        // Coverage: compose the parts' cached-estimate envelopes and
        // install the merged-cells estimate, as the group serves it.
        let estimate = |cells: &[u64], k: u64| {
            (0..depth as usize)
                .map(|row| cells[proto.cell_index(row, k)])
                .min()
                .unwrap_or(0)
        };
        let alpha = proto.params().alpha();
        let delta_p = proto.params().delta();
        for (&k, &f) in &truth_of(&stream) {
            let part_envs: Vec<ErrorEnvelope> = caches
                .iter()
                .enumerate()
                .map(|(i, cache)| {
                    let Some((_, SnapshotState::CountMin { cells, .. })) = cache.as_ref() else {
                        unreachable!("checked above");
                    };
                    ErrorEnvelope::Frequency(Envelope::new(
                        k,
                        estimate(cells, k),
                        part_len[i],
                        alpha,
                        delta_p,
                        0,
                    ))
                })
                .collect();
            let composed = match ErrorEnvelope::compose(&part_envs) {
                Ok(env) => env,
                Err(e) => return Err(proptest::test_runner::TestCaseError::fail(
                    format!("same-coin parts must compose: {e}"),
                )),
            };
            let Some(env) = composed.frequency() else {
                return Err(proptest::test_runner::TestCaseError::fail(
                    "composed frequency envelope changed kind",
                ));
            };
            prop_assert_eq!(env.stream_len, stream.iter().map(|&(_, w)| w).sum::<u64>());
            let mut installed = *env;
            installed.estimate = estimate(&merged, k);
            prop_assert!(
                installed.covers(f, f),
                "merged delta-cache estimate outside the composed envelope"
            );
        }
    }
}
