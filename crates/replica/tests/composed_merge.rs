//! Property tests of the composed-merge algebra the replication layer
//! rests on: partitioning a stream across replicas and merging their
//! mergeable states reproduces the single-stream sketch *exactly*, and
//! the composed [`ErrorEnvelope`] still covers the union stream's true
//! frequencies. Mismatched coins or parameters are refused with typed
//! errors — never a panic, never a silently wrong merge.

use ivl_service::{
    cm_hash_fingerprint, hll_hash_fingerprint, slot_coins, ComposeError, Envelope, ErrorEnvelope,
};
use ivl_sketch::countmin::{CountMin, CountMinParams};
use ivl_sketch::{FrequencySketch, HyperLogLog};
use proptest::prelude::*;
use std::collections::HashMap;

const CM_OBJECT: u32 = 0;
const HLL_OBJECT: u32 = 1;

/// The group's prototype build: dimensions fixed, coins from the
/// shared `(seed, object)` slot — what makes replica states mergeable.
fn fresh_cm(seed: u64) -> CountMin {
    CountMin::new(
        CountMinParams {
            width: 128,
            depth: 6,
        },
        &mut slot_coins(seed, CM_OBJECT),
    )
}

fn fresh_hll(seed: u64) -> HyperLogLog {
    HyperLogLog::new(8, &mut slot_coins(seed, HLL_OBJECT))
}

fn truth_of(stream: &[(u64, u64)]) -> HashMap<u64, u64> {
    let mut t = HashMap::new();
    for &(k, w) in stream {
        *t.entry(k).or_default() += w;
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Partitioned CountMin: cell-wise merging the parts reproduces
    /// the single-stream sketch exactly, and the merged estimate sits
    /// inside the envelope composed from the parts' own envelopes —
    /// the replication layer's served bound is the sequential merge
    /// theorem read through Theorem 6, not an invention.
    #[test]
    fn partitioned_countmin_merge_is_exact_and_covered(
        stream in proptest::collection::vec((0u64..40, 1u64..4), 1..200),
        parts in 1usize..5,
        seed in 0u64..1000,
    ) {
        let mut full = fresh_cm(seed);
        let mut shards: Vec<CountMin> = (0..parts).map(|_| fresh_cm(seed)).collect();
        for (i, &(k, w)) in stream.iter().enumerate() {
            full.update_by(k, w);
            shards[i % parts].update_by(k, w);
        }

        let mut merged = fresh_cm(seed);
        for s in &shards {
            merged.merge(s);
        }
        prop_assert_eq!(merged.cells(), full.cells());

        let alpha = merged.params().alpha();
        let delta = merged.params().delta();
        for (&k, &f) in &truth_of(&stream) {
            // Each part's envelope bounds its own substream; compose
            // them as the group does, then install the merged-cells
            // estimate in place of the (over-counting) estimate sum.
            let part_envs: Vec<ErrorEnvelope> = shards
                .iter()
                .map(|s| {
                    ErrorEnvelope::Frequency(Envelope::new(
                        k,
                        s.estimate(k),
                        s.stream_len(),
                        alpha,
                        delta,
                        0,
                    ))
                })
                .collect();
            let composed = match ErrorEnvelope::compose(&part_envs) {
                Ok(env) => env,
                Err(e) => return Err(proptest::test_runner::TestCaseError::fail(
                    format!("same-coin parts must compose: {e}"),
                )),
            };
            let Some(env) = composed.frequency() else {
                return Err(proptest::test_runner::TestCaseError::fail(
                    "composed frequency envelope changed kind",
                ));
            };
            prop_assert_eq!(env.stream_len, full.stream_len());
            let est = merged.estimate(k);
            prop_assert!(
                est <= env.estimate,
                "merged estimate above the sum of part estimates"
            );
            let mut installed = *env;
            installed.estimate = est;
            prop_assert!(
                installed.covers(f, f),
                "merged estimate outside the composed envelope"
            );
        }
    }

    /// Partitioned HLL: register-wise max merging the parts reproduces
    /// the single-stream registers exactly (the merge is idempotent
    /// and commutative), so the merged estimate equals the full
    /// stream's and dominates every part's.
    #[test]
    fn partitioned_hll_merge_equals_single_stream(
        stream in proptest::collection::vec(0u64..10_000, 1..300),
        parts in 1usize..5,
        seed in 0u64..1000,
    ) {
        let mut full = fresh_hll(seed);
        let mut shards: Vec<HyperLogLog> = (0..parts).map(|_| fresh_hll(seed)).collect();
        for (i, &k) in stream.iter().enumerate() {
            full.update(k);
            shards[i % parts].update(k);
        }
        let mut merged = fresh_hll(seed);
        for s in &shards {
            merged.merge(s);
        }
        prop_assert_eq!(merged.registers(), full.registers());
        for s in &shards {
            prop_assert!(merged.estimate() >= s.estimate());
        }
        // Mirroring (merging the same part twice) changes nothing.
        let before = merged.registers().to_vec();
        merged.merge(&shards[0]);
        prop_assert_eq!(merged.registers(), &before[..]);
    }

    /// The probe fingerprints carried in snapshots: equal for replicas
    /// sharing a seed slot, different across seeds — the mechanism
    /// that turns a mis-seeded merge into a typed refusal.
    #[test]
    fn coin_fingerprints_detect_seed_mismatch(
        seed in 0u64..5000,
        skew in 1u64..5000,
    ) {
        let a = fresh_cm(seed);
        let b = fresh_cm(seed);
        let c = fresh_cm(seed + skew);
        prop_assert_eq!(cm_hash_fingerprint(a.hashes()), cm_hash_fingerprint(b.hashes()));
        prop_assert_ne!(cm_hash_fingerprint(a.hashes()), cm_hash_fingerprint(c.hashes()));

        let ha = fresh_hll(seed);
        let hb = fresh_hll(seed);
        let hc = fresh_hll(seed + skew);
        prop_assert_eq!(hll_hash_fingerprint(&ha), hll_hash_fingerprint(&hb));
        prop_assert_ne!(hll_hash_fingerprint(&ha), hll_hash_fingerprint(&hc));
    }

    /// Composition refuses parts that cannot soundly merge — different
    /// kinds, or shared parameters that disagree — with typed errors.
    #[test]
    fn compose_refuses_mismatched_parts_with_typed_errors(
        key in 0u64..100,
        n in 1u64..1000,
        est in 0u64..50,
    ) {
        let freq = ErrorEnvelope::Frequency(Envelope::new(key, est, n, 0.01, 0.01, 0));
        let other_alpha = ErrorEnvelope::Frequency(Envelope::new(key, est, n, 0.02, 0.01, 0));
        prop_assert!(matches!(
            ErrorEnvelope::compose(&[freq.clone(), other_alpha]),
            Err(ComposeError::ParamMismatch("alpha"))
        ));
        let other_key = ErrorEnvelope::Frequency(Envelope::new(key + 1, est, n, 0.01, 0.01, 0));
        prop_assert!(matches!(
            ErrorEnvelope::compose(&[freq.clone(), other_key]),
            Err(ComposeError::ParamMismatch("key"))
        ));
        let minimum = ErrorEnvelope::Minimum {
            minimum: key,
            observed: n,
        };
        prop_assert!(matches!(
            ErrorEnvelope::compose(&[freq, minimum]),
            Err(ComposeError::KindMismatch)
        ));
        prop_assert!(matches!(
            ErrorEnvelope::compose(&[]),
            Err(ComposeError::Empty)
        ));
    }
}
