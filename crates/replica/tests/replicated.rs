//! End-to-end replicated serving: 3 real `ivl_serve` backends, a
//! [`ReplicaGroup`] merging their snapshots, and the ISSUE's
//! acceptance scenario — killing one replica mid-run *degrades* the
//! merged answer (served from its cached state, widened only by what
//! might have landed since, no wrong values) instead of erroring.
//! Exercised on both serving backends.

use ivl_replica::{ReplicaError, ReplicaGroup, ReplicaMode};
use ivl_service::{
    objects::{ObjectConfig, ObjectKind},
    Backend, ErrorEnvelope, ServerConfig, ServerHandle,
};
use std::time::Duration;

const SEED: u64 = 11;

fn replica_config(backend: Backend, seed: u64) -> ServerConfig {
    ServerConfig {
        backend,
        shards: 2,
        seed,
        objects: vec![
            ObjectConfig::new("cm", ObjectKind::CountMin),
            ObjectConfig::new("hll", ObjectKind::Hll),
            ObjectConfig::new("morris", ObjectKind::Morris),
            ObjectConfig::new("low", ObjectKind::MinRegister),
        ],
        ..ServerConfig::default()
    }
}

fn spawn_replica(backend: Backend, seed: u64) -> ServerHandle {
    ivl_service::serve("127.0.0.1:0", replica_config(backend, seed)).expect("bind a replica")
}

/// Rebinds the address a just-joined server listened on (the old
/// listener needs a moment to release it).
fn respawn_at(addr: &str, seed: u64) -> ServerHandle {
    for _ in 0..50 {
        match ivl_service::serve(addr, replica_config(Backend::Threaded, seed)) {
            Ok(h) => return h,
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    panic!("could not rebind {addr}");
}

fn group_over(replicas: &[ServerHandle], mode: ReplicaMode) -> ReplicaGroup {
    let addrs = replicas.iter().map(|r| r.addr().to_string()).collect();
    let mut group = ReplicaGroup::new(addrs, mode, SEED).expect("non-empty group");
    // Keep degradation prompt in tests: one reconnect attempt, tiny
    // backoff.
    group.set_retry_limit(1);
    group.set_backoff(Duration::from_millis(1));
    group
}

/// The true (exact) frequency of `key` must be consistent with the
/// merged frequency envelope: estimate never under the true count by
/// more than `lag`, never over it by more than `epsilon`.
fn assert_freq_within(env: &ErrorEnvelope, truth: u64) {
    let env = env.frequency().expect("frequency envelope");
    assert!(
        env.covers(truth, truth),
        "merged estimate {} (eps {}, lag {}) does not cover true frequency {}",
        env.estimate,
        env.epsilon,
        env.lag,
        truth
    );
}

fn partitioned_run(backend: Backend) {
    let mut replicas: Vec<ServerHandle> = (0..3).map(|_| spawn_replica(backend, SEED)).collect();
    let mut group = group_over(&replicas, ReplicaMode::Partition);

    // A skewed stream: key k appears k+1 times, fanned across the
    // replicas by the group's key route.
    let mut truth = [0u64; 16];
    for k in 0..16u64 {
        group.update(0, k, k + 1).expect("partitioned update");
        group.update(1, k, 1).expect("hll update");
        group.update(3, k + 100, 1).expect("min update");
        truth[k as usize] += k + 1;
    }

    // Every replica took a share of the substream.
    let read = group.query(0, 7).expect("merged query");
    assert_eq!((read.reached, read.total), (3, 3));
    assert_eq!(read.missing_observed, 0);
    let total: u64 = read.parts.iter().flatten().sum();
    assert_eq!(total, truth.iter().sum::<u64>(), "parts cover the stream");
    assert!(read.parts.iter().all(|p| p.unwrap() > 0));
    for k in [0u64, 7, 15] {
        let read = group.query(0, k).expect("merged query");
        assert_freq_within(&read.envelope, truth[k as usize]);
    }

    // Merged HLL: 16 distinct keys, estimate in the right ballpark
    // and the merged register sum at least every part's.
    let read = group.query(1, 0).expect("merged hll query");
    match &read.envelope {
        ErrorEnvelope::Cardinality {
            estimate, observed, ..
        } => {
            assert_eq!(*observed, 16);
            assert!(
                (1.0..64.0).contains(estimate),
                "16 distinct keys estimated as {estimate}"
            );
        }
        other => panic!("wanted cardinality envelope, got {other:?}"),
    }

    // Merged min register: the union minimum.
    let read = group.query(3, 0).expect("merged min query");
    assert_eq!(
        read.envelope,
        ErrorEnvelope::Minimum {
            minimum: 100,
            observed: 16,
        }
    );

    // A quiescent group answers repeat queries off the epoch fast
    // path: every replica replies `Unchanged`, no state moves.
    let stats0 = group.delta_stats();
    let read = group.query(0, 7).expect("repeat merged query");
    assert_freq_within(&read.envelope, truth[7]);
    let stats1 = group.delta_stats();
    assert_eq!(
        stats1.unchanged - stats0.unchanged,
        3,
        "all three replicas were quiescent"
    );
    assert!(
        stats1.bytes_in - stats0.bytes_in < 3 * 128,
        "unchanged replies must stay tiny, got {} bytes",
        stats1.bytes_in - stats0.bytes_in
    );

    // Kill one replica mid-run: merged reads degrade, but the dead
    // replica's *cached* cells keep contributing — its substream stays
    // in the estimate instead of being refused, and only the weight
    // that might have landed there since the cache was taken (none
    // here) widens the envelope.
    let victim = replicas.remove(0);
    // Close our side first: the threaded backend's connection threads
    // only exit at client EOF, so joining while we hold a live socket
    // to the victim would wait on us.
    group.disconnect(0);
    drop(victim.join());

    let read = group.query(0, 7).expect("degraded query still answers");
    assert_eq!((read.reached, read.total), (2, 3));
    assert!(
        read.parts.iter().all(|p| p.is_some()),
        "the dead replica still contributes its cached state"
    );
    assert_eq!(
        read.missing_observed, 0,
        "nothing was acknowledged at the victim after its cache"
    );
    // The dead replica's substream is served from cache, so the merged
    // estimate covers the full truth without lag standing in for it.
    assert_freq_within(&read.envelope, truth[7]);

    // Updates keep flowing: the dead replica's share fails over.
    for k in 0..16u64 {
        group.update(0, k, 1).expect("failover update");
        truth[k as usize] += 1;
    }
    let read = group.query(0, 7).expect("post-failover query");
    assert_eq!((read.reached, read.total), (2, 3));
    assert_freq_within(&read.envelope, truth[7]);

    // Release our connections before joining the survivors.
    drop(group);
    for r in replicas {
        drop(r.join());
    }
}

#[test]
fn partitioned_three_replicas_threaded() {
    partitioned_run(Backend::Threaded);
}

#[test]
fn partitioned_three_replicas_event_loop() {
    partitioned_run(Backend::EventLoop);
}

fn mirrored_run(backend: Backend) {
    let mut replicas: Vec<ServerHandle> = (0..3).map(|_| spawn_replica(backend, SEED)).collect();
    let mut group = group_over(&replicas, ReplicaMode::Mirror);

    for k in 0..8u64 {
        let applied = group.update(0, k, 2).expect("mirrored update");
        assert_eq!(applied.len(), 3, "mirror fans to every replica");
        group.update(1, k, 1).expect("mirrored hll update");
    }

    // Every replica saw the whole stream; the merged (max) estimate
    // equals the per-replica one and observes the single stream once.
    let read = group.query(0, 3).expect("merged mirror query");
    assert_eq!((read.reached, read.total), (3, 3));
    assert!(read.parts.iter().all(|p| *p == Some(16)));
    let env = read.envelope.frequency().expect("frequency envelope");
    assert_eq!(
        env.stream_len, 16,
        "mirror does not double-count the stream"
    );
    assert_freq_within(&read.envelope, 2);

    let read = group.query(1, 0).expect("merged mirror hll query");
    match &read.envelope {
        ErrorEnvelope::Cardinality { observed, .. } => assert_eq!(*observed, 8),
        other => panic!("wanted cardinality envelope, got {other:?}"),
    }

    // Kill a replica: mirrored reads keep the full stream (the
    // survivors each hold a complete copy) with no widening needed.
    let victim = replicas.remove(0);
    group.disconnect(0);
    drop(victim.join());
    let read = group.query(0, 3).expect("degraded mirror query");
    assert_eq!((read.reached, read.total), (2, 3));
    let env = read.envelope.frequency().expect("frequency envelope");
    assert_eq!(env.stream_len, 16);
    assert_freq_within(&read.envelope, 2);

    // Updates missed by the dead replica while it is down are debited:
    // if it never returns, survivors still hold everything, so the
    // merged envelope stays tight (min missed over included = 0).
    for k in 0..8u64 {
        group.update(0, k, 1).expect("mirror update after death");
    }
    let read = group.query(0, 3).expect("mirror query after death");
    let env = read.envelope.frequency().expect("frequency envelope");
    assert_eq!(env.lag, 0, "survivors saw every update; no widening");
    assert_freq_within(&read.envelope, 3);

    drop(group);
    for r in replicas {
        drop(r.join());
    }
}

#[test]
fn mirrored_three_replicas_threaded() {
    mirrored_run(Backend::Threaded);
}

#[test]
fn mirrored_three_replicas_event_loop() {
    mirrored_run(Backend::EventLoop);
}

#[test]
fn mismatched_seeds_are_a_typed_merge_error() {
    // Two replicas with different seeds sampled different hash
    // functions; merging their snapshots must be refused with the
    // typed MergeMismatch, not a panic or a silent wrong answer.
    let a = spawn_replica(Backend::Threaded, SEED);
    let b = spawn_replica(Backend::Threaded, SEED + 1);
    let addrs = vec![a.addr().to_string(), b.addr().to_string()];
    let mut group = ReplicaGroup::new(addrs, ReplicaMode::Partition, SEED).expect("group");
    group
        .update(0, 1, 1)
        .expect("updates do not merge, they route");
    match group.query(0, 1) {
        Err(ReplicaError::MergeMismatch { why }) => {
            assert!(why.contains("coins") || why.contains("disagree"), "{why}");
        }
        other => panic!("wanted MergeMismatch, got {other:?}"),
    }
    drop(group);
    drop(a.join());
    drop(b.join());
}

#[test]
fn group_seed_must_match_the_replicas() {
    // Replicas agree with each other but not with the group's seed:
    // the rebuilt prototype's fingerprint exposes it.
    let a = spawn_replica(Backend::Threaded, SEED);
    let b = spawn_replica(Backend::Threaded, SEED);
    let addrs = vec![a.addr().to_string(), b.addr().to_string()];
    let mut group = ReplicaGroup::new(addrs, ReplicaMode::Partition, SEED + 7).expect("group");
    match group.query(0, 1) {
        Err(ReplicaError::MergeMismatch { why }) => {
            assert!(why.contains("seed"), "{why}");
        }
        other => panic!("wanted MergeMismatch, got {other:?}"),
    }
    drop(group);
    drop(a.join());
    drop(b.join());
}

#[test]
fn restarted_replica_never_gets_a_stale_epoch_delta() {
    // The sharpest reconnect hazard: a replica dies and a *different*
    // server comes up on the same address whose epoch numerically
    // matches the cached one. A group that reused the cached base
    // across the reconnect would be answered `Unchanged` and serve the
    // dead server's counts as current. The connection generation makes
    // that impossible: the cache is invalidated before a base is
    // chosen, so the read after the restart is a full snapshot.
    let a = spawn_replica(Backend::Threaded, SEED);
    let addr = a.addr().to_string();
    let mut group =
        ReplicaGroup::new(vec![addr.clone()], ReplicaMode::Partition, SEED).expect("group");
    group.set_retry_limit(3);
    group.set_backoff(Duration::from_millis(5));
    group.update(0, 3, 5).expect("update the first server");
    let read = group.query(0, 3).expect("first query fills the cache");
    assert_eq!(read.envelope.frequency().expect("frequency").estimate, 5);

    group.disconnect(0);
    drop(a.join());
    let b = respawn_at(&addr, SEED);
    // One update to the fresh server moves its epoch exactly as far as
    // the dead server's had moved at cache time — the numeric
    // coincidence a stale base would be fooled by.
    let mut direct = ivl_service::Client::connect(addr.as_str()).expect("direct client");
    direct.update(9, 1).expect("update the fresh server");

    let before = group.delta_stats();
    let read = group.query(0, 3).expect("query after restart");
    let after = group.delta_stats();
    assert_eq!(
        after.fulls,
        before.fulls + 1,
        "the reconnected read must refetch full state"
    );
    assert_eq!(
        after.unchanged, before.unchanged,
        "no stale-epoch `Unchanged` may be accepted across a restart"
    );
    assert_eq!(after.deltas, before.deltas, "nor a sparse delta");
    assert_eq!(
        read.envelope.frequency().expect("frequency").estimate,
        0,
        "key 3 lived only on the dead server; its cache must be gone"
    );
    drop(direct);
    drop(group);
    drop(b.join());
}

#[test]
fn rejoined_replica_converges_after_catchup_push() {
    // The anti-entropy acceptance scenario: kill a replica, restart it
    // empty at the same address, and watch the group (a) detect the
    // rejoin and widen `lag` by exactly the forgotten weight, then
    // (b) push the retained state back, after which the merged
    // envelope narrows to its pre-kill width and the parts cover the
    // whole stream again.
    let mut replicas: Vec<ServerHandle> = (0..3)
        .map(|_| spawn_replica(Backend::Threaded, SEED))
        .collect();
    let mut group = group_over(&replicas, ReplicaMode::Partition);
    group.set_retry_limit(3);
    group.set_backoff(Duration::from_millis(5));

    let mut truth = [0u64; 16];
    for k in 0..16u64 {
        group.update(0, k, k + 1).expect("partitioned update");
        truth[k as usize] += k + 1;
    }
    let read0 = group.query(0, 7).expect("pre-kill query");
    let pre_lag = read0.envelope.frequency().expect("frequency").lag;
    let victim_weight = read0.parts[0].expect("replica 0 answered");
    assert!(victim_weight > 0, "16 keys must touch replica 0");

    let victim = replicas.remove(0);
    let addr = victim.addr().to_string();
    group.disconnect(0);
    drop(victim.join());
    let reborn = respawn_at(&addr, SEED);

    // First read after the restart: the fresh full state observes less
    // than the cache — rejoin detected, forgotten weight widens lag,
    // the displaced cache is retained for the push.
    let read1 = group.query(0, 7).expect("rejoin-detection query");
    let env1 = read1.envelope.frequency().expect("frequency");
    assert_eq!(
        env1.lag,
        pre_lag + victim_weight,
        "lag must widen by exactly the weight the replica forgot"
    );
    assert_freq_within(&read1.envelope, truth[7]);
    assert_eq!(group.catchup_stats().detected, 1);
    assert_eq!(group.catchup_pending(), 1);

    // Second read flushes the push first: the replica absorbs its own
    // retained state and this very read observes the converged group.
    let read2 = group.query(0, 7).expect("post-catchup query");
    let env2 = read2.envelope.frequency().expect("frequency");
    let stats = group.catchup_stats();
    assert_eq!(
        (stats.pushed, stats.acked, stats.failed),
        (1, 1, 0),
        "one push, acknowledged"
    );
    assert_eq!(stats.settled_weight, victim_weight);
    assert_eq!(group.catchup_pending(), 0);
    assert_eq!(
        env2.lag, pre_lag,
        "the envelope narrows back to its pre-kill width after catch-up"
    );
    assert_eq!(
        read2.parts.iter().flatten().sum::<u64>(),
        truth.iter().sum::<u64>(),
        "the rejoined replica holds its substream again"
    );
    assert_freq_within(&read2.envelope, truth[7]);

    drop(group);
    drop(reborn.join());
    for r in replicas {
        drop(r.join());
    }
}

#[test]
fn catchup_push_to_a_skewed_server_is_refused_typed() {
    // A rejoined address answering with the wrong seed must never
    // absorb the retained state: the push is refused with the typed
    // merge-mismatch, surfaced through the group, payload dropped.
    let a = spawn_replica(Backend::Threaded, SEED);
    let addr = a.addr().to_string();
    let mut group =
        ReplicaGroup::new(vec![addr.clone()], ReplicaMode::Partition, SEED).expect("group");
    group.set_retry_limit(3);
    group.set_backoff(Duration::from_millis(5));
    group.update(0, 3, 5).expect("update");
    group.query(0, 3).expect("prime the cache");

    group.disconnect(0);
    drop(a.join());
    let b = respawn_at(&addr, SEED + 1);

    // Detection read: the wrong-seed state cannot even compose.
    match group.query(0, 3) {
        Err(ReplicaError::MergeMismatch { why }) => assert!(why.contains("seed"), "{why}"),
        other => panic!("wanted MergeMismatch, got {other:?}"),
    }
    assert_eq!(group.catchup_pending(), 1);
    // The flush on the next read pushes the retained state; the
    // skewed server refuses the absorb with its own typed mismatch.
    match group.query(0, 3) {
        Err(ReplicaError::MergeMismatch { why }) => {
            assert!(why.contains("do not match"), "{why}");
        }
        other => panic!("wanted MergeMismatch, got {other:?}"),
    }
    let stats = group.catchup_stats();
    assert_eq!((stats.pushed, stats.acked, stats.failed), (1, 0, 1));
    assert_eq!(
        group.catchup_pending(),
        0,
        "a refused payload is dropped, not retried forever"
    );
    drop(group);
    drop(b.join());
}

#[test]
fn morris_merges_at_the_envelope_level() {
    let replicas: Vec<ServerHandle> = (0..2)
        .map(|_| spawn_replica(Backend::Threaded, SEED))
        .collect();
    let mut group = group_over(&replicas, ReplicaMode::Partition);
    for k in 0..32u64 {
        group.update(2, k, 1).expect("morris update");
    }
    let read = group.query(2, 0).expect("merged morris query");
    match &read.envelope {
        ErrorEnvelope::ApproxCount {
            estimate, observed, ..
        } => {
            assert_eq!(*observed, 32, "acknowledged weight sums over substreams");
            assert!(*estimate > 0.0);
        }
        other => panic!("wanted approx-count envelope, got {other:?}"),
    }
    drop(group);
    for r in replicas {
        drop(r.join());
    }
}
