//! Step-complexity sweeps: the E1/E2 experiments of DESIGN.md.
//!
//! These regenerate, in the paper's own cost model, the asymptotic
//! claims of §6: the IVL batched counter updates in O(1) and reads in
//! O(n) steps (Theorem 11), while the linearizable snapshot-based
//! counter — a representative of the Ω(n) lower bound of Theorem 14 —
//! pays at least `2n + 1` steps per update.

use crate::algorithms::{FetchAddCounterSim, IvlCounterSim, SnapshotCounterSim};
use crate::executor::{Executor, RunResult, SimOp, Workload};
use crate::register::Memory;
use crate::scheduler::RandomScheduler;

/// One row of the step-complexity table.
#[derive(Clone, Copy, Debug)]
pub struct StepComplexityRow {
    /// Number of processes.
    pub n: usize,
    /// Mean steps of an IVL counter `update`.
    pub ivl_update_mean: f64,
    /// Maximum steps of an IVL counter `update`.
    pub ivl_update_max: u64,
    /// Mean steps of an IVL counter `read`.
    pub ivl_read_mean: f64,
    /// Mean steps of a linearizable (snapshot) counter `update`.
    pub lin_update_mean: f64,
    /// Minimum steps of a linearizable counter `update` (compare with
    /// the `2n + 1` floor).
    pub lin_update_min: u64,
    /// Mean steps of a linearizable counter `read` (scan).
    pub lin_read_mean: f64,
    /// Mean steps of the RMW fetch-add counter `update` (always 1 —
    /// the bound is register-model-specific).
    pub rmw_update_mean: f64,
}

fn mixed_workloads(n: usize, updates_per_proc: usize, reader: usize) -> Vec<Workload> {
    let mut w = vec![Workload::updates(updates_per_proc, 1); n];
    w[reader] = Workload {
        ops: (0..updates_per_proc)
            .map(|k| {
                if k % 2 == 0 {
                    SimOp::Query(0)
                } else {
                    SimOp::Update(1)
                }
            })
            .collect(),
    };
    w
}

fn run_ivl(n: usize, updates_per_proc: usize, seed: u64) -> RunResult {
    let mut mem = Memory::new();
    let obj = IvlCounterSim::new(&mut mem, n);
    let mut exec = Executor::new(
        mem,
        Box::new(obj),
        mixed_workloads(n, updates_per_proc, 0),
        RandomScheduler::new(seed),
    );
    exec.run()
}

fn run_lin(n: usize, updates_per_proc: usize, seed: u64) -> RunResult {
    let mut mem = Memory::new();
    let obj = SnapshotCounterSim::new(&mut mem, n);
    let mut exec = Executor::new(
        mem,
        Box::new(obj),
        mixed_workloads(n, updates_per_proc, 0),
        RandomScheduler::new(seed),
    );
    exec.run()
}

fn run_rmw(n: usize, updates_per_proc: usize, seed: u64) -> RunResult {
    let mut mem = Memory::new();
    let obj = FetchAddCounterSim::new(&mut mem, n);
    let mut exec = Executor::new(
        mem,
        Box::new(obj),
        mixed_workloads(n, updates_per_proc, 0),
        RandomScheduler::new(seed),
    );
    exec.run()
}

/// Runs the E1/E2 sweep: for each process count in `ns`, executes an
/// update-heavy workload with interleaved reads on both counters under
/// a seeded random scheduler and collects per-operation step counts.
pub fn step_complexity_sweep(
    ns: &[usize],
    updates_per_proc: usize,
    seed: u64,
) -> Vec<StepComplexityRow> {
    ns.iter()
        .map(|&n| {
            let ivl = run_ivl(n, updates_per_proc, seed ^ n as u64);
            let lin = run_lin(n, updates_per_proc, seed ^ n as u64);
            let rmw = run_rmw(n, updates_per_proc, seed ^ n as u64);
            let is_update = |s: &crate::executor::OpStat| matches!(s.op, SimOp::Update(_));
            let is_query = |s: &crate::executor::OpStat| matches!(s.op, SimOp::Query(_));
            StepComplexityRow {
                n,
                ivl_update_mean: ivl.mean_steps(is_update),
                ivl_update_max: ivl.max_steps(is_update),
                ivl_read_mean: ivl.mean_steps(is_query),
                lin_update_mean: lin.mean_steps(is_update),
                lin_update_min: lin
                    .stats
                    .iter()
                    .filter(|s| is_update(s))
                    .map(|s| s.steps)
                    .min()
                    .unwrap_or(0),
                lin_read_mean: lin.mean_steps(is_query),
                rmw_update_mean: rmw.mean_steps(is_update),
            }
        })
        .collect()
}

/// Renders the sweep as an aligned text table (the EXPERIMENTS.md
/// artifact for E1/E2).
pub fn render_table(rows: &[StepComplexityRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "  n | IVL upd mean | IVL upd max | IVL read mean | LIN upd mean | LIN upd min | LIN read mean | RMW upd mean\n",
    );
    out.push_str(
        "----+--------------+-------------+---------------+--------------+-------------+---------------+-------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>3} | {:>12.2} | {:>11} | {:>13.2} | {:>12.2} | {:>11} | {:>13.2} | {:>12.2}\n",
            r.n,
            r.ivl_update_mean,
            r.ivl_update_max,
            r.ivl_read_mean,
            r.lin_update_mean,
            r.lin_update_min,
            r.lin_read_mean,
            r.rmw_update_mean,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_confirms_theorem_11_and_14_shapes() {
        let rows = step_complexity_sweep(&[2, 4, 8, 16], 6, 42);
        for r in &rows {
            // Theorem 11: IVL update O(1), read O(n) exactly.
            assert_eq!(r.ivl_update_max, 1, "n={}: IVL update is 1 step", r.n);
            assert_eq!(
                r.ivl_read_mean, r.n as f64,
                "n={}: IVL read is n steps",
                r.n
            );
            // Theorem 14 shape: linearizable update at least 2n+1.
            assert!(
                r.lin_update_min > 2 * r.n as u64,
                "n={}: linearizable update ≥ 2n+1 steps",
                r.n
            );
        }
        // Linear growth: update cost at n=16 must dwarf n=2.
        assert!(rows[3].lin_update_mean > 4.0 * rows[0].lin_update_mean);
        // IVL update cost flat in n.
        assert_eq!(rows[0].ivl_update_mean, rows[3].ivl_update_mean);
        // The RMW counter is O(1) at every n — the bound is
        // register-model-specific.
        for r in &rows {
            assert_eq!(r.rmw_update_mean, 1.0, "n={}", r.n);
        }
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = step_complexity_sweep(&[2, 4], 4, 1);
        let t = render_table(&rows);
        assert!(t.contains("IVL upd mean"));
        assert_eq!(t.lines().count(), 4);
    }
}
