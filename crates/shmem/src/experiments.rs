//! Step-complexity sweeps: the E1/E2 experiments of DESIGN.md.
//!
//! These regenerate, in the paper's own cost model, the asymptotic
//! claims of §6: the IVL batched counter updates in O(1) and reads in
//! O(n) steps (Theorem 11), while the linearizable snapshot-based
//! counter — a representative of the Ω(n) lower bound of Theorem 14 —
//! pays at least `2n + 1` steps per update.

use crate::algorithms::{FetchAddCounterSim, IvlCounterSim, SnapshotCounterSim};
use crate::executor::{Executor, RunResult, SimObject, SimOp, Workload};
use crate::exhaustive::{count_schedules, explore_dpor};
use crate::register::Memory;
use crate::scheduler::RandomScheduler;

/// One row of the step-complexity table.
#[derive(Clone, Copy, Debug)]
pub struct StepComplexityRow {
    /// Number of processes.
    pub n: usize,
    /// Mean steps of an IVL counter `update`.
    pub ivl_update_mean: f64,
    /// Maximum steps of an IVL counter `update`.
    pub ivl_update_max: u64,
    /// Mean steps of an IVL counter `read`.
    pub ivl_read_mean: f64,
    /// Mean steps of a linearizable (snapshot) counter `update`.
    pub lin_update_mean: f64,
    /// Minimum steps of a linearizable counter `update` (compare with
    /// the `2n + 1` floor).
    pub lin_update_min: u64,
    /// Mean steps of a linearizable counter `read` (scan).
    pub lin_read_mean: f64,
    /// Mean steps of the RMW fetch-add counter `update` (always 1 —
    /// the bound is register-model-specific).
    pub rmw_update_mean: f64,
}

fn mixed_workloads(n: usize, updates_per_proc: usize, reader: usize) -> Vec<Workload> {
    let mut w = vec![Workload::updates(updates_per_proc, 1); n];
    w[reader] = Workload {
        ops: (0..updates_per_proc)
            .map(|k| {
                if k % 2 == 0 {
                    SimOp::Query(0)
                } else {
                    SimOp::Update(1)
                }
            })
            .collect(),
    };
    w
}

fn run_ivl(n: usize, updates_per_proc: usize, seed: u64) -> RunResult {
    let mut mem = Memory::new();
    let obj = IvlCounterSim::new(&mut mem, n);
    let mut exec = Executor::new(
        mem,
        Box::new(obj),
        mixed_workloads(n, updates_per_proc, 0),
        RandomScheduler::new(seed),
    );
    exec.run()
}

fn run_lin(n: usize, updates_per_proc: usize, seed: u64) -> RunResult {
    let mut mem = Memory::new();
    let obj = SnapshotCounterSim::new(&mut mem, n);
    let mut exec = Executor::new(
        mem,
        Box::new(obj),
        mixed_workloads(n, updates_per_proc, 0),
        RandomScheduler::new(seed),
    );
    exec.run()
}

fn run_rmw(n: usize, updates_per_proc: usize, seed: u64) -> RunResult {
    let mut mem = Memory::new();
    let obj = FetchAddCounterSim::new(&mut mem, n);
    let mut exec = Executor::new(
        mem,
        Box::new(obj),
        mixed_workloads(n, updates_per_proc, 0),
        RandomScheduler::new(seed),
    );
    exec.run()
}

/// Runs the E1/E2 sweep: for each process count in `ns`, executes an
/// update-heavy workload with interleaved reads on both counters under
/// a seeded random scheduler and collects per-operation step counts.
pub fn step_complexity_sweep(
    ns: &[usize],
    updates_per_proc: usize,
    seed: u64,
) -> Vec<StepComplexityRow> {
    ns.iter()
        .map(|&n| {
            let ivl = run_ivl(n, updates_per_proc, seed ^ n as u64);
            let lin = run_lin(n, updates_per_proc, seed ^ n as u64);
            let rmw = run_rmw(n, updates_per_proc, seed ^ n as u64);
            let is_update = |s: &crate::executor::OpStat| matches!(s.op, SimOp::Update(_));
            let is_query = |s: &crate::executor::OpStat| matches!(s.op, SimOp::Query(_));
            StepComplexityRow {
                n,
                ivl_update_mean: ivl.mean_steps(is_update),
                ivl_update_max: ivl.max_steps(is_update),
                ivl_read_mean: ivl.mean_steps(is_query),
                lin_update_mean: lin.mean_steps(is_update),
                lin_update_min: lin
                    .stats
                    .iter()
                    .filter(|s| is_update(s))
                    .map(|s| s.steps)
                    .min()
                    .unwrap_or(0),
                lin_read_mean: lin.mean_steps(is_query),
                rmw_update_mean: rmw.mean_steps(is_update),
            }
        })
        .collect()
}

/// Renders the sweep as an aligned text table (the EXPERIMENTS.md
/// artifact for E1/E2).
pub fn render_table(rows: &[StepComplexityRow]) -> String {
    let mut out = String::new();
    out.push_str(
        "  n | IVL upd mean | IVL upd max | IVL read mean | LIN upd mean | LIN upd min | LIN read mean | RMW upd mean\n",
    );
    out.push_str(
        "----+--------------+-------------+---------------+--------------+-------------+---------------+-------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>3} | {:>12.2} | {:>11} | {:>13.2} | {:>12.2} | {:>11} | {:>13.2} | {:>12.2}\n",
            r.n,
            r.ivl_update_mean,
            r.ivl_update_max,
            r.ivl_read_mean,
            r.lin_update_mean,
            r.lin_update_min,
            r.lin_read_mean,
            r.rmw_update_mean,
        ));
    }
    out
}

/// One row of the E7-exact exploration census: the same configuration
/// explored by the naive DFS (every interleaving) and by DPOR (one
/// representative per Mazurkiewicz trace class, DESIGN.md §8).
#[derive(Clone, Copy, Debug)]
pub struct ExplorationCensusRow {
    /// Configuration description.
    pub label: &'static str,
    /// Interleavings the naive DFS enumerated (a floor if truncated).
    pub naive_schedules: u64,
    /// Whether the naive DFS hit its schedule cap before finishing.
    pub naive_truncated: bool,
    /// Trace classes DPOR closed — each one a verdict-distinct
    /// representative, together covering every naive interleaving.
    pub dpor_classes: u64,
    /// Steps DPOR executed (including re-executed backtrack prefixes).
    pub dpor_steps: u64,
}

/// Algorithm 1 with `updaters` single-step updates and `readers`
/// full-scan queries over `n` total processes (extra processes are
/// idle but widen the reader's scan — long reads are where the
/// reduction lives).
fn census_config(
    n: usize,
    updaters: usize,
    readers: usize,
) -> impl Fn() -> (Memory, Box<dyn SimObject>, Vec<Workload>) {
    move || {
        let mut mem = Memory::new();
        let obj = IvlCounterSim::new(&mut mem, n);
        let mut workloads = vec![Workload::default(); n];
        for (i, w) in workloads.iter_mut().take(updaters).enumerate() {
            w.ops = vec![SimOp::Update(2 * i as u64 + 3)];
        }
        for w in workloads.iter_mut().skip(updaters).take(readers) {
            w.ops = vec![SimOp::Query(0)];
        }
        (mem, Box::new(obj) as Box<dyn SimObject>, workloads)
    }
}

/// Runs the exploration census: naive DFS (capped at `naive_cap`
/// schedules) vs uncapped DPOR on a ladder of counter configurations,
/// ending with one past the naive ceiling.
pub fn exploration_census(naive_cap: u64) -> Vec<ExplorationCensusRow> {
    let configs: [(&'static str, usize, usize, usize); 3] = [
        ("counter n=3, 2 upd + 1 scan", 3, 2, 1),
        ("counter n=4, 2 upd + 2 scans", 4, 2, 2),
        ("counter n=10, 2 upd + 2 scans", 10, 2, 2),
    ];
    configs
        .iter()
        .map(|&(label, n, updaters, readers)| {
            let config = census_config(n, updaters, readers);
            let naive = count_schedules(&config, naive_cap);
            let dpor = explore_dpor(&config, u64::MAX, |_, _| {});
            assert!(!dpor.truncated, "{label}: DPOR must close the space");
            ExplorationCensusRow {
                label,
                naive_schedules: naive.schedules,
                naive_truncated: naive.truncated,
                dpor_classes: dpor.classes,
                dpor_steps: dpor.steps_executed,
            }
        })
        .collect()
}

/// Renders the census as an aligned text table (the EXPERIMENTS.md
/// artifact for E7-exact).
pub fn render_census(rows: &[ExplorationCensusRow]) -> String {
    let mut out = String::new();
    out.push_str("configuration                  | naive schedules | DPOR classes | DPOR steps\n");
    out.push_str("-------------------------------+-----------------+--------------+-----------\n");
    for r in rows {
        let naive = if r.naive_truncated {
            format!(">{} (cap)", r.naive_schedules)
        } else {
            r.naive_schedules.to_string()
        };
        out.push_str(&format!(
            "{:<30} | {:>15} | {:>12} | {:>10}\n",
            r.label, naive, r.dpor_classes, r.dpor_steps,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_confirms_theorem_11_and_14_shapes() {
        let rows = step_complexity_sweep(&[2, 4, 8, 16], 6, 42);
        for r in &rows {
            // Theorem 11: IVL update O(1), read O(n) exactly.
            assert_eq!(r.ivl_update_max, 1, "n={}: IVL update is 1 step", r.n);
            assert_eq!(
                r.ivl_read_mean, r.n as f64,
                "n={}: IVL read is n steps",
                r.n
            );
            // Theorem 14 shape: linearizable update at least 2n+1.
            assert!(
                r.lin_update_min > 2 * r.n as u64,
                "n={}: linearizable update ≥ 2n+1 steps",
                r.n
            );
        }
        // Linear growth: update cost at n=16 must dwarf n=2.
        assert!(rows[3].lin_update_mean > 4.0 * rows[0].lin_update_mean);
        // IVL update cost flat in n.
        assert_eq!(rows[0].ivl_update_mean, rows[3].ivl_update_mean);
        // The RMW counter is O(1) at every n — the bound is
        // register-model-specific.
        for r in &rows {
            assert_eq!(r.rmw_update_mean, 1.0, "n={}", r.n);
        }
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = step_complexity_sweep(&[2, 4], 4, 1);
        let t = render_table(&rows);
        assert!(t.contains("IVL upd mean"));
        assert_eq!(t.lines().count(), 4);
    }

    #[test]
    fn census_shows_reduction_and_beyond_ceiling_closure() {
        let rows = exploration_census(10_000);
        assert_eq!(rows.len(), 3);
        // Small configs: naive finishes and DPOR explores no more
        // classes than there are schedules.
        for r in &rows[..2] {
            assert!(!r.naive_truncated, "{}", r.label);
            assert!(r.dpor_classes <= r.naive_schedules, "{}", r.label);
        }
        // The last config is past the naive ceiling, yet DPOR closes
        // it (the call itself asserts !truncated).
        let beyond = &rows[2];
        assert!(beyond.naive_truncated);
        assert!(beyond.dpor_classes < beyond.naive_schedules);
        let t = render_census(&rows);
        assert_eq!(t.lines().count(), 5);
        assert!(t.contains("(cap)"));
    }
}
