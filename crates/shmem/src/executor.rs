//! The execution engine: drives per-process workloads against a
//! simulated object under a scheduler, recording the history and
//! per-operation step counts.

use crate::machine::{MemCtx, OpMachine, StepStatus};
use crate::register::Memory;
use crate::scheduler::Scheduler;
use ivl_spec::history::{History, HistoryBuilder, ObjectId, OpId};
use ivl_spec::spec::{MonotoneSpec, ObjectSpec};
use ivl_spec::ProcessId;

/// One operation of a workload: counters use `Update(v)`/`Query(_)`,
/// the binary snapshot uses `Update(bit)`/`Query(_)`. The query
/// argument is carried into the recorded history (and ignored by
/// counters).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimOp {
    /// A mutating operation with argument.
    Update(u64),
    /// A read-only operation with argument.
    Query(u64),
}

/// The operation sequence one process performs.
#[derive(Clone, Debug, Default)]
pub struct Workload {
    /// Operations in program order.
    pub ops: Vec<SimOp>,
}

impl Workload {
    /// A workload of `count` updates of `value` each.
    pub fn updates(count: usize, value: u64) -> Self {
        Workload {
            ops: vec![SimOp::Update(value); count],
        }
    }

    /// A workload of `count` queries with argument `arg`.
    pub fn queries(count: usize, arg: u64) -> Self {
        Workload {
            ops: vec![SimOp::Query(arg); count],
        }
    }
}

/// A simulated shared object: allocates its registers at construction
/// and hands out one [`OpMachine`] per invoked operation.
pub trait SimObject {
    /// Begins an operation by `process`, returning its step machine.
    /// Called exactly once per invocation, at invocation time; any
    /// process-local bookkeeping (e.g. cached own-register values) may
    /// be updated here, since it is invisible to other processes.
    fn begin_op(&mut self, process: ProcessId, op: &SimOp) -> Box<dyn OpMachine>;

    /// Number of processes the object was configured for.
    fn num_processes(&self) -> usize;
}

/// Step count and identity of one completed (or pending) operation.
#[derive(Clone, Debug)]
pub struct OpStat {
    /// Operation id in the recorded history.
    pub id: OpId,
    /// Executing process.
    pub process: ProcessId,
    /// The operation performed.
    pub op: SimOp,
    /// Shared-memory steps the operation took (scheduled machine
    /// steps).
    pub steps: u64,
    /// Whether the operation completed within the run.
    pub completed: bool,
}

/// Outcome of an execution.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The recorded history (update arg, query arg, return value all
    /// `u64`).
    pub history: History<u64, u64, u64>,
    /// Per-operation statistics, in invocation order.
    pub stats: Vec<OpStat>,
}

impl RunResult {
    /// Mean step count over completed operations matching `pred`.
    pub fn mean_steps(&self, pred: impl Fn(&OpStat) -> bool) -> f64 {
        let sel: Vec<&OpStat> = self
            .stats
            .iter()
            .filter(|s| s.completed && pred(s))
            .collect();
        if sel.is_empty() {
            return f64::NAN;
        }
        sel.iter().map(|s| s.steps as f64).sum::<f64>() / sel.len() as f64
    }

    /// Maximum step count over completed operations matching `pred`.
    pub fn max_steps(&self, pred: impl Fn(&OpStat) -> bool) -> u64 {
        self.stats
            .iter()
            .filter(|s| s.completed && pred(s))
            .map(|s| s.steps)
            .max()
            .unwrap_or(0)
    }

    /// Mean steps of completed updates.
    pub fn mean_update_steps(&self) -> f64 {
        self.mean_steps(|s| matches!(s.op, SimOp::Update(_)))
    }

    /// Mean steps of completed queries.
    pub fn mean_query_steps(&self) -> f64 {
        self.mean_steps(|s| matches!(s.op, SimOp::Query(_)))
    }
}

struct InFlight {
    id: OpId,
    machine: Box<dyn OpMachine>,
    op: SimOp,
    /// Shared-memory accesses so far (the step-complexity measure).
    steps: u64,
    /// Scheduled turns so far, including access-free local steps; used
    /// only for the wait-freedom backstop.
    turns: u64,
}

struct ProcState {
    workload: Vec<SimOp>,
    next_op: usize,
    current: Option<InFlight>,
}

/// Drives a [`SimObject`] under a [`Scheduler`].
pub struct Executor<S: Scheduler> {
    mem: Memory,
    object: Box<dyn SimObject>,
    procs: Vec<ProcState>,
    scheduler: S,
    /// Hard cap on steps per operation — a backstop against
    /// wait-freedom violations in algorithm implementations.
    pub max_steps_per_op: u64,
}

impl<S: Scheduler> std::fmt::Debug for Executor<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("processes", &self.procs.len())
            .field("max_steps_per_op", &self.max_steps_per_op)
            .finish_non_exhaustive()
    }
}

impl<S: Scheduler> Executor<S> {
    /// Creates an executor over `object` (whose registers live in
    /// `mem`), one workload per process, driven by `scheduler`.
    ///
    /// # Panics
    ///
    /// Panics if the number of workloads does not match the object's
    /// process count.
    pub fn new(
        mem: Memory,
        object: Box<dyn SimObject>,
        workloads: Vec<Workload>,
        scheduler: S,
    ) -> Self {
        assert_eq!(
            workloads.len(),
            object.num_processes(),
            "one workload per process"
        );
        let n = workloads.len();
        let procs = workloads
            .into_iter()
            .map(|w| ProcState {
                workload: w.ops,
                next_op: 0,
                current: None,
            })
            .collect();
        let max_steps_per_op = 64 + 8 * (n as u64) * (n as u64);
        Executor {
            mem,
            object,
            procs,
            scheduler,
            max_steps_per_op,
        }
    }

    /// Runs every workload to completion and returns the recorded
    /// history and step counts.
    ///
    /// # Panics
    ///
    /// Panics if an operation exceeds [`Executor::max_steps_per_op`]
    /// steps (wait-freedom violation in the simulated algorithm).
    pub fn run(&mut self) -> RunResult {
        self.run_bounded(u64::MAX)
    }

    /// Runs at most `max_turns` scheduling turns and then stops,
    /// leaving in-flight operations **pending** in the recorded
    /// history (they are reported with `completed: false` in the
    /// stats). This exercises the pending-operation paths of the
    /// checkers: a cut-off execution is exactly a history with
    /// pending updates/queries.
    ///
    /// # Panics
    ///
    /// Panics on wait-freedom violations, as [`Executor::run`].
    pub fn run_bounded(&mut self, max_turns: u64) -> RunResult {
        let mut builder = HistoryBuilder::<u64, u64, u64>::new();
        let mut stats: Vec<OpStat> = Vec::new();
        let obj = ObjectId(0);
        let mut turns = 0u64;

        loop {
            if turns >= max_turns {
                break;
            }
            turns += 1;
            let runnable = self.runnable();
            if runnable.is_empty() {
                break;
            }
            let pi = self.scheduler.next(&runnable);
            let p = ProcessId(pi as u32);

            // Invoke a new operation if idle.
            if self.procs[pi].current.is_none() {
                let op = self.procs[pi].workload[self.procs[pi].next_op];
                self.procs[pi].next_op += 1;
                let id = match op {
                    SimOp::Update(v) => builder.invoke_update(p, obj, v),
                    SimOp::Query(a) => builder.invoke_query(p, obj, a),
                };
                let machine = self.object.begin_op(p, &op);
                self.procs[pi].current = Some(InFlight {
                    id,
                    machine,
                    op,
                    steps: 0,
                    turns: 0,
                });
            }

            // One step.
            let fl = self.procs[pi].current.as_mut().expect("op in flight");
            let mut ctx = MemCtx::new(&mut self.mem, p);
            let status = fl.machine.step(&mut ctx);
            if ctx.access_used() {
                fl.steps += 1;
            }
            fl.turns += 1;
            assert!(
                fl.turns <= self.max_steps_per_op,
                "operation {} of {p} exceeded {} turns: wait-freedom violated",
                fl.id,
                self.max_steps_per_op
            );
            if let StepStatus::Done(ret) = status {
                match (fl.op, ret) {
                    (SimOp::Update(_), None) => builder.respond_update(fl.id),
                    (SimOp::Query(_), Some(v)) => builder.respond_query(fl.id, v),
                    (SimOp::Update(_), Some(_)) => panic!("update returned a value"),
                    (SimOp::Query(_), None) => panic!("query returned no value"),
                }
                stats.push(OpStat {
                    id: fl.id,
                    process: p,
                    op: fl.op,
                    steps: fl.steps,
                    completed: true,
                });
                self.procs[pi].current = None;
            }
        }

        // Report operations still in flight at the cutoff.
        for (pi, p) in self.procs.iter().enumerate() {
            if let Some(fl) = &p.current {
                stats.push(OpStat {
                    id: fl.id,
                    process: ProcessId(pi as u32),
                    op: fl.op,
                    steps: fl.steps,
                    completed: false,
                });
            }
        }

        RunResult {
            history: builder.finish(),
            stats,
        }
    }

    /// Read access to the memory (for post-run inspection).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// The processes that can take a step right now (mid-operation or
    /// with workload remaining). Used by the exhaustive explorer to
    /// branch on every scheduling choice.
    pub fn runnable(&self) -> Vec<usize> {
        self.procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.current.is_some() || p.next_op < p.workload.len())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Sequential specification matching simulator counter histories
/// (update arg / query arg / value all `u64`; the query argument is
/// ignored). Equivalent to [`ivl_spec::specs::BatchedCounterSpec`]
/// modulo the query argument type.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct SimCounterSpec;

impl ObjectSpec for SimCounterSpec {
    type Update = u64;
    type Query = u64;
    type Value = u64;
    type State = u64;

    fn initial_state(&self) -> u64 {
        0
    }

    fn apply_update(&self, state: &mut u64, update: &u64) {
        *state += *update;
    }

    fn eval_query(&self, state: &u64, _query: &u64) -> u64 {
        *state
    }
}

impl MonotoneSpec for SimCounterSpec {}

/// Sequential specification of the binary snapshot object of
/// Algorithm 3 as recorded by the simulator: `update` arguments encode
/// `(component << 1) | bit`, queries return the bit-vector as a mask.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SimBinarySnapshotSpec {
    /// Number of components.
    pub n: usize,
}

impl ObjectSpec for SimBinarySnapshotSpec {
    type Update = u64;
    type Query = u64;
    type Value = u64;
    type State = u64;

    fn initial_state(&self) -> u64 {
        0
    }

    fn apply_update(&self, state: &mut u64, update: &u64) {
        let component = (update >> 1) as usize;
        let bit = update & 1;
        assert!(component < self.n);
        if bit == 1 {
            *state |= 1 << component;
        } else {
            *state &= !(1 << component);
        }
    }

    fn eval_query(&self, state: &u64, _query: &u64) -> u64 {
        *state
    }
}
