//! The execution engine: drives per-process workloads against a
//! simulated object under a scheduler, recording the history and
//! per-operation step counts.
//!
//! The executor exposes two layers:
//!
//! * [`Executor::run`] / [`Executor::run_bounded`] — the scheduler
//!   picks every step, as in the experiments.
//! * [`Executor::step_once`] — one explicitly chosen step at a time,
//!   returning the step's [`StepRecord`] (access footprint plus
//!   invocation/response markers). The exhaustive explorers drive this
//!   directly, and because the executor is [`Clone`], they snapshot it
//!   at branch points instead of replaying schedule prefixes.

use crate::machine::{Access, MemCtx, OpMachine, StepStatus};
use crate::register::Memory;
use crate::scheduler::Scheduler;
use ivl_spec::history::{History, HistoryBuilder, ObjectId, OpId};
use ivl_spec::spec::{MonotoneSpec, ObjectSpec};
use ivl_spec::ProcessId;

/// One operation of a workload: counters use `Update(v)`/`Query(_)`,
/// the binary snapshot uses `Update(bit)`/`Query(_)`. The query
/// argument is carried into the recorded history (and ignored by
/// counters).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimOp {
    /// A mutating operation with argument.
    Update(u64),
    /// A read-only operation with argument.
    Query(u64),
}

/// The operation sequence one process performs.
#[derive(Clone, Debug, Default)]
pub struct Workload {
    /// Operations in program order.
    pub ops: Vec<SimOp>,
}

impl Workload {
    /// A workload of `count` updates of `value` each.
    pub fn updates(count: usize, value: u64) -> Self {
        Workload {
            ops: vec![SimOp::Update(value); count],
        }
    }

    /// A workload of `count` queries with argument `arg`.
    pub fn queries(count: usize, arg: u64) -> Self {
        Workload {
            ops: vec![SimOp::Query(arg); count],
        }
    }
}

/// A simulated shared object: allocates its registers at construction
/// and hands out one [`OpMachine`] per invoked operation.
pub trait SimObject {
    /// Begins an operation by `process`, returning its step machine.
    /// Called exactly once per invocation, at invocation time; any
    /// process-local bookkeeping (e.g. cached own-register values) may
    /// be updated here, since it is invisible to other processes.
    fn begin_op(&mut self, process: ProcessId, op: &SimOp) -> Box<dyn OpMachine>;

    /// Number of processes the object was configured for.
    fn num_processes(&self) -> usize;

    /// Clones the object's state behind a fresh box (mid-execution
    /// snapshotting for schedule exploration).
    fn box_clone(&self) -> Box<dyn SimObject>;
}

impl Clone for Box<dyn SimObject> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// Step count and identity of one completed (or pending) operation.
#[derive(Clone, Debug)]
pub struct OpStat {
    /// Operation id in the recorded history.
    pub id: OpId,
    /// Executing process.
    pub process: ProcessId,
    /// The operation performed.
    pub op: SimOp,
    /// Shared-memory steps the operation took (scheduled machine
    /// steps).
    pub steps: u64,
    /// Whether the operation completed within the run.
    pub completed: bool,
}

/// What one scheduled step did: the footprint the DPOR explorer and
/// the happens-before analyzer consume.
#[derive(Clone, Debug)]
pub struct StepRecord {
    /// The process that took the step.
    pub process: usize,
    /// Shared accesses performed (at most one in strict mode; possibly
    /// more under the analyzer's lenient mode, possibly none for a
    /// purely local step).
    pub accesses: Vec<Access>,
    /// The operation this step invoked, if it was an operation's first
    /// step.
    pub invoked: Option<OpId>,
    /// The operation this step completed, if it was an operation's
    /// last step.
    pub responded: Option<OpId>,
}

impl StepRecord {
    /// Whether this step carries an invocation event.
    pub fn is_inv(&self) -> bool {
        self.invoked.is_some()
    }

    /// Whether this step carries a response event.
    pub fn is_rsp(&self) -> bool {
        self.responded.is_some()
    }
}

/// Outcome of an execution.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The recorded history (update arg, query arg, return value all
    /// `u64`).
    pub history: History<u64, u64, u64>,
    /// Per-operation statistics: completed operations in completion
    /// order, then any operations still pending at the cutoff.
    pub stats: Vec<OpStat>,
}

impl RunResult {
    /// Mean step count over completed operations matching `pred`.
    pub fn mean_steps(&self, pred: impl Fn(&OpStat) -> bool) -> f64 {
        let sel: Vec<&OpStat> = self
            .stats
            .iter()
            .filter(|s| s.completed && pred(s))
            .collect();
        if sel.is_empty() {
            return f64::NAN;
        }
        sel.iter().map(|s| s.steps as f64).sum::<f64>() / sel.len() as f64
    }

    /// Maximum step count over completed operations matching `pred`.
    pub fn max_steps(&self, pred: impl Fn(&OpStat) -> bool) -> u64 {
        self.stats
            .iter()
            .filter(|s| s.completed && pred(s))
            .map(|s| s.steps)
            .max()
            .unwrap_or(0)
    }

    /// Mean steps of completed updates.
    pub fn mean_update_steps(&self) -> f64 {
        self.mean_steps(|s| matches!(s.op, SimOp::Update(_)))
    }

    /// Mean steps of completed queries.
    pub fn mean_query_steps(&self) -> f64 {
        self.mean_steps(|s| matches!(s.op, SimOp::Query(_)))
    }
}

#[derive(Clone)]
struct InFlight {
    id: OpId,
    machine: Box<dyn OpMachine>,
    op: SimOp,
    /// Shared-memory accesses so far (the step-complexity measure).
    steps: u64,
    /// Scheduled turns so far, including access-free local steps; used
    /// only for the wait-freedom backstop.
    turns: u64,
}

#[derive(Clone)]
struct ProcState {
    workload: Vec<SimOp>,
    next_op: usize,
    current: Option<InFlight>,
}

/// Drives a [`SimObject`] under a [`Scheduler`].
pub struct Executor<S: Scheduler> {
    mem: Memory,
    object: Box<dyn SimObject>,
    procs: Vec<ProcState>,
    scheduler: S,
    builder: HistoryBuilder<u64, u64, u64>,
    finished: Vec<OpStat>,
    /// When enabled, every executed step's [`StepRecord`] is appended
    /// to an internal log (off by default: experiment runs are long).
    step_log: Option<Vec<StepRecord>>,
    /// Lenient step contexts (analyzer mode): extra shared accesses in
    /// one step are recorded rather than fatal.
    lenient_steps: bool,
    /// Hard cap on steps per operation — a backstop against
    /// wait-freedom violations in algorithm implementations.
    pub max_steps_per_op: u64,
}

impl<S: Scheduler + Clone> Clone for Executor<S> {
    fn clone(&self) -> Self {
        Executor {
            mem: self.mem.clone(),
            object: self.object.clone(),
            procs: self.procs.clone(),
            scheduler: self.scheduler.clone(),
            builder: self.builder.clone(),
            finished: self.finished.clone(),
            step_log: self.step_log.clone(),
            lenient_steps: self.lenient_steps,
            max_steps_per_op: self.max_steps_per_op,
        }
    }
}

impl<S: Scheduler> std::fmt::Debug for Executor<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("processes", &self.procs.len())
            .field("max_steps_per_op", &self.max_steps_per_op)
            .finish_non_exhaustive()
    }
}

impl<S: Scheduler> Executor<S> {
    /// Creates an executor over `object` (whose registers live in
    /// `mem`), one workload per process, driven by `scheduler`.
    ///
    /// # Panics
    ///
    /// Panics if the number of workloads does not match the object's
    /// process count.
    pub fn new(
        mem: Memory,
        object: Box<dyn SimObject>,
        workloads: Vec<Workload>,
        scheduler: S,
    ) -> Self {
        assert_eq!(
            workloads.len(),
            object.num_processes(),
            "one workload per process"
        );
        let n = workloads.len();
        let procs = workloads
            .into_iter()
            .map(|w| ProcState {
                workload: w.ops,
                next_op: 0,
                current: None,
            })
            .collect();
        let max_steps_per_op = 64 + 8 * (n as u64) * (n as u64);
        Executor {
            mem,
            object,
            procs,
            scheduler,
            builder: HistoryBuilder::new(),
            finished: Vec::new(),
            step_log: None,
            lenient_steps: false,
            max_steps_per_op,
        }
    }

    /// Runs every workload to completion and returns the recorded
    /// history and step counts.
    ///
    /// # Panics
    ///
    /// Panics if an operation exceeds [`Executor::max_steps_per_op`]
    /// steps (wait-freedom violation in the simulated algorithm).
    pub fn run(&mut self) -> RunResult {
        self.run_bounded(u64::MAX)
    }

    /// Runs at most `max_turns` scheduling turns and then stops,
    /// leaving in-flight operations **pending** in the recorded
    /// history (they are reported with `completed: false` in the
    /// stats). This exercises the pending-operation paths of the
    /// checkers: a cut-off execution is exactly a history with
    /// pending updates/queries.
    ///
    /// # Panics
    ///
    /// Panics on wait-freedom violations, as [`Executor::run`].
    pub fn run_bounded(&mut self, max_turns: u64) -> RunResult {
        let mut turns = 0u64;
        while turns < max_turns {
            turns += 1;
            let runnable = self.runnable();
            if runnable.is_empty() {
                break;
            }
            let pi = self.scheduler.next(&runnable);
            self.step_once(pi);
        }
        self.result()
    }

    /// Executes exactly one step of process `pi`: invokes its next
    /// operation if idle, steps the machine, records the history
    /// events, and returns the step's footprint.
    ///
    /// # Panics
    ///
    /// Panics if `pi` is not runnable, or on wait-freedom violations.
    pub fn step_once(&mut self, pi: usize) -> StepRecord {
        let p = ProcessId(pi as u32);
        let obj = ObjectId(0);

        // Invoke a new operation if idle.
        let mut invoked = None;
        if self.procs[pi].current.is_none() {
            assert!(
                self.procs[pi].next_op < self.procs[pi].workload.len(),
                "process {pi} has no runnable work"
            );
            let op = self.procs[pi].workload[self.procs[pi].next_op];
            self.procs[pi].next_op += 1;
            let id = match op {
                SimOp::Update(v) => self.builder.invoke_update(p, obj, v),
                SimOp::Query(a) => self.builder.invoke_query(p, obj, a),
            };
            let machine = self.object.begin_op(p, &op);
            self.procs[pi].current = Some(InFlight {
                id,
                machine,
                op,
                steps: 0,
                turns: 0,
            });
            invoked = Some(id);
        }

        // One step.
        let fl = self.procs[pi].current.as_mut().expect("op in flight");
        let mut ctx = if self.lenient_steps {
            MemCtx::new_lenient(&mut self.mem, p)
        } else {
            MemCtx::new(&mut self.mem, p)
        };
        let status = fl.machine.step(&mut ctx);
        let accesses = ctx.into_accesses();
        if !accesses.is_empty() {
            fl.steps += 1;
        }
        fl.turns += 1;
        assert!(
            fl.turns <= self.max_steps_per_op,
            "operation {} of {p} exceeded {} turns: wait-freedom violated",
            fl.id,
            self.max_steps_per_op
        );
        let mut responded = None;
        if let StepStatus::Done(ret) = status {
            match (fl.op, ret) {
                (SimOp::Update(_), None) => self.builder.respond_update(fl.id),
                (SimOp::Query(_), Some(v)) => self.builder.respond_query(fl.id, v),
                (SimOp::Update(_), Some(_)) => panic!("update returned a value"),
                (SimOp::Query(_), None) => panic!("query returned no value"),
            }
            responded = Some(fl.id);
            self.finished.push(OpStat {
                id: fl.id,
                process: p,
                op: fl.op,
                steps: fl.steps,
                completed: true,
            });
            self.procs[pi].current = None;
        }

        let record = StepRecord {
            process: pi,
            accesses,
            invoked,
            responded,
        };
        if let Some(log) = &mut self.step_log {
            log.push(record.clone());
        }
        record
    }

    /// Snapshot of the execution so far: the recorded history plus
    /// per-operation statistics (operations still in flight are
    /// reported pending).
    pub fn result(&self) -> RunResult {
        let mut stats = self.finished.clone();
        for (pi, p) in self.procs.iter().enumerate() {
            if let Some(fl) = &p.current {
                stats.push(OpStat {
                    id: fl.id,
                    process: ProcessId(pi as u32),
                    op: fl.op,
                    steps: fl.steps,
                    completed: false,
                });
            }
        }
        RunResult {
            history: self.builder.clone().finish(),
            stats,
        }
    }

    /// Read access to the memory (for post-run inspection).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to the memory (the analyzer uses this to disable
    /// ownership enforcement before executing a suspect machine).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Read access to the scheduler (e.g. to retrieve a
    /// [`crate::scheduler::RecordingScheduler`]'s captured script).
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }

    /// Starts appending every step's [`StepRecord`] to an internal log.
    pub fn enable_step_log(&mut self) {
        if self.step_log.is_none() {
            self.step_log = Some(Vec::new());
        }
    }

    /// The step log recorded so far (empty unless
    /// [`Executor::enable_step_log`] was called).
    pub fn step_log(&self) -> &[StepRecord] {
        self.step_log.as_deref().unwrap_or(&[])
    }

    /// Switches step contexts to lenient mode: a machine performing
    /// more than one shared access per step is recorded (for the
    /// happens-before analyzer to flag) instead of panicking.
    pub fn set_lenient_steps(&mut self, lenient: bool) {
        self.lenient_steps = lenient;
    }

    /// The processes that can take a step right now (mid-operation or
    /// with workload remaining). Used by the exhaustive explorer to
    /// branch on every scheduling choice.
    pub fn runnable(&self) -> Vec<usize> {
        self.procs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.current.is_some() || p.next_op < p.workload.len())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Sequential specification matching simulator counter histories
/// (update arg / query arg / value all `u64`; the query argument is
/// ignored). Equivalent to [`ivl_spec::specs::BatchedCounterSpec`]
/// modulo the query argument type.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct SimCounterSpec;

impl ObjectSpec for SimCounterSpec {
    type Update = u64;
    type Query = u64;
    type Value = u64;
    type State = u64;

    fn initial_state(&self) -> u64 {
        0
    }

    fn apply_update(&self, state: &mut u64, update: &u64) {
        *state += *update;
    }

    fn eval_query(&self, state: &u64, _query: &u64) -> u64 {
        *state
    }
}

impl MonotoneSpec for SimCounterSpec {}

/// Sequential specification of the binary snapshot object of
/// Algorithm 3 as recorded by the simulator: `update` arguments encode
/// `(component << 1) | bit`, queries return the bit-vector as a mask.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SimBinarySnapshotSpec {
    /// Number of components.
    pub n: usize,
}

impl ObjectSpec for SimBinarySnapshotSpec {
    type Update = u64;
    type Query = u64;
    type Value = u64;
    type State = u64;

    fn initial_state(&self) -> u64 {
        0
    }

    fn apply_update(&self, state: &mut u64, update: &u64) {
        let component = (update >> 1) as usize;
        let bit = update & 1;
        assert!(component < self.n);
        if bit == 1 {
            *state |= 1 << component;
        } else {
            *state &= !(1 << component);
        }
    }

    fn eval_query(&self, state: &u64, _query: &u64) -> u64 {
        *state
    }
}
