//! Schedulers: who takes the next step.
//!
//! A schedule `σ` (paper §2.1) is the order in which processes take
//! steps. Because the algorithms are deterministic, a scheduler fully
//! determines the execution; the random scheduler is seeded, so every
//! run is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Chooses which runnable process takes the next step.
pub trait Scheduler {
    /// Picks one element of `runnable` (non-empty, ascending process
    /// indices).
    fn next(&mut self, runnable: &[usize]) -> usize;
}

/// Cycles through processes in index order.
#[derive(Clone, Debug, Default)]
pub struct RoundRobinScheduler {
    last: usize,
}

impl RoundRobinScheduler {
    /// Creates a round-robin scheduler starting at process 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobinScheduler {
    fn next(&mut self, runnable: &[usize]) -> usize {
        // First runnable process strictly greater than `last`, else the
        // smallest runnable.
        let pick = runnable
            .iter()
            .copied()
            .find(|&p| p > self.last)
            .unwrap_or(runnable[0]);
        self.last = pick;
        pick
    }
}

/// Uniformly random choice from a seeded RNG.
#[derive(Clone, Debug)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates a random scheduler from a seed; identical seeds replay
    /// identical schedules.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn next(&mut self, runnable: &[usize]) -> usize {
        runnable[self.rng.gen_range(0..runnable.len())]
    }
}

/// Weighted random choice: process `i` is scheduled proportionally to
/// `weights[i]`. Models asymmetric speeds (a slow updater amid fast
/// queriers is exactly the §1 scenario where intermediate values
/// surface); degenerates to [`RandomScheduler`] with equal weights.
#[derive(Clone, Debug)]
pub struct BiasedScheduler {
    weights: Vec<u32>,
    rng: StdRng,
}

impl BiasedScheduler {
    /// Creates a scheduler with per-process weights (0-weight processes
    /// are only run when no weighted process is runnable).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty.
    pub fn new(weights: Vec<u32>, seed: u64) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        BiasedScheduler {
            weights,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for BiasedScheduler {
    fn next(&mut self, runnable: &[usize]) -> usize {
        let weight_of = |p: usize| self.weights.get(p).copied().unwrap_or(1);
        let total: u64 = runnable.iter().map(|&p| weight_of(p) as u64).sum();
        if total == 0 {
            return runnable[self.rng.gen_range(0..runnable.len())];
        }
        let mut ticket = self.rng.gen_range(0..total);
        for &p in runnable {
            let w = weight_of(p) as u64;
            if ticket < w {
                return p;
            }
            ticket -= w;
        }
        runnable[runnable.len() - 1]
    }
}

/// Replays an explicit sequence of process indices; used to re-enact
/// hand-crafted adversarial schedules (e.g. the paper's Example 9).
/// When the scripted process is not runnable (or the script is
/// exhausted), falls back to the smallest runnable process.
#[derive(Clone, Debug)]
pub struct FixedScheduler {
    script: Vec<usize>,
    pos: usize,
}

impl FixedScheduler {
    /// Creates a scheduler replaying `script`.
    pub fn new(script: Vec<usize>) -> Self {
        FixedScheduler { script, pos: 0 }
    }
}

impl Scheduler for FixedScheduler {
    fn next(&mut self, runnable: &[usize]) -> usize {
        while self.pos < self.script.len() {
            let want = self.script[self.pos];
            self.pos += 1;
            if runnable.contains(&want) {
                return want;
            }
        }
        runnable[0]
    }
}

/// Wraps any scheduler and records the sequence of choices it made,
/// so a random or biased run can be replayed deterministically with a
/// [`FixedScheduler`] — the happens-before analyzer reports violations
/// as replayable schedule prefixes captured this way.
#[derive(Clone, Debug)]
pub struct RecordingScheduler<S> {
    inner: S,
    script: Vec<usize>,
}

impl<S: Scheduler> RecordingScheduler<S> {
    /// Wraps `inner`, recording every choice.
    pub fn new(inner: S) -> Self {
        RecordingScheduler {
            inner,
            script: Vec::new(),
        }
    }

    /// The choices made so far, in order — feed to
    /// [`FixedScheduler::new`] to replay.
    pub fn script(&self) -> &[usize] {
        &self.script
    }
}

impl<S: Scheduler> Scheduler for RecordingScheduler<S> {
    fn next(&mut self, runnable: &[usize]) -> usize {
        let pick = self.inner.next(runnable);
        self.script.push(pick);
        pick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let mut s = RoundRobinScheduler::new();
        let runnable = [0, 1, 2];
        assert_eq!(s.next(&runnable), 1);
        assert_eq!(s.next(&runnable), 2);
        assert_eq!(s.next(&runnable), 0);
        assert_eq!(s.next(&runnable), 1);
    }

    #[test]
    fn round_robin_skips_blocked() {
        let mut s = RoundRobinScheduler::new();
        assert_eq!(s.next(&[0, 2]), 2);
        assert_eq!(s.next(&[0, 2]), 0);
    }

    #[test]
    fn random_is_reproducible() {
        let runnable = [0, 1, 2, 3];
        let picks1: Vec<usize> = {
            let mut s = RandomScheduler::new(42);
            (0..20).map(|_| s.next(&runnable)).collect()
        };
        let picks2: Vec<usize> = {
            let mut s = RandomScheduler::new(42);
            (0..20).map(|_| s.next(&runnable)).collect()
        };
        assert_eq!(picks1, picks2);
    }

    #[test]
    fn fixed_replays_then_falls_back() {
        let mut s = FixedScheduler::new(vec![2, 2, 0]);
        assert_eq!(s.next(&[0, 1, 2]), 2);
        assert_eq!(s.next(&[0, 1, 2]), 2);
        assert_eq!(s.next(&[0, 1, 2]), 0);
        assert_eq!(s.next(&[1, 2]), 1); // script exhausted
    }

    #[test]
    fn fixed_skips_unrunnable_entries() {
        let mut s = FixedScheduler::new(vec![3, 1]);
        assert_eq!(s.next(&[0, 1]), 1); // 3 not runnable, skipped
    }

    #[test]
    fn biased_respects_weights() {
        let mut s = BiasedScheduler::new(vec![9, 1], 7);
        let runnable = [0, 1];
        let p0 = (0..10_000).filter(|_| s.next(&runnable) == 0).count();
        assert!((8500..9500).contains(&p0), "p0 scheduled {p0}/10000");
    }

    #[test]
    fn biased_zero_weight_process_still_runs_alone() {
        let mut s = BiasedScheduler::new(vec![0, 1], 3);
        assert_eq!(s.next(&[0]), 0);
    }

    #[test]
    fn recording_captures_inner_choices() {
        let runnable = [0, 1, 2];
        let mut rec = RecordingScheduler::new(RandomScheduler::new(9));
        let picks: Vec<usize> = (0..10).map(|_| rec.next(&runnable)).collect();
        assert_eq!(rec.script(), picks.as_slice());
        // Replaying the script reproduces the choices exactly.
        let mut replay = FixedScheduler::new(rec.script().to_vec());
        let replayed: Vec<usize> = (0..10).map(|_| replay.next(&runnable)).collect();
        assert_eq!(replayed, picks);
    }

    #[test]
    fn biased_is_reproducible() {
        let runnable = [0, 1, 2];
        let run = || {
            let mut s = BiasedScheduler::new(vec![1, 2, 3], 11);
            (0..50).map(|_| s.next(&runnable)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
