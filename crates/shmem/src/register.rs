//! Atomic shared registers with SWMR ownership enforcement.
//!
//! The model (paper §2.1): processes access atomic shared variables;
//! each access is instantaneous and counts as one step. Registers in
//! the abstract model may hold arbitrarily large values (the Afek et
//! al. snapshot stores an embedded view in a register), represented
//! here by [`RegValue`].
//!
//! The lower bound of Theorem 14 holds for implementations from
//! *single-writer* multi-reader (SWMR) registers, so [`Memory`]
//! enforces single-writer ownership: a write by any process other than
//! the register's owner panics, making an accidental departure from
//! the model loud.

use ivl_spec::ProcessId;
use std::fmt;

/// Index of a register within a [`Memory`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RegisterId(pub usize);

impl fmt::Display for RegisterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The value held by a register.
///
/// The abstract model allows registers of unbounded size; the variants
/// cover the shapes used by the algorithms in this crate.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum RegValue {
    /// Initial, never-written state.
    #[default]
    Empty,
    /// A plain integer (the IVL counter's per-process sums).
    Int(u64),
    /// A snapshot-object component: the stored value, a write sequence
    /// number, and the writer's embedded view of all components (Afek
    /// et al.).
    Snap {
        /// Component value.
        value: u64,
        /// Number of writes to this component so far.
        seq: u64,
        /// The view (one value per component) the writer embedded.
        view: Vec<u64>,
    },
}

impl RegValue {
    /// Reads the integer in `Int`, or 0 for `Empty`.
    ///
    /// # Panics
    ///
    /// Panics on `Snap` — mixing register disciplines is an algorithm
    /// bug.
    pub fn as_int(&self) -> u64 {
        match self {
            RegValue::Empty => 0,
            RegValue::Int(v) => *v,
            RegValue::Snap { .. } => panic!("read Snap register as Int"),
        }
    }

    /// Reads a snapshot component, mapping `Empty` to an all-zero
    /// component with an empty view.
    ///
    /// # Panics
    ///
    /// Panics on `Int`.
    pub fn as_snap(&self) -> (u64, u64, &[u64]) {
        match self {
            RegValue::Empty => (0, 0, &[]),
            RegValue::Snap { value, seq, view } => (*value, *seq, view),
            RegValue::Int(_) => panic!("read Int register as Snap"),
        }
    }
}

/// A bank of atomic registers with ownership metadata and access
/// counters.
///
/// `Memory` is `Clone` so the exhaustive explorers can snapshot shared
/// state at a branch point instead of replaying the whole prefix.
#[derive(Clone, Debug)]
pub struct Memory {
    cells: Vec<RegValue>,
    owners: Vec<Option<ProcessId>>,
    reads: u64,
    writes: u64,
    /// When `false`, ownership violations are *permitted* instead of
    /// fatal, so the happens-before analyzer can execute a broken
    /// machine to completion and report the violation with a replayable
    /// schedule. Defaults to `true` (the model's discipline).
    enforce_ownership: bool,
}

impl Default for Memory {
    fn default() -> Self {
        Memory {
            cells: Vec::new(),
            owners: Vec::new(),
            reads: 0,
            writes: 0,
            enforce_ownership: true,
        }
    }
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Allocates a register writable only by `owner` (SWMR); pass
    /// `None` for a multi-writer register (not used by the paper's
    /// algorithms, provided for baselines).
    pub fn alloc(&mut self, owner: Option<ProcessId>) -> RegisterId {
        self.cells.push(RegValue::Empty);
        self.owners.push(owner);
        RegisterId(self.cells.len() - 1)
    }

    /// Allocates `n` registers, register `i` owned by process `i`.
    pub fn alloc_swmr_array(&mut self, n: usize) -> Vec<RegisterId> {
        (0..n)
            .map(|i| self.alloc(Some(ProcessId(i as u32))))
            .collect()
    }

    /// Atomically reads a register. One step.
    pub fn read(&mut self, r: RegisterId) -> RegValue {
        self.reads += 1;
        self.cells[r.0].clone()
    }

    /// Atomically writes a register. One step.
    ///
    /// # Panics
    ///
    /// Panics if `writer` is not the register's owner (SWMR
    /// violation), unless enforcement was disabled via
    /// [`Memory::set_enforce_ownership`].
    pub fn write(&mut self, r: RegisterId, writer: ProcessId, value: RegValue) {
        if self.enforce_ownership {
            if let Some(owner) = self.owners[r.0] {
                assert_eq!(
                    owner, writer,
                    "SWMR violation: {writer} wrote register {r} owned by {owner}"
                );
            }
        }
        self.writes += 1;
        self.cells[r.0] = value;
    }

    /// Atomically adds `delta` to an `Int` register and returns the
    /// *previous* value. One step. This is a read-modify-write
    /// primitive, stronger than a SWMR register — provided for
    /// algorithms the paper states in terms of atomic increments
    /// (`PCM`'s counters), never used by the register-model counters.
    ///
    /// # Panics
    ///
    /// Panics on SWMR-owned registers (RMW is a multi-writer
    /// primitive here; suppressed when enforcement is disabled) or
    /// non-`Int` contents.
    pub fn fetch_add(&mut self, r: RegisterId, delta: u64) -> u64 {
        assert!(
            !self.enforce_ownership || self.owners[r.0].is_none(),
            "fetch_add is a multi-writer primitive; register {r} is SWMR"
        );
        self.reads += 1;
        self.writes += 1;
        let old = self.cells[r.0].as_int();
        self.cells[r.0] = RegValue::Int(old + delta);
        old
    }

    /// The declared owner of register `r` (`None` for multi-writer).
    pub fn owner(&self, r: RegisterId) -> Option<ProcessId> {
        self.owners[r.0]
    }

    /// The full ownership table, indexed by register id — the
    /// happens-before analyzer checks write footprints against it.
    pub fn owners(&self) -> &[Option<ProcessId>] {
        &self.owners
    }

    /// Enables or disables SWMR ownership enforcement (see the field
    /// docs; analyzer-only — leave enabled everywhere else).
    pub fn set_enforce_ownership(&mut self, enforce: bool) {
        self.enforce_ownership = enforce;
    }

    /// Number of registers allocated.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no registers are allocated.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total shared reads performed.
    pub fn total_reads(&self) -> u64 {
        self.reads
    }

    /// Total shared writes performed.
    pub fn total_writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swmr_owner_can_write() {
        let mut m = Memory::new();
        let r = m.alloc(Some(ProcessId(0)));
        m.write(r, ProcessId(0), RegValue::Int(7));
        assert_eq!(m.read(r).as_int(), 7);
    }

    #[test]
    #[should_panic(expected = "SWMR violation")]
    fn swmr_non_owner_write_panics() {
        let mut m = Memory::new();
        let r = m.alloc(Some(ProcessId(0)));
        m.write(r, ProcessId(1), RegValue::Int(7));
    }

    #[test]
    fn mwmr_register_accepts_any_writer() {
        let mut m = Memory::new();
        let r = m.alloc(None);
        m.write(r, ProcessId(0), RegValue::Int(1));
        m.write(r, ProcessId(5), RegValue::Int(2));
        assert_eq!(m.read(r).as_int(), 2);
    }

    #[test]
    fn empty_reads_as_zero() {
        let mut m = Memory::new();
        let r = m.alloc(Some(ProcessId(0)));
        assert_eq!(m.read(r).as_int(), 0);
        let (v, s, view) = RegValue::Empty.as_snap();
        assert_eq!((v, s), (0, 0));
        assert!(view.is_empty());
    }

    #[test]
    fn access_counters() {
        let mut m = Memory::new();
        let r = m.alloc(Some(ProcessId(0)));
        m.write(r, ProcessId(0), RegValue::Int(1));
        m.read(r);
        m.read(r);
        assert_eq!(m.total_writes(), 1);
        assert_eq!(m.total_reads(), 2);
    }

    #[test]
    fn unenforced_memory_permits_foreign_writes() {
        let mut m = Memory::new();
        let r = m.alloc(Some(ProcessId(0)));
        m.set_enforce_ownership(false);
        m.write(r, ProcessId(1), RegValue::Int(7));
        assert_eq!(m.read(r).as_int(), 7);
        assert_eq!(m.owner(r), Some(ProcessId(0)));
    }

    #[test]
    fn alloc_swmr_array_assigns_owners() {
        let mut m = Memory::new();
        let regs = m.alloc_swmr_array(3);
        assert_eq!(regs.len(), 3);
        m.write(regs[2], ProcessId(2), RegValue::Int(9));
        assert_eq!(m.read(regs[2]).as_int(), 9);
    }
}
