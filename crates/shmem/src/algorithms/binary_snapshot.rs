//! Algorithm 3: binary snapshot from a batched counter.
//!
//! The paper's lower-bound reduction (§6.2): a binary snapshot object
//! is solved with a *single* batched counter by encoding component `i`
//! in the `i`-th bit of the counter's value:
//!
//! ```text
//! procedure update_i(v):
//!     if v_i = v then return
//!     v_i ← v
//!     if v = 1 then BC.update_i(2^i)
//!     if v = 0 then BC.update_i(2^n − 2^i)
//! procedure scan():
//!     sum ← BC.read()
//!     return bits 0..n-1 of sum
//! ```
//!
//! Lemma 13: if the underlying counter is linearizable, the snapshot is
//! linearizable. Because snapshot `update` needs Ω(n) steps from SWMR
//! registers (Israeli–Shirazi), a linearizable batched counter's
//! `update` also needs Ω(n) steps (Theorem 14).
//!
//! Instantiating the reduction with the *IVL* counter instead breaks
//! linearizability of the snapshot — an intermediate counter value can
//! mix bits from different instants — which is exactly why the O(1)
//! IVL counter does not contradict the lower bound. The test-suite
//! demonstrates both directions.

use crate::executor::{SimObject, SimOp};
use crate::machine::{MemCtx, OpMachine, StepStatus};
use ivl_spec::ProcessId;

/// The simulated Algorithm 3 object, generic over the inner batched
/// counter (any [`SimObject`] with counter semantics).
#[derive(Clone)]
pub struct BinarySnapshotSim {
    inner: Box<dyn SimObject>,
    /// Each process's local component value `v_i`.
    v: Vec<u64>,
}

impl std::fmt::Debug for BinarySnapshotSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BinarySnapshotSim")
            .field("components", &self.v.len())
            .finish_non_exhaustive()
    }
}

impl BinarySnapshotSim {
    /// Wraps a batched counter object shared by the same `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32` (sums are encoded in the counter's `u64`
    /// values, and flips contribute `c·2^n` overflow headroom).
    pub fn new(inner: Box<dyn SimObject>) -> Self {
        let n = inner.num_processes();
        assert!(
            n <= 32,
            "binary snapshot encoding supports at most 32 components"
        );
        BinarySnapshotSim {
            inner,
            v: vec![0; n],
        }
    }

    /// Number of components.
    pub fn components(&self) -> usize {
        self.v.len()
    }
}

impl SimObject for BinarySnapshotSim {
    fn box_clone(&self) -> Box<dyn SimObject> {
        Box::new(self.clone())
    }

    fn begin_op(&mut self, process: ProcessId, op: &SimOp) -> Box<dyn OpMachine> {
        let n = self.v.len();
        let pi = process.0 as usize;
        match op {
            SimOp::Update(bit) => {
                let bit = bit & 1;
                if self.v[pi] == bit {
                    // No counter access needed: respond immediately.
                    return Box::new(NoopUpdate);
                }
                self.v[pi] = bit;
                let delta = if bit == 1 {
                    1u64 << pi
                } else {
                    (1u64 << n) - (1u64 << pi)
                };
                Box::new(DelegatingUpdate {
                    inner: self.inner.begin_op(process, &SimOp::Update(delta)),
                })
            }
            SimOp::Query(_) => Box::new(ScanMachine {
                inner: self.inner.begin_op(process, &SimOp::Query(0)),
                n,
            }),
        }
    }

    fn num_processes(&self) -> usize {
        self.v.len()
    }
}

/// `update_i(v)` with `v_i == v`: returns without shared accesses.
#[derive(Clone, Debug)]
struct NoopUpdate;

impl OpMachine for NoopUpdate {
    fn box_clone(&self) -> Box<dyn OpMachine> {
        Box::new(self.clone())
    }

    fn step(&mut self, _ctx: &mut MemCtx<'_>) -> StepStatus {
        StepStatus::Done(None)
    }
}

/// `update_i(v)` delegating to the counter's update.
#[derive(Clone)]
struct DelegatingUpdate {
    inner: Box<dyn OpMachine>,
}

impl OpMachine for DelegatingUpdate {
    fn box_clone(&self) -> Box<dyn OpMachine> {
        Box::new(self.clone())
    }

    fn step(&mut self, ctx: &mut MemCtx<'_>) -> StepStatus {
        self.inner.step(ctx)
    }
}

/// `scan()`: counter read, then local bit decoding.
#[derive(Clone)]
struct ScanMachine {
    inner: Box<dyn OpMachine>,
    n: usize,
}

impl OpMachine for ScanMachine {
    fn box_clone(&self) -> Box<dyn OpMachine> {
        Box::new(self.clone())
    }

    fn step(&mut self, ctx: &mut MemCtx<'_>) -> StepStatus {
        match self.inner.step(ctx) {
            StepStatus::Running => StepStatus::Running,
            StepStatus::Done(Some(sum)) => {
                let mask = sum & ((1u64 << self.n) - 1);
                StepStatus::Done(Some(mask))
            }
            StepStatus::Done(None) => panic!("counter read returned no value"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{IvlCounterSim, SnapshotCounterSim};
    use crate::executor::{Executor, SimBinarySnapshotSpec, Workload};
    use crate::register::Memory;
    use crate::scheduler::{FixedScheduler, RandomScheduler};
    use ivl_spec::history::{Event, EventKind, History, Op};
    use ivl_spec::linearize::check_linearizable;

    /// Rewrites the recorded history so update arguments carry
    /// `(component << 1) | bit` as [`SimBinarySnapshotSpec`] expects.
    /// The executor records the *outer* update argument (the bit), so
    /// we re-attach the component (= process) here.
    fn encode_components(h: &History<u64, u64, u64>) -> History<u64, u64, u64> {
        let events = h
            .events()
            .iter()
            .map(|ev| Event {
                op: ev.op,
                process: ev.process,
                object: ev.object,
                kind: match &ev.kind {
                    EventKind::Invoke(Op::Update(bit)) => {
                        EventKind::Invoke(Op::Update(((ev.process.0 as u64) << 1) | (bit & 1)))
                    }
                    other => other.clone(),
                },
            })
            .collect();
        History::from_events(events).unwrap()
    }

    /// Each process alternates 1,0,1,0… (every op really flips);
    /// process `scanner` scans twice instead.
    fn toggling_workloads(n: usize, flips: usize, scanner: usize) -> Vec<Workload> {
        let mut w: Vec<Workload> = (0..n)
            .map(|_| Workload {
                ops: (0..flips)
                    .map(|k| SimOp::Update(((k + 1) % 2) as u64))
                    .collect(),
            })
            .collect();
        w[scanner] = Workload {
            ops: vec![SimOp::Query(0), SimOp::Query(0)],
        };
        w
    }

    #[test]
    fn linearizable_counter_yields_linearizable_snapshot() {
        // Lemma 13, checked on random schedules.
        for seed in 0..30 {
            let n = 3;
            let mut mem = Memory::new();
            let counter = SnapshotCounterSim::new(&mut mem, n);
            let obj = BinarySnapshotSim::new(Box::new(counter));
            let workloads = toggling_workloads(n, 2, 2);
            let mut exec = Executor::new(mem, Box::new(obj), workloads, RandomScheduler::new(seed));
            let result = exec.run();
            let h = encode_components(&result.history);
            assert!(
                check_linearizable(&[SimBinarySnapshotSpec { n }], &h).is_linearizable(),
                "seed {seed}: snapshot over linearizable counter must linearize: {h:?}"
            );
        }
    }

    #[test]
    fn ivl_counter_breaks_the_reduction() {
        // With the O(1) IVL counter inside, an adversarial schedule
        // produces a non-linearizable snapshot — the reduction
        // *requires* linearizability, which is why Theorem 14's Ω(n)
        // bound does not apply to the IVL counter.
        //
        // Schedule: p0 flips bit 0 up; the scanner reads r0 (sees the
        // up state); p0 flips bit 0 down; p1 flips bit 1 up; the
        // scanner reads r1 and r2. The scan returns [1,1,0], but bit 1
        // is only ever 1 after p0's completed down-flip, so no
        // linearization point exists.
        let n = 3;
        let mut mem = Memory::new();
        let counter = IvlCounterSim::new(&mut mem, n);
        let obj = BinarySnapshotSim::new(Box::new(counter));
        let workloads = vec![
            Workload {
                ops: vec![SimOp::Update(1), SimOp::Update(0)],
            },
            Workload {
                ops: vec![SimOp::Update(1)],
            },
            Workload {
                ops: vec![SimOp::Query(0)],
            },
        ];
        let script = vec![0, 2, 0, 1, 2, 2];
        let mut exec = Executor::new(mem, Box::new(obj), workloads, FixedScheduler::new(script));
        let result = exec.run();
        let scan = result
            .history
            .operations()
            .into_iter()
            .find(|o| o.op.is_query())
            .unwrap();
        assert_eq!(scan.return_value, Some(0b011), "scan mixed instants");
        let h = encode_components(&result.history);
        assert!(
            !check_linearizable(&[SimBinarySnapshotSpec { n }], &h).is_linearizable(),
            "snapshot over the IVL counter must not linearize under this schedule"
        );
    }

    #[test]
    fn noop_update_takes_zero_steps() {
        let n = 2;
        let mut mem = Memory::new();
        let counter = SnapshotCounterSim::new(&mut mem, n);
        let obj = BinarySnapshotSim::new(Box::new(counter));
        // p0 sets 1 twice: second update is a no-op.
        let workloads = vec![
            Workload {
                ops: vec![SimOp::Update(1), SimOp::Update(1)],
            },
            Workload { ops: vec![] },
        ];
        let mut exec = Executor::new(mem, Box::new(obj), workloads, FixedScheduler::new(vec![]));
        let result = exec.run();
        let steps: Vec<u64> = result.stats.iter().map(|s| s.steps).collect();
        assert!(steps[0] > 2 * n as u64, "real flip pays the counter cost");
        assert_eq!(steps[1], 0, "redundant update takes no shared steps");
    }

    #[test]
    fn scan_decodes_bits() {
        let n = 3;
        let mut mem = Memory::new();
        let counter = SnapshotCounterSim::new(&mut mem, n);
        let obj = BinarySnapshotSim::new(Box::new(counter));
        // p0 -> 1, p2 -> 1, then p1 scans: must see 0b101.
        let workloads = vec![
            Workload {
                ops: vec![SimOp::Update(1)],
            },
            Workload {
                ops: vec![SimOp::Query(0)],
            },
            Workload {
                ops: vec![SimOp::Update(1)],
            },
        ];
        // Run p0 fully, then p2 fully, then p1.
        let mut script = Vec::new();
        script.extend(std::iter::repeat_n(0, 40));
        script.extend(std::iter::repeat_n(2, 40));
        script.extend(std::iter::repeat_n(1, 40));
        let mut exec = Executor::new(mem, Box::new(obj), workloads, FixedScheduler::new(script));
        let result = exec.run();
        let scan = result
            .history
            .operations()
            .into_iter()
            .find(|o| o.op.is_query())
            .unwrap();
        assert_eq!(scan.return_value, Some(0b101));
    }
}
