//! A linearizable batched counter from SWMR registers via a wait-free
//! atomic snapshot (Afek et al., JACM 1993 construction).
//!
//! This is the linearizable comparator the paper's §6 measures the IVL
//! counter against. Each process keeps its personal cumulative sum in
//! its snapshot component:
//!
//! * `update_i(v)` — snapshot-object update: perform an **embedded
//!   scan**, then write `(new_sum, seq+1, view)` to the own register.
//!   Cost: ≥ 2n + 1 steps (at least one double collect plus the
//!   write) — consistent with the Ω(n) lower bound of Theorem 14.
//! * `read()` — snapshot-object scan: repeated double collects; if a
//!   register is observed to change twice, borrow its embedded view.
//!   Cost: between 2n and O(n²) steps. Returns the sum of the view.
//!
//! Linearizability of the counter follows from atomicity of the
//! snapshot: scans linearize at their success point (clean double
//! collect or the borrowed view's embedded scan), updates at their
//! write.
//!
//! Wait-freedom: each failed double collect marks at least one new
//! process as "moved"; after a process is moved twice its embedded
//! view is borrowed, so a scan performs at most `n + 2` double
//! collects.

use crate::executor::{SimObject, SimOp};
use crate::machine::{MemCtx, OpMachine, StepStatus};
use crate::register::{Memory, RegValue, RegisterId};
use ivl_spec::ProcessId;

/// The simulated snapshot-based linearizable batched counter.
#[derive(Clone, Debug)]
pub struct SnapshotCounterSim {
    regs: Vec<RegisterId>,
    /// Local mirrors of own components (single-writer).
    local_sum: Vec<u64>,
    local_seq: Vec<u64>,
}

impl SnapshotCounterSim {
    /// Allocates the `n` SWMR snapshot registers in `mem`.
    pub fn new(mem: &mut Memory, n: usize) -> Self {
        SnapshotCounterSim {
            regs: mem.alloc_swmr_array(n),
            local_sum: vec![0; n],
            local_seq: vec![0; n],
        }
    }
}

impl SimObject for SnapshotCounterSim {
    fn box_clone(&self) -> Box<dyn SimObject> {
        Box::new(self.clone())
    }

    fn begin_op(&mut self, process: ProcessId, op: &SimOp) -> Box<dyn OpMachine> {
        let pi = process.0 as usize;
        match op {
            SimOp::Update(v) => {
                self.local_sum[pi] += v;
                self.local_seq[pi] += 1;
                Box::new(UpdateMachine {
                    scan: ScanMachine::new(self.regs.clone()),
                    own: self.regs[pi],
                    value: self.local_sum[pi],
                    seq: self.local_seq[pi],
                    done_scanning: None,
                })
            }
            SimOp::Query(_) => Box::new(ReadMachine {
                scan: ScanMachine::new(self.regs.clone()),
            }),
        }
    }

    fn num_processes(&self) -> usize {
        self.regs.len()
    }
}

/// Reusable scan sub-machine implementing the classic double-collect
/// with view borrowing. Produces a linearizable view of all
/// components.
#[derive(Clone, Debug)]
struct ScanMachine {
    regs: Vec<RegisterId>,
    /// (value, seq, view) triples of the first collect of the current
    /// round.
    first: Vec<(u64, u64, Vec<u64>)>,
    second: Vec<(u64, u64, Vec<u64>)>,
    moved: Vec<bool>,
    /// Next register to read within the current collect.
    next: usize,
    in_second_collect: bool,
}

enum ScanStep {
    Running,
    Done(Vec<u64>),
}

impl ScanMachine {
    fn new(regs: Vec<RegisterId>) -> Self {
        let n = regs.len();
        ScanMachine {
            regs,
            first: Vec::with_capacity(n),
            second: Vec::with_capacity(n),
            moved: vec![false; n],
            next: 0,
            in_second_collect: false,
        }
    }

    fn read_triple(ctx: &mut MemCtx<'_>, r: RegisterId, n: usize) -> (u64, u64, Vec<u64>) {
        let raw = ctx.read(r);
        let (value, seq, view) = raw.as_snap();
        let view = if view.is_empty() {
            vec![0; n]
        } else {
            view.to_vec()
        };
        (value, seq, view)
    }

    /// One shared read per call; yields the scanned view when done.
    fn step(&mut self, ctx: &mut MemCtx<'_>) -> ScanStep {
        let n = self.regs.len();
        let triple = Self::read_triple(ctx, self.regs[self.next], n);
        if self.in_second_collect {
            self.second.push(triple);
        } else {
            self.first.push(triple);
        }
        self.next += 1;
        if self.next < n {
            return ScanStep::Running;
        }
        // A collect just finished.
        self.next = 0;
        if !self.in_second_collect {
            self.in_second_collect = true;
            return ScanStep::Running;
        }
        // A double collect just finished: compare.
        self.in_second_collect = false;
        let clean = self.first.iter().zip(&self.second).all(|(a, b)| a.1 == b.1);
        if clean {
            let view = self.second.iter().map(|t| t.0).collect();
            return ScanStep::Done(view);
        }
        for i in 0..n {
            if self.first[i].1 != self.second[i].1 {
                if self.moved[i] {
                    // Borrow the embedded view: the writer performed a
                    // complete embedded scan inside our interval.
                    return ScanStep::Done(self.second[i].2.clone());
                }
                self.moved[i] = true;
            }
        }
        self.first.clear();
        self.second.clear();
        ScanStep::Running
    }
}

/// Snapshot-object update: embedded scan then a single write.
#[derive(Clone, Debug)]
struct UpdateMachine {
    scan: ScanMachine,
    own: RegisterId,
    value: u64,
    seq: u64,
    done_scanning: Option<Vec<u64>>,
}

impl OpMachine for UpdateMachine {
    fn box_clone(&self) -> Box<dyn OpMachine> {
        Box::new(self.clone())
    }

    fn step(&mut self, ctx: &mut MemCtx<'_>) -> StepStatus {
        match &self.done_scanning {
            None => {
                if let ScanStep::Done(view) = self.scan.step(ctx) {
                    self.done_scanning = Some(view);
                }
                StepStatus::Running
            }
            Some(view) => {
                ctx.write(
                    self.own,
                    RegValue::Snap {
                        value: self.value,
                        seq: self.seq,
                        view: view.clone(),
                    },
                );
                StepStatus::Done(None)
            }
        }
    }
}

/// Counter read: scan, then return the sum of the view.
#[derive(Clone, Debug)]
struct ReadMachine {
    scan: ScanMachine,
}

impl OpMachine for ReadMachine {
    fn box_clone(&self) -> Box<dyn OpMachine> {
        Box::new(self.clone())
    }

    fn step(&mut self, ctx: &mut MemCtx<'_>) -> StepStatus {
        match self.scan.step(ctx) {
            ScanStep::Running => StepStatus::Running,
            ScanStep::Done(view) => StepStatus::Done(Some(view.iter().sum())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{Executor, SimCounterSpec, Workload};
    use crate::scheduler::{RandomScheduler, RoundRobinScheduler};
    use ivl_spec::linearize::check_linearizable;

    #[test]
    fn sequential_counting_is_correct() {
        let mut mem = Memory::new();
        let obj = SnapshotCounterSim::new(&mut mem, 2);
        let workloads = vec![
            Workload {
                ops: vec![SimOp::Update(3), SimOp::Update(4)],
            },
            Workload {
                ops: vec![SimOp::Query(0)],
            },
        ];
        let mut exec = Executor::new(mem, Box::new(obj), workloads, RoundRobinScheduler::new());
        let result = exec.run();
        assert!(
            check_linearizable(&[SimCounterSpec], &result.history).is_linearizable(),
            "history {:?} not linearizable",
            result.history
        );
    }

    #[test]
    fn random_schedules_are_linearizable() {
        // The key correctness property of the snapshot construction;
        // verified with the exact checker on small runs.
        for seed in 0..40 {
            let n = 3;
            let mut mem = Memory::new();
            let obj = SnapshotCounterSim::new(&mut mem, n);
            let workloads = vec![
                Workload {
                    ops: vec![SimOp::Update(1), SimOp::Update(2)],
                },
                Workload {
                    ops: vec![SimOp::Update(4)],
                },
                Workload {
                    ops: vec![SimOp::Query(0), SimOp::Query(0)],
                },
            ];
            let mut exec = Executor::new(mem, Box::new(obj), workloads, RandomScheduler::new(seed));
            let result = exec.run();
            assert!(
                check_linearizable(&[SimCounterSpec], &result.history).is_linearizable(),
                "seed {seed}: {:?}",
                result.history
            );
        }
    }

    #[test]
    fn update_costs_at_least_2n_plus_1_steps() {
        for n in [2usize, 4, 8, 16] {
            let mut mem = Memory::new();
            let obj = SnapshotCounterSim::new(&mut mem, n);
            let workloads = vec![Workload::updates(2, 1); n];
            let mut exec = Executor::new(mem, Box::new(obj), workloads, RandomScheduler::new(7));
            let result = exec.run();
            let min_update = result
                .stats
                .iter()
                .filter(|s| matches!(s.op, SimOp::Update(_)))
                .map(|s| s.steps)
                .min()
                .unwrap();
            assert!(
                min_update > 2 * n as u64,
                "n={n}: update took {min_update} < 2n+1 steps"
            );
        }
    }

    #[test]
    fn scan_is_wait_free_under_interference() {
        // Heavy updating traffic around one scanning process; the
        // executor's turn cap enforces bounded wait-freedom.
        let n = 6;
        let mut mem = Memory::new();
        let obj = SnapshotCounterSim::new(&mut mem, n);
        let mut workloads = vec![Workload::updates(8, 1); n];
        workloads[0] = Workload::queries(4, 0);
        let mut exec = Executor::new(mem, Box::new(obj), workloads, RandomScheduler::new(99));
        let result = exec.run();
        assert_eq!(
            result.stats.iter().filter(|s| !s.completed).count(),
            0,
            "all operations completed"
        );
    }
}
