//! A simulated `PCM`: the paper's concurrent CountMin (Algorithm 1)
//! as step machines, for deterministic schedule re-enactments
//! (Example 9) and violation-frequency experiments.
//!
//! Hash functions are supplied as explicit per-row tables over a
//! finite alphabet, so tests can construct the exact collision
//! patterns of the paper's Example 9 (`h1(a)=h2(a)=1`, `h1(b)=2`,
//! `h2(b)=1`) without searching for them in a sampled hash family.
//!
//! Cells are incremented with the one-step atomic `fetch_add`
//! primitive (the paper's "atomically increment"); queries read the
//! `d` relevant cells one step at a time, which is exactly the window
//! in which `PCM` is not linearizable.

use crate::executor::{SimObject, SimOp};
use crate::machine::{MemCtx, OpMachine, StepStatus};
use crate::register::{Memory, RegisterId};
use ivl_spec::spec::{MonotoneSpec, ObjectSpec};
use ivl_spec::ProcessId;

/// The simulated concurrent CountMin.
#[derive(Clone, Debug)]
pub struct PcmSim {
    processes: usize,
    /// `hash[row][item]` = column of `item` in `row`.
    hash: Vec<Vec<usize>>,
    /// `regs[row][col]`, all MWMR.
    regs: Vec<Vec<RegisterId>>,
}

impl PcmSim {
    /// Allocates a `d × w` matrix (dimensions inferred from the hash
    /// tables) in `mem`.
    ///
    /// # Panics
    ///
    /// Panics if `hash` is empty, rows have inconsistent alphabets, or
    /// a table entry exceeds `width`.
    pub fn new(mem: &mut Memory, processes: usize, width: usize, hash: Vec<Vec<usize>>) -> Self {
        assert!(!hash.is_empty(), "need at least one row");
        let alphabet = hash[0].len();
        for row in &hash {
            assert_eq!(row.len(), alphabet, "inconsistent alphabet across rows");
            assert!(row.iter().all(|&c| c < width), "hash value out of range");
        }
        let regs = (0..hash.len())
            .map(|_| (0..width).map(|_| mem.alloc(None)).collect())
            .collect();
        PcmSim {
            processes,
            hash,
            regs,
        }
    }

    /// The matching sequential specification `CM` over the same hash
    /// tables (for the checkers).
    pub fn spec(&self) -> TableCmSpec {
        TableCmSpec {
            width: self.regs[0].len(),
            hash: self.hash.clone(),
        }
    }
}

impl SimObject for PcmSim {
    fn box_clone(&self) -> Box<dyn SimObject> {
        Box::new(self.clone())
    }

    fn begin_op(&mut self, _process: ProcessId, op: &SimOp) -> Box<dyn OpMachine> {
        match op {
            SimOp::Update(item) => Box::new(UpdateMachine {
                cells: self
                    .hash
                    .iter()
                    .zip(&self.regs)
                    .map(|(row_hash, row_regs)| row_regs[row_hash[*item as usize]])
                    .collect(),
                next: 0,
            }),
            SimOp::Query(item) => Box::new(QueryMachine {
                cells: self
                    .hash
                    .iter()
                    .zip(&self.regs)
                    .map(|(row_hash, row_regs)| row_regs[row_hash[*item as usize]])
                    .collect(),
                next: 0,
                min: u64::MAX,
            }),
        }
    }

    fn num_processes(&self) -> usize {
        self.processes
    }
}

/// `update(a)`: one `fetch_add` per row.
#[derive(Clone, Debug)]
struct UpdateMachine {
    cells: Vec<RegisterId>,
    next: usize,
}

impl OpMachine for UpdateMachine {
    fn box_clone(&self) -> Box<dyn OpMachine> {
        Box::new(self.clone())
    }

    fn step(&mut self, ctx: &mut MemCtx<'_>) -> StepStatus {
        ctx.fetch_add(self.cells[self.next], 1);
        self.next += 1;
        if self.next == self.cells.len() {
            StepStatus::Done(None)
        } else {
            StepStatus::Running
        }
    }
}

/// `query(a)`: one read per row, return the minimum.
#[derive(Clone, Debug)]
struct QueryMachine {
    cells: Vec<RegisterId>,
    next: usize,
    min: u64,
}

impl OpMachine for QueryMachine {
    fn box_clone(&self) -> Box<dyn OpMachine> {
        Box::new(self.clone())
    }

    fn step(&mut self, ctx: &mut MemCtx<'_>) -> StepStatus {
        let v = ctx.read(self.cells[self.next]).as_int();
        self.min = self.min.min(v);
        self.next += 1;
        if self.next == self.cells.len() {
            StepStatus::Done(Some(self.min))
        } else {
            StepStatus::Running
        }
    }
}

/// Sequential CountMin specification over explicit hash tables —
/// `CM(c̄)` with the table playing `c̄`. Monotone (cells only grow;
/// min of grown cells grows).
#[derive(Clone, Debug)]
pub struct TableCmSpec {
    width: usize,
    hash: Vec<Vec<usize>>,
}

impl ObjectSpec for TableCmSpec {
    type Update = u64;
    type Query = u64;
    type Value = u64;
    type State = Vec<u64>;

    fn initial_state(&self) -> Vec<u64> {
        vec![0; self.width * self.hash.len()]
    }

    fn apply_update(&self, state: &mut Vec<u64>, update: &u64) {
        for (row, row_hash) in self.hash.iter().enumerate() {
            state[row * self.width + row_hash[*update as usize]] += 1;
        }
    }

    fn eval_query(&self, state: &Vec<u64>, query: &u64) -> u64 {
        self.hash
            .iter()
            .enumerate()
            .map(|(row, row_hash)| state[row * self.width + row_hash[*query as usize]])
            .min()
            .expect("at least one row")
    }
}

impl MonotoneSpec for TableCmSpec {}

/// Example 9's hash pattern over alphabet {a=0, b=1, e=2}, w=2, d=2:
/// h1(a)=0, h2(a)=0, h1(b)=1, h2(b)=0 (the paper's values,
/// 0-indexed), plus a filler item e with h1(e)=1, h2(e)=1 that lets
/// real updates reach the paper's initial matrix `[[1,4],[2,3]]`.
pub fn example9_hash() -> Vec<Vec<usize>> {
    vec![vec![0, 1, 1], vec![0, 0, 1]]
}

/// Runs `runs` random schedules of an Example 9-shaped workload and
/// returns how many recorded histories were **not** linearizable
/// (experiment E7; every history is additionally asserted IVL —
/// Lemma 7).
///
/// # Panics
///
/// Panics if any history violates IVL.
pub fn example9_violation_count(runs: u64) -> u64 {
    example9_violation_count_with(runs, crate::scheduler::RandomScheduler::new)
}

/// [`example9_violation_count`] under a *biased* scheduler: `weights`
/// gives the updater (index 0) and querier (index 1) scheduling
/// weights. Starving the updater widens the window in which its
/// multi-row update is half-applied, raising the violation rate —
/// the adversarial-speed sensitivity of Example 9 (E7b).
pub fn example9_violation_count_biased(runs: u64, weights: [u32; 2]) -> u64 {
    example9_violation_count_with(runs, |seed| {
        crate::scheduler::BiasedScheduler::new(weights.to_vec(), seed)
    })
}

fn example9_violation_count_with<S, F>(runs: u64, mk_scheduler: F) -> u64
where
    S: crate::scheduler::Scheduler,
    F: Fn(u64) -> S,
{
    use crate::executor::{Executor, Workload};
    use ivl_spec::check_ivl_monotone;
    use ivl_spec::linearize::check_linearizable;

    let mut nonlin = 0;
    for seed in 0..runs {
        let mut mem = Memory::new();
        let obj = PcmSim::new(&mut mem, 2, 2, example9_hash());
        let spec = obj.spec();
        let workloads = vec![
            // Seeds (as in Example 9), then repeated updates of a.
            Workload {
                ops: vec![
                    SimOp::Update(2),
                    SimOp::Update(2),
                    SimOp::Update(2),
                    SimOp::Update(0),
                    SimOp::Update(1),
                    SimOp::Update(0),
                    SimOp::Update(0),
                    SimOp::Update(0),
                ],
            },
            // Query pairs: query(a) then query(b), repeatedly.
            Workload {
                ops: vec![
                    SimOp::Query(0),
                    SimOp::Query(1),
                    SimOp::Query(0),
                    SimOp::Query(1),
                    SimOp::Query(0),
                    SimOp::Query(1),
                ],
            },
        ];
        let mut exec = Executor::new(mem, Box::new(obj), workloads, mk_scheduler(seed));
        let result = exec.run();
        assert!(
            check_ivl_monotone(&spec, &result.history).is_ivl(),
            "seed {seed}: Lemma 7 violated"
        );
        if !check_linearizable(&[spec], &result.history).is_linearizable() {
            nonlin += 1;
        }
    }
    nonlin
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{Executor, Workload};
    use crate::scheduler::FixedScheduler;
    use ivl_spec::check_ivl_monotone;
    use ivl_spec::linearize::check_linearizable;

    #[test]
    fn example9_deterministic_reenactment() {
        // The paper's Example 9, verbatim up to reachability: seeding
        // with completed updates e,e,e,a,b produces exactly the
        // paper's initial matrix c = [[1,4],[2,3]]. Then U=update(a)
        // stalls after incrementing row 1 (c[0][0]: 1→2); Q1=query(a)
        // returns 2 (sees U), Q2=query(b) returns 2 (misses U's row-2
        // increment); finally U completes. The return values force
        // U ≺ Q1 and Q2 ≺ U in any linearization, contradicting the
        // program order Q1 ≺_H Q2 — not linearizable, yet IVL.
        let mut mem = Memory::new();
        let obj = PcmSim::new(&mut mem, 2, 2, example9_hash());
        let spec = obj.spec();
        let workloads = vec![
            // p0: seeds, then the stalled update U(a).
            Workload {
                ops: vec![
                    SimOp::Update(2),
                    SimOp::Update(2),
                    SimOp::Update(2),
                    SimOp::Update(0),
                    SimOp::Update(1),
                    SimOp::Update(0), // U
                ],
            },
            // p1: Q1 = query(a), then Q2 = query(b).
            Workload {
                ops: vec![SimOp::Query(0), SimOp::Query(1)],
            },
        ];
        // p0: 5 seed updates × 2 steps = 10 steps, then U's row-1
        // step; p1: Q1 (2 steps), Q2 (2 steps); p0 finishes U.
        let mut script = vec![0; 11];
        script.extend([1, 1, 1, 1, 0]);
        let mut exec = Executor::new(mem, Box::new(obj), workloads, FixedScheduler::new(script));
        let result = exec.run();
        let ops = result.history.operations();
        let queries: Vec<_> = ops.iter().filter(|o| o.op.is_query()).collect();
        assert_eq!(
            queries[0].return_value,
            Some(2),
            "Q1 observes U's row-1 bump"
        );
        assert_eq!(queries[1].return_value, Some(2), "Q2 misses U's row-2 bump");
        assert!(
            !check_linearizable(std::slice::from_ref(&spec), &result.history).is_linearizable(),
            "Example 9: no linearization exists"
        );
        assert!(
            check_ivl_monotone(&spec, &result.history).is_ivl(),
            "Example 9 history is IVL (Lemma 7)"
        );
    }

    #[test]
    fn random_schedules_are_ivl_and_sometimes_not_linearizable() {
        // Lemma 7 on random schedules + Example 9's moral: some
        // schedule is not linearizable.
        let nonlin = example9_violation_count(300);
        assert!(
            nonlin > 0,
            "expected at least one non-linearizable PCM schedule in 300 runs"
        );
    }

    #[test]
    fn quiescent_queries_match_spec() {
        let mut mem = Memory::new();
        let obj = PcmSim::new(&mut mem, 2, 4, vec![vec![0, 1, 2, 3], vec![1, 0, 3, 2]]);
        let spec = obj.spec();
        let workloads = vec![
            Workload {
                ops: vec![SimOp::Update(2), SimOp::Update(2), SimOp::Update(3)],
            },
            Workload {
                ops: vec![SimOp::Query(2)],
            },
        ];
        // p0 finishes everything, then p1 queries.
        let script: Vec<usize> = std::iter::repeat_n(0, 6)
            .chain(std::iter::repeat_n(1, 2))
            .collect();
        let mut exec = Executor::new(mem, Box::new(obj), workloads, FixedScheduler::new(script));
        let result = exec.run();
        let q = result
            .history
            .operations()
            .into_iter()
            .find(|o| o.op.is_query())
            .unwrap();
        assert_eq!(q.return_value, Some(2));
        assert!(check_linearizable(&[spec], &result.history).is_linearizable());
    }
}
