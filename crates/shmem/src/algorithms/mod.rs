//! The paper's register-based algorithms as simulated step machines.

pub mod binary_snapshot;
pub mod fetch_add_counter;
pub mod inc_dec_sim;
pub mod ivl_counter;
pub mod pcm_sim;
pub mod snapshot;

pub use binary_snapshot::BinarySnapshotSim;
pub use fetch_add_counter::FetchAddCounterSim;
pub use inc_dec_sim::{decode_signed, encode_signed, IncDecCounterSim, IncDecSimSpec};
pub use ivl_counter::IvlCounterSim;
pub use pcm_sim::{
    example9_hash, example9_violation_count, example9_violation_count_biased, PcmSim, TableCmSpec,
};
pub use snapshot::SnapshotCounterSim;
