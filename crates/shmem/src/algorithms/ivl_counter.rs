//! Algorithm 2: the wait-free IVL batched counter from SWMR registers.
//!
//! ```text
//! shared array v[1..n]            // v[i] writable only by p_i
//! procedure update_i(v):  v[i] ← v[i] + v          // O(1) steps
//! procedure read():       sum ← Σ_i v[i]; return   // O(n) steps
//! ```
//!
//! `v[i] ← v[i] + v` is a read-modify-write of the process's *own*
//! register; since `p_i` is its only writer, it keeps a local mirror
//! and the update is a **single write step** — giving the O(1) update
//! step complexity of Theorem 11. `read` collects all `n` registers,
//! one step each.
//!
//! The implementation is *not* linearizable (a read may see a later
//! update and miss an earlier one, Figure 2 of the paper) but is IVL
//! (Lemma 10), which the simulator test-suite verifies on random
//! schedules via [`ivl_spec::check_ivl_monotone`].

use crate::executor::{SimObject, SimOp};
use crate::machine::{MemCtx, OpMachine, StepStatus};
use crate::register::{Memory, RegValue, RegisterId};
use ivl_spec::ProcessId;

/// The simulated Algorithm 2 object.
#[derive(Clone, Debug)]
pub struct IvlCounterSim {
    regs: Vec<RegisterId>,
    /// Local mirror of each process's own register (legal because each
    /// register is single-writer).
    local: Vec<u64>,
}

impl IvlCounterSim {
    /// Allocates the `n` SWMR registers in `mem`.
    pub fn new(mem: &mut Memory, n: usize) -> Self {
        IvlCounterSim {
            regs: mem.alloc_swmr_array(n),
            local: vec![0; n],
        }
    }
}

impl SimObject for IvlCounterSim {
    fn box_clone(&self) -> Box<dyn SimObject> {
        Box::new(self.clone())
    }

    fn begin_op(&mut self, process: ProcessId, op: &SimOp) -> Box<dyn OpMachine> {
        let pi = process.0 as usize;
        match op {
            SimOp::Update(v) => {
                self.local[pi] += v;
                Box::new(UpdateMachine {
                    reg: self.regs[pi],
                    value: self.local[pi],
                })
            }
            SimOp::Query(_) => Box::new(ReadMachine {
                regs: self.regs.clone(),
                next: 0,
                sum: 0,
            }),
        }
    }

    fn num_processes(&self) -> usize {
        self.regs.len()
    }
}

/// `update_i(v)`: one write of the new per-process sum.
#[derive(Clone, Debug)]
struct UpdateMachine {
    reg: RegisterId,
    value: u64,
}

impl OpMachine for UpdateMachine {
    fn box_clone(&self) -> Box<dyn OpMachine> {
        Box::new(self.clone())
    }

    fn step(&mut self, ctx: &mut MemCtx<'_>) -> StepStatus {
        ctx.write(self.reg, RegValue::Int(self.value));
        StepStatus::Done(None)
    }
}

/// `read()`: collect all registers, one per step, then return the sum.
#[derive(Clone, Debug)]
struct ReadMachine {
    regs: Vec<RegisterId>,
    next: usize,
    sum: u64,
}

impl OpMachine for ReadMachine {
    fn box_clone(&self) -> Box<dyn OpMachine> {
        Box::new(self.clone())
    }

    fn step(&mut self, ctx: &mut MemCtx<'_>) -> StepStatus {
        self.sum += ctx.read(self.regs[self.next]).as_int();
        self.next += 1;
        if self.next == self.regs.len() {
            StepStatus::Done(Some(self.sum))
        } else {
            StepStatus::Running
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{Executor, SimCounterSpec, Workload};
    use crate::scheduler::{RandomScheduler, RoundRobinScheduler};
    use ivl_spec::check_ivl_monotone;

    #[test]
    fn sequential_read_sums_updates() {
        let mut mem = Memory::new();
        let obj = IvlCounterSim::new(&mut mem, 2);
        let workloads = vec![
            Workload {
                ops: vec![SimOp::Update(3), SimOp::Update(4)],
            },
            Workload {
                ops: vec![SimOp::Query(0)],
            },
        ];
        // Round-robin: p0 and p1 interleave; but each update is a
        // single step, so the final read (if last) sees everything.
        let mut exec = Executor::new(mem, Box::new(obj), workloads, RoundRobinScheduler::new());
        let result = exec.run();
        assert!(check_ivl_monotone(&SimCounterSpec, &result.history).is_ivl());
    }

    #[test]
    fn update_takes_one_step_read_takes_n() {
        for n in [2usize, 4, 8, 16] {
            let mut mem = Memory::new();
            let obj = IvlCounterSim::new(&mut mem, n);
            let mut workloads = vec![Workload::updates(3, 5); n];
            workloads[0] = Workload {
                ops: vec![SimOp::Query(0), SimOp::Query(0)],
            };
            let mut exec = Executor::new(
                mem,
                Box::new(obj),
                workloads,
                RandomScheduler::new(n as u64),
            );
            let result = exec.run();
            assert_eq!(result.mean_update_steps(), 1.0, "update is O(1)");
            assert_eq!(result.mean_query_steps(), n as f64, "read is O(n)");
        }
    }

    #[test]
    fn random_schedules_are_ivl() {
        for seed in 0..50 {
            let mut mem = Memory::new();
            let n = 4;
            let obj = IvlCounterSim::new(&mut mem, n);
            let mut workloads = vec![Workload::updates(4, 2); n];
            workloads[1] = Workload {
                ops: vec![
                    SimOp::Query(0),
                    SimOp::Update(7),
                    SimOp::Query(0),
                    SimOp::Query(0),
                ],
            };
            let mut exec = Executor::new(mem, Box::new(obj), workloads, RandomScheduler::new(seed));
            let result = exec.run();
            assert!(
                check_ivl_monotone(&SimCounterSpec, &result.history).is_ivl(),
                "seed {seed} violated IVL"
            );
        }
    }

    #[test]
    fn figure2_like_intermediate_read() {
        // p0 updates 7, p1 updates 3, p2 reads concurrently with a
        // schedule that lets the read see p1's update but start before
        // p0's completes: the IVL counter may return any of 0/3/7/10.
        let mut mem = Memory::new();
        let obj = IvlCounterSim::new(&mut mem, 3);
        let workloads = vec![
            Workload::updates(1, 7),
            Workload::updates(1, 3),
            Workload::queries(1, 0),
        ];
        // Schedule: p2 reads r0 (0), then p0 writes, p1 writes, then p2
        // reads r1 (3) and r2 (0) -> returns 3, an intermediate value.
        let script = vec![2, 0, 1, 2, 2];
        let mut exec = Executor::new(
            mem,
            Box::new(obj),
            workloads,
            crate::scheduler::FixedScheduler::new(script),
        );
        let result = exec.run();
        let ops = result.history.operations();
        let read = ops.iter().find(|o| o.op.is_query()).unwrap();
        assert_eq!(read.return_value, Some(3), "read returned 3 = 0 + 3");
        assert!(check_ivl_monotone(&SimCounterSpec, &result.history).is_ivl());
    }
}
