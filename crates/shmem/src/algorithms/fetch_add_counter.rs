//! A linearizable batched counter from a single RMW register — the
//! step-model witness that Theorem 14's Ω(n) bound is specific to
//! **SWMR registers**.
//!
//! With a `fetch_add` primitive (one step, read-modify-write), a
//! linearizable batched counter costs O(1) per update and O(1) per
//! read. Nothing contradicts the paper: the lower bound's reduction
//! needs the snapshot lower bound of Israeli–Shirazi, which holds for
//! (single- and multi-writer) *registers*, not for stronger RMW
//! primitives. Comparing this object's step counts with the
//! register-only constructions completes the E1/E2 table.

use crate::executor::{SimObject, SimOp};
use crate::machine::{MemCtx, OpMachine, StepStatus};
use crate::register::{Memory, RegisterId};
use ivl_spec::ProcessId;

/// The simulated fetch-add counter.
#[derive(Clone, Debug)]
pub struct FetchAddCounterSim {
    processes: usize,
    total: RegisterId,
}

impl FetchAddCounterSim {
    /// Allocates the single shared MWMR register in `mem`.
    pub fn new(mem: &mut Memory, processes: usize) -> Self {
        FetchAddCounterSim {
            processes,
            total: mem.alloc(None),
        }
    }
}

impl SimObject for FetchAddCounterSim {
    fn box_clone(&self) -> Box<dyn SimObject> {
        Box::new(self.clone())
    }

    fn begin_op(&mut self, _process: ProcessId, op: &SimOp) -> Box<dyn OpMachine> {
        match op {
            SimOp::Update(v) => Box::new(UpdateMachine {
                total: self.total,
                v: *v,
            }),
            SimOp::Query(_) => Box::new(ReadMachine { total: self.total }),
        }
    }

    fn num_processes(&self) -> usize {
        self.processes
    }
}

/// `update(v)`: one `fetch_add` step.
#[derive(Clone, Debug)]
struct UpdateMachine {
    total: RegisterId,
    v: u64,
}

impl OpMachine for UpdateMachine {
    fn box_clone(&self) -> Box<dyn OpMachine> {
        Box::new(self.clone())
    }

    fn step(&mut self, ctx: &mut MemCtx<'_>) -> StepStatus {
        ctx.fetch_add(self.total, self.v);
        StepStatus::Done(None)
    }
}

/// `read()`: one read step.
#[derive(Clone, Debug)]
struct ReadMachine {
    total: RegisterId,
}

impl OpMachine for ReadMachine {
    fn box_clone(&self) -> Box<dyn OpMachine> {
        Box::new(self.clone())
    }

    fn step(&mut self, ctx: &mut MemCtx<'_>) -> StepStatus {
        StepStatus::Done(Some(ctx.read(self.total).as_int()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{Executor, SimCounterSpec, Workload};
    use crate::scheduler::RandomScheduler;
    use ivl_spec::linearize::check_linearizable;

    #[test]
    fn always_linearizable_at_one_step_each() {
        for seed in 0..30 {
            let n = 3;
            let mut mem = Memory::new();
            let obj = FetchAddCounterSim::new(&mut mem, n);
            let workloads = vec![
                Workload {
                    ops: vec![SimOp::Update(1), SimOp::Update(2)],
                },
                Workload {
                    ops: vec![SimOp::Query(0), SimOp::Query(0)],
                },
                Workload {
                    ops: vec![SimOp::Update(4)],
                },
            ];
            let mut exec = Executor::new(mem, Box::new(obj), workloads, RandomScheduler::new(seed));
            let result = exec.run();
            assert!(
                check_linearizable(&[SimCounterSpec], &result.history).is_linearizable(),
                "seed {seed}"
            );
            for stat in &result.stats {
                assert_eq!(stat.steps, 1, "every operation is one RMW/read step");
            }
        }
    }

    #[test]
    fn update_cost_independent_of_n() {
        for n in [2usize, 16, 128] {
            let mut mem = Memory::new();
            let obj = FetchAddCounterSim::new(&mut mem, n);
            let workloads = vec![Workload::updates(3, 1); n];
            let mut exec = Executor::new(mem, Box::new(obj), workloads, RandomScheduler::new(1));
            let result = exec.run();
            assert_eq!(result.mean_update_steps(), 1.0, "n={n}");
        }
    }
}
