//! The §3.4 non-monotone object in the step model: a per-slot
//! increment/decrement counter whose reads scan the slots — the signed
//! twin of Algorithm 2.
//!
//! Purpose: let the **exhaustive explorer** *discover* the paper's
//! §3.4 counterexample mechanically. For the monotone batched counter,
//! every schedule's history is IVL (verified exhaustively); for this
//! object, the explorer finds schedules whose histories the exact IVL
//! checker rejects — seeing only a decrement puts the read below every
//! linearization value.
//!
//! Signed deltas ride in the executor's `u64` update arguments as
//! two's complement (`delta as u64`); [`IncDecSimSpec`] decodes them.
//! Query return values are encoded the same way (`sum as u64`), and
//! `IncDecSimSpec::Value` keeps the encoded form ordered by the
//! *signed* value via an offset.

use crate::executor::{SimObject, SimOp};
use crate::machine::{MemCtx, OpMachine, StepStatus};
use crate::register::{Memory, RegValue, RegisterId};
use ivl_spec::spec::ObjectSpec;
use ivl_spec::ProcessId;

/// Encodes a signed value into the order-preserving `u64` used in
/// simulator histories (offset encoding: `i64::MIN ↦ 0`).
pub fn encode_signed(v: i64) -> u64 {
    (v as u64) ^ (1 << 63)
}

/// Inverse of [`encode_signed`].
pub fn decode_signed(v: u64) -> i64 {
    (v ^ (1 << 63)) as i64
}

/// The simulated per-slot inc/dec counter.
#[derive(Clone, Debug)]
pub struct IncDecCounterSim {
    regs: Vec<RegisterId>,
    local: Vec<i64>,
}

impl IncDecCounterSim {
    /// Allocates `n` SWMR registers in `mem`.
    pub fn new(mem: &mut Memory, n: usize) -> Self {
        IncDecCounterSim {
            regs: mem.alloc_swmr_array(n),
            local: vec![0; n],
        }
    }
}

impl SimObject for IncDecCounterSim {
    fn box_clone(&self) -> Box<dyn SimObject> {
        Box::new(self.clone())
    }

    fn begin_op(&mut self, process: ProcessId, op: &SimOp) -> Box<dyn OpMachine> {
        let pi = process.0 as usize;
        match op {
            SimOp::Update(enc) => {
                self.local[pi] += decode_signed(*enc);
                Box::new(UpdateMachine {
                    reg: self.regs[pi],
                    value: self.local[pi],
                })
            }
            SimOp::Query(_) => Box::new(ReadMachine {
                regs: self.regs.clone(),
                next: 0,
                sum: 0,
            }),
        }
    }

    fn num_processes(&self) -> usize {
        self.regs.len()
    }
}

#[derive(Clone, Debug)]
struct UpdateMachine {
    reg: RegisterId,
    value: i64,
}

impl OpMachine for UpdateMachine {
    fn box_clone(&self) -> Box<dyn OpMachine> {
        Box::new(self.clone())
    }

    fn step(&mut self, ctx: &mut MemCtx<'_>) -> StepStatus {
        ctx.write(self.reg, RegValue::Int(self.value as u64));
        StepStatus::Done(None)
    }
}

#[derive(Clone, Debug)]
struct ReadMachine {
    regs: Vec<RegisterId>,
    next: usize,
    sum: i64,
}

impl OpMachine for ReadMachine {
    fn box_clone(&self) -> Box<dyn OpMachine> {
        Box::new(self.clone())
    }

    fn step(&mut self, ctx: &mut MemCtx<'_>) -> StepStatus {
        self.sum += ctx.read(self.regs[self.next]).as_int() as i64;
        self.next += 1;
        if self.next == self.regs.len() {
            StepStatus::Done(Some(encode_signed(self.sum)))
        } else {
            StepStatus::Running
        }
    }
}

/// Sequential inc/dec spec over the simulator's encoded values.
/// Deliberately **not** [`ivl_spec::spec::MonotoneSpec`]: the interval
/// fast path is unsound here; use the exact checker.
#[derive(Clone, Copy, Default, Debug)]
pub struct IncDecSimSpec;

impl ObjectSpec for IncDecSimSpec {
    type Update = u64;
    type Query = u64;
    type Value = u64;
    type State = i64;

    fn initial_state(&self) -> i64 {
        0
    }

    fn apply_update(&self, state: &mut i64, update: &u64) {
        *state += decode_signed(*update);
    }

    fn eval_query(&self, state: &i64, _query: &u64) -> u64 {
        encode_signed(*state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Workload;
    use crate::exhaustive::explore_all_schedules;
    use ivl_spec::ivl::check_ivl_exact;
    use ivl_spec::linearize::check_linearizable;

    #[test]
    fn encoding_roundtrips_and_orders() {
        for v in [-5i64, -1, 0, 1, 42, i64::MIN / 2, i64::MAX / 2] {
            assert_eq!(decode_signed(encode_signed(v)), v);
        }
        assert!(encode_signed(-1) < encode_signed(0));
        assert!(encode_signed(0) < encode_signed(1));
    }

    #[test]
    fn sequential_signed_sums() {
        let mut mem = Memory::new();
        let obj = IncDecCounterSim::new(&mut mem, 2);
        let workloads = vec![
            Workload {
                ops: vec![
                    SimOp::Update(encode_signed(5)),
                    SimOp::Update(encode_signed(-3)),
                ],
            },
            Workload {
                ops: vec![SimOp::Query(0)],
            },
        ];
        let script: Vec<usize> = vec![0, 0, 1, 1];
        let mut exec = crate::executor::Executor::new(
            mem,
            Box::new(obj),
            workloads,
            crate::scheduler::FixedScheduler::new(script),
        );
        let result = exec.run();
        let q = result
            .history
            .operations()
            .into_iter()
            .find(|o| o.op.is_query())
            .unwrap();
        assert_eq!(q.return_value.map(decode_signed), Some(2));
    }

    /// The model checker *discovers* the §3.4 counterexample: some
    /// schedule of inc(+1); dec(−1) with a concurrent scan produces a
    /// history the exact IVL checker rejects — while every schedule
    /// remains regular-like (each register read is individually
    /// fresh-or-concurrent).
    #[test]
    fn explorer_discovers_section_3_4_violation() {
        let config = || {
            let mut mem = Memory::new();
            let obj = IncDecCounterSim::new(&mut mem, 3);
            let w = vec![
                Workload {
                    ops: vec![SimOp::Update(encode_signed(1))],
                },
                Workload {
                    ops: vec![SimOp::Update(encode_signed(-1))],
                },
                Workload {
                    ops: vec![SimOp::Query(0)],
                },
            ];
            (mem, Box::new(obj) as Box<dyn crate::executor::SimObject>, w)
        };
        let spec = IncDecSimSpec;
        let mut violations = Vec::new();
        let mut linearizable = 0u64;
        let stats = explore_all_schedules(&config, 1_000_000, |sched, result| {
            if !check_ivl_exact(std::slice::from_ref(&spec), &result.history).is_ivl() {
                violations.push(sched.to_vec());
            }
            if check_linearizable(std::slice::from_ref(&spec), &result.history).is_linearizable() {
                linearizable += 1;
            }
        });
        assert!(!stats.truncated);
        assert!(
            !violations.is_empty(),
            "the explorer must find the §3.4 violation among {} schedules",
            stats.schedules
        );
        assert!(linearizable > 0, "most schedules are fine");
        // Sanity on one witness: the scan must read p0's slot before
        // its increment and p1's slot after its decrement.
        // (The full schedule set is machine-found; we just confirm the
        // count is small relative to the space.)
        assert!(
            (violations.len() as u64) < stats.schedules / 2,
            "{} violations / {} schedules",
            violations.len(),
            stats.schedules
        );
    }

    /// The monotone twin of the discovery test: the same shape with
    /// only increments has NO violating schedule (exhaustive Lemma 10
    /// again, as a control).
    #[test]
    fn monotone_control_has_no_violations() {
        let config = || {
            let mut mem = Memory::new();
            let obj = IncDecCounterSim::new(&mut mem, 3);
            let w = vec![
                Workload {
                    ops: vec![SimOp::Update(encode_signed(1))],
                },
                Workload {
                    ops: vec![SimOp::Update(encode_signed(2))],
                },
                Workload {
                    ops: vec![SimOp::Query(0)],
                },
            ];
            (mem, Box::new(obj) as Box<dyn crate::executor::SimObject>, w)
        };
        let spec = IncDecSimSpec;
        let stats = explore_all_schedules(&config, 1_000_000, |sched, result| {
            assert!(
                check_ivl_exact(std::slice::from_ref(&spec), &result.history).is_ivl(),
                "increment-only schedule {sched:?} cannot violate IVL"
            );
        });
        assert!(!stats.truncated);
    }
}
