//! Operations as explicit step machines.
//!
//! An operation in the model is a sequence of *steps*, each accessing
//! at most one shared variable plus arbitrary local computation
//! (paper §2.1). An [`OpMachine`] is the explicit state-machine form of
//! one in-flight operation: the executor calls [`OpMachine::step`] once
//! per scheduled step, handing it a [`MemCtx`] that permits **at most
//! one** shared access — a second access within the same step panics,
//! so the step accounting cannot silently drift from the model.
//!
//! Every access is additionally recorded as an [`Access`] footprint
//! (register + kind). The footprints are what make steps *analyzable*:
//! the DPOR explorer derives its independence relation from them (two
//! steps commute unless they touch the same register with a write
//! involved), and the happens-before analyzer in `ivl-analyzer` runs
//! its vector-clock pass over them.

use crate::register::{Memory, RegValue, RegisterId};
use ivl_spec::ProcessId;

/// How a step touched a register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// An atomic read.
    Read,
    /// An atomic write.
    Write,
    /// An atomic read-modify-write (`fetch_add`), which both reads and
    /// writes in one step.
    Rmw,
}

impl AccessKind {
    /// Whether the access mutates the register.
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write | AccessKind::Rmw)
    }

    /// Whether the access observes the register's prior value.
    pub fn is_read(self) -> bool {
        matches!(self, AccessKind::Read | AccessKind::Rmw)
    }
}

/// One shared-memory access performed by a step: the footprint the
/// explorer and analyzer reason about.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Access {
    /// The register touched.
    pub reg: RegisterId,
    /// Read, write, or RMW.
    pub kind: AccessKind,
}

impl Access {
    /// Whether two accesses conflict: same register with at least one
    /// writer. Conflicting accesses do not commute; this is the memory
    /// half of the DPOR dependence relation.
    pub fn conflicts_with(&self, other: &Access) -> bool {
        self.reg == other.reg && (self.kind.is_write() || other.kind.is_write())
    }
}

/// Per-step capability to access shared memory at most once.
///
/// In the default *strict* mode a second access within one step panics
/// (the model's uniform-step-complexity discipline). The analyzer runs
/// machines in *lenient* mode instead, where extra accesses are
/// recorded rather than fatal, so a deliberately broken machine can be
/// executed to completion and its violation *reported* with a
/// replayable schedule (see `ivl-analyzer`).
#[derive(Debug)]
pub struct MemCtx<'a> {
    mem: &'a mut Memory,
    process: ProcessId,
    accesses: Vec<Access>,
    strict: bool,
}

impl<'a> MemCtx<'a> {
    /// Creates a strict context for one step of `process`.
    pub fn new(mem: &'a mut Memory, process: ProcessId) -> Self {
        MemCtx {
            mem,
            process,
            accesses: Vec::new(),
            strict: true,
        }
    }

    /// Creates a lenient context: extra accesses within the step are
    /// recorded in the footprint instead of panicking.
    pub fn new_lenient(mem: &'a mut Memory, process: ProcessId) -> Self {
        MemCtx {
            mem,
            process,
            accesses: Vec::new(),
            strict: false,
        }
    }

    fn claim_access(&mut self, access: Access) {
        assert!(
            !self.strict || self.accesses.is_empty(),
            "a step may perform at most one shared-memory access"
        );
        self.accesses.push(access);
    }

    /// Atomically reads register `r` (consumes this step's access).
    pub fn read(&mut self, r: RegisterId) -> RegValue {
        self.claim_access(Access {
            reg: r,
            kind: AccessKind::Read,
        });
        self.mem.read(r)
    }

    /// Atomically writes register `r` (consumes this step's access).
    ///
    /// # Panics
    ///
    /// Panics on SWMR ownership violation, unless the memory's
    /// ownership enforcement is disabled (analyzer mode).
    pub fn write(&mut self, r: RegisterId, value: RegValue) {
        self.claim_access(Access {
            reg: r,
            kind: AccessKind::Write,
        });
        self.mem.write(r, self.process, value);
    }

    /// Atomically adds `delta` to register `r`, returning the previous
    /// value (consumes this step's access). RMW primitive — see
    /// [`Memory::fetch_add`].
    ///
    /// # Panics
    ///
    /// Panics on SWMR registers (unless enforcement is disabled) or
    /// non-`Int` contents.
    pub fn fetch_add(&mut self, r: RegisterId, delta: u64) -> u64 {
        self.claim_access(Access {
            reg: r,
            kind: AccessKind::Rmw,
        });
        self.mem.fetch_add(r, delta)
    }

    /// The process executing this step.
    pub fn process(&self) -> ProcessId {
        self.process
    }

    /// Whether this step performed its shared access.
    pub fn access_used(&self) -> bool {
        !self.accesses.is_empty()
    }

    /// The accesses performed so far in this step (at most one in
    /// strict mode).
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// Consumes the context, yielding the step's access footprint.
    pub fn into_accesses(self) -> Vec<Access> {
        self.accesses
    }
}

/// Outcome of one step of an operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepStatus {
    /// The operation needs more steps.
    Running,
    /// The operation completed; queries carry their return value,
    /// updates carry `None`.
    Done(Option<u64>),
}

/// One in-flight operation as an explicit state machine.
///
/// Implementations must be *bounded wait-free*: `step` must report
/// `Done` within a bounded number of calls regardless of other
/// processes' progress (the paper assumes bounded wait-freedom
/// throughout, §3.1). The executor enforces a generous hard cap as a
/// backstop.
///
/// Machines must also be cloneable via [`OpMachine::box_clone`]: the
/// exhaustive explorers snapshot mid-operation machine state to branch
/// the schedule tree without replaying prefixes from scratch.
pub trait OpMachine {
    /// Executes one step: at most one shared access via `ctx`, plus
    /// local computation.
    fn step(&mut self, ctx: &mut MemCtx<'_>) -> StepStatus;

    /// Clones the machine's state behind a fresh box (mid-operation
    /// snapshotting for schedule exploration).
    fn box_clone(&self) -> Box<dyn OpMachine>;
}

impl Clone for Box<dyn OpMachine> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at most one shared-memory access")]
    fn second_access_in_one_step_panics() {
        let mut mem = Memory::new();
        let r = mem.alloc(Some(ProcessId(0)));
        let mut ctx = MemCtx::new(&mut mem, ProcessId(0));
        let _ = ctx.read(r);
        let _ = ctx.read(r);
    }

    #[test]
    fn single_access_ok() {
        let mut mem = Memory::new();
        let r = mem.alloc(Some(ProcessId(0)));
        let mut ctx = MemCtx::new(&mut mem, ProcessId(0));
        ctx.write(r, RegValue::Int(3));
        assert!(ctx.access_used());
        assert_eq!(
            ctx.accesses(),
            &[Access {
                reg: r,
                kind: AccessKind::Write
            }]
        );
    }

    #[test]
    fn lenient_context_records_double_access() {
        let mut mem = Memory::new();
        let r = mem.alloc(Some(ProcessId(0)));
        let mut ctx = MemCtx::new_lenient(&mut mem, ProcessId(0));
        let _ = ctx.read(r);
        let _ = ctx.read(r);
        assert_eq!(ctx.accesses().len(), 2);
    }

    #[test]
    fn conflict_relation_is_write_centric() {
        let a = |reg, kind| Access {
            reg: RegisterId(reg),
            kind,
        };
        assert!(!a(0, AccessKind::Read).conflicts_with(&a(0, AccessKind::Read)));
        assert!(a(0, AccessKind::Read).conflicts_with(&a(0, AccessKind::Write)));
        assert!(a(0, AccessKind::Rmw).conflicts_with(&a(0, AccessKind::Rmw)));
        assert!(!a(0, AccessKind::Write).conflicts_with(&a(1, AccessKind::Write)));
    }
}
