//! Operations as explicit step machines.
//!
//! An operation in the model is a sequence of *steps*, each accessing
//! at most one shared variable plus arbitrary local computation
//! (paper §2.1). An [`OpMachine`] is the explicit state-machine form of
//! one in-flight operation: the executor calls [`OpMachine::step`] once
//! per scheduled step, handing it a [`MemCtx`] that permits **at most
//! one** shared access — a second access within the same step panics,
//! so the step accounting cannot silently drift from the model.

use crate::register::{Memory, RegValue, RegisterId};
use ivl_spec::ProcessId;

/// Per-step capability to access shared memory at most once.
#[derive(Debug)]
pub struct MemCtx<'a> {
    mem: &'a mut Memory,
    process: ProcessId,
    accessed: bool,
}

impl<'a> MemCtx<'a> {
    /// Creates a context for one step of `process`.
    pub fn new(mem: &'a mut Memory, process: ProcessId) -> Self {
        MemCtx {
            mem,
            process,
            accessed: false,
        }
    }

    fn claim_access(&mut self) {
        assert!(
            !self.accessed,
            "a step may perform at most one shared-memory access"
        );
        self.accessed = true;
    }

    /// Atomically reads register `r` (consumes this step's access).
    pub fn read(&mut self, r: RegisterId) -> RegValue {
        self.claim_access();
        self.mem.read(r)
    }

    /// Atomically writes register `r` (consumes this step's access).
    ///
    /// # Panics
    ///
    /// Panics on SWMR ownership violation.
    pub fn write(&mut self, r: RegisterId, value: RegValue) {
        self.claim_access();
        self.mem.write(r, self.process, value);
    }

    /// Atomically adds `delta` to register `r`, returning the previous
    /// value (consumes this step's access). RMW primitive — see
    /// [`Memory::fetch_add`].
    ///
    /// # Panics
    ///
    /// Panics on SWMR registers or non-`Int` contents.
    pub fn fetch_add(&mut self, r: RegisterId, delta: u64) -> u64 {
        self.claim_access();
        self.mem.fetch_add(r, delta)
    }

    /// The process executing this step.
    pub fn process(&self) -> ProcessId {
        self.process
    }

    /// Whether this step performed its shared access.
    pub fn access_used(&self) -> bool {
        self.accessed
    }
}

/// Outcome of one step of an operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepStatus {
    /// The operation needs more steps.
    Running,
    /// The operation completed; queries carry their return value,
    /// updates carry `None`.
    Done(Option<u64>),
}

/// One in-flight operation as an explicit state machine.
///
/// Implementations must be *bounded wait-free*: `step` must report
/// `Done` within a bounded number of calls regardless of other
/// processes' progress (the paper assumes bounded wait-freedom
/// throughout, §3.1). The executor enforces a generous hard cap as a
/// backstop.
pub trait OpMachine {
    /// Executes one step: at most one shared access via `ctx`, plus
    /// local computation.
    fn step(&mut self, ctx: &mut MemCtx<'_>) -> StepStatus;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at most one shared-memory access")]
    fn second_access_in_one_step_panics() {
        let mut mem = Memory::new();
        let r = mem.alloc(Some(ProcessId(0)));
        let mut ctx = MemCtx::new(&mut mem, ProcessId(0));
        let _ = ctx.read(r);
        let _ = ctx.read(r);
    }

    #[test]
    fn single_access_ok() {
        let mut mem = Memory::new();
        let r = mem.alloc(Some(ProcessId(0)));
        let mut ctx = MemCtx::new(&mut mem, ProcessId(0));
        ctx.write(r, RegValue::Int(3));
        assert!(ctx.access_used());
    }
}
