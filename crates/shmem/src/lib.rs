//! Deterministic shared-memory simulator for step-complexity
//! experiments.
//!
//! The complexity results of the paper (Theorem 11: the IVL batched
//! counter does `update` in O(1) and `read` in O(n) steps; Theorem 14:
//! any wait-free *linearizable* batched counter from SWMR registers
//! needs Ω(n) steps per `update`) are statements about *shared-memory
//! steps* in the standard asynchronous model — not about wall-clock
//! time. This crate executes the paper's algorithms in exactly that
//! model and counts steps, so the claims can be checked in their own
//! cost model:
//!
//! * [`register`] — a memory of atomic registers with single-writer
//!   (SWMR) ownership enforcement; every read or write of a shared
//!   register is one *step*.
//! * [`machine`] — operations as explicit step machines performing at
//!   most one shared-memory access per step (uniform step complexity,
//!   paper §3.1).
//! * [`scheduler`] — round-robin, seeded-random, and fixed (replay)
//!   schedulers; the executor is deterministic given a scheduler, per
//!   the deterministic-algorithm model of §2.1.
//! * [`executor`] — drives per-process workloads, records the resulting
//!   [`ivl_spec::History`] and per-operation step counts.
//! * [`algorithms`] — the paper's constructions: the IVL batched
//!   counter (Algorithm 2), a linearizable batched counter built from a
//!   wait-free atomic snapshot (Afek et al.-style, the standard
//!   SWMR-register construction, whose update cost is ≥ n+1 steps —
//!   matching the Ω(n) lower bound), and the binary-snapshot reduction
//!   (Algorithm 3).
//! * [`experiments`] — parameter sweeps producing the step-count tables
//!   reported in EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod algorithms;
pub mod executor;
pub mod exhaustive;
pub mod experiments;
pub mod machine;
pub mod register;
pub mod scheduler;

pub use executor::{Executor, OpStat, RunResult, SimOp, StepRecord, Workload};
pub use exhaustive::{
    count_schedules, explore_all_schedules, explore_dpor, history_fingerprint, DporStats,
    ExplorationStats,
};
pub use machine::{Access, AccessKind, MemCtx, OpMachine, StepStatus};
pub use register::{Memory, RegValue, RegisterId};
pub use scheduler::{
    BiasedScheduler, FixedScheduler, RandomScheduler, RecordingScheduler, RoundRobinScheduler,
    Scheduler,
};
