//! Exhaustive schedule exploration: bounded model checking of the
//! simulated algorithms.
//!
//! The random-scheduler experiments sample the schedule space; this
//! module enumerates it **completely** for small configurations, so
//! the paper's per-schedule claims (Lemma 7: *every* PCM history is
//! IVL; Lemma 10: *every* Algorithm 2 history is IVL; the snapshot
//! counter linearizes on *every* schedule) are verified with the
//! coverage of a model checker rather than a fuzzer, and the exact
//! number of non-linearizable schedules becomes a measurable quantity
//! (experiment E7-exact).
//!
//! Implementation: depth-first search over schedule prefixes. The
//! simulator is deterministic given a schedule, so a prefix is
//! re-executed from scratch with a [`FixedScheduler`] to discover the
//! runnable set at its frontier (O(len) per node — no state cloning,
//! no unsafe snapshotting; total cost O(paths · len²), fine for the
//! ≤ 20-step instances this is meant for).

use crate::executor::{Executor, RunResult, SimObject, Workload};
use crate::register::Memory;
use crate::scheduler::FixedScheduler;

/// Everything needed to replay one configuration from scratch.
pub trait Configuration {
    /// Builds a fresh memory + object + workloads triple.
    fn build(&self) -> (Memory, Box<dyn SimObject>, Vec<Workload>);
}

impl<F> Configuration for F
where
    F: Fn() -> (Memory, Box<dyn SimObject>, Vec<Workload>),
{
    fn build(&self) -> (Memory, Box<dyn SimObject>, Vec<Workload>) {
        self()
    }
}

/// Summary of an exhaustive exploration.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExplorationStats {
    /// Complete schedules explored.
    pub schedules: u64,
    /// Total scheduling turns across all replays (cost metric).
    pub replay_turns: u64,
    /// Whether exploration stopped early at the schedule cap.
    pub truncated: bool,
}

/// Enumerates **every** maximal schedule of `config` (up to
/// `max_schedules`), invoking `visit(schedule, result)` on each
/// completed execution.
///
/// # Examples
///
/// Verify Lemma 10 on *every* interleaving of a tiny instance:
///
/// ```
/// use ivl_shmem::algorithms::IvlCounterSim;
/// use ivl_shmem::executor::{SimCounterSpec, SimObject};
/// use ivl_shmem::{explore_all_schedules, Memory, SimOp, Workload};
/// use ivl_spec::check_ivl_monotone;
///
/// let config = || {
///     let mut mem = Memory::new();
///     let obj = IvlCounterSim::new(&mut mem, 2);
///     let w = vec![
///         Workload { ops: vec![SimOp::Update(5)] },
///         Workload { ops: vec![SimOp::Query(0)] },
///     ];
///     (mem, Box::new(obj) as Box<dyn SimObject>, w)
/// };
/// let stats = explore_all_schedules(&config, 1_000, |schedule, result| {
///     assert!(check_ivl_monotone(&SimCounterSpec, &result.history).is_ivl(),
///             "{schedule:?}");
/// });
/// assert_eq!(stats.schedules, 3); // C(3,1): one 1-step op vs one 2-step op
/// ```
///
/// # Panics
///
/// Propagates panics from the simulated algorithms and from `visit`.
pub fn explore_all_schedules<C: Configuration>(
    config: &C,
    max_schedules: u64,
    mut visit: impl FnMut(&[usize], &RunResult),
) -> ExplorationStats {
    let mut stats = ExplorationStats::default();
    let mut prefix: Vec<usize> = Vec::new();
    dfs(config, &mut prefix, &mut stats, max_schedules, &mut visit);
    stats
}

fn dfs<C: Configuration>(
    config: &C,
    prefix: &mut Vec<usize>,
    stats: &mut ExplorationStats,
    max_schedules: u64,
    visit: &mut impl FnMut(&[usize], &RunResult),
) {
    if stats.schedules >= max_schedules {
        stats.truncated = true;
        return;
    }
    // Replay the prefix to find the frontier.
    let (mem, obj, workloads) = config.build();
    let mut exec = Executor::new(mem, obj, workloads, FixedScheduler::new(prefix.clone()));
    let result = exec.run_bounded(prefix.len() as u64);
    stats.replay_turns += prefix.len() as u64;
    let runnable = exec.runnable();
    if runnable.is_empty() {
        stats.schedules += 1;
        visit(prefix, &result);
        return;
    }
    for p in runnable {
        prefix.push(p);
        dfs(config, prefix, stats, max_schedules, visit);
        prefix.pop();
        if stats.truncated {
            return;
        }
    }
}

/// Counts the maximal schedules of `config` without visiting
/// (convenience for sizing a configuration before asserting on it).
pub fn count_schedules<C: Configuration>(config: &C, max_schedules: u64) -> ExplorationStats {
    explore_all_schedules(config, max_schedules, |_, _| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{example9_hash, IvlCounterSim, PcmSim, SnapshotCounterSim};
    use crate::executor::{SimCounterSpec, SimOp};
    use ivl_spec::check_ivl_monotone;
    use ivl_spec::linearize::check_linearizable;

    #[test]
    fn schedule_count_matches_interleaving_math() {
        // Two processes, one single-step update each: exactly C(2,1)=2
        // interleavings.
        let config = || {
            let mut mem = Memory::new();
            let obj = IvlCounterSim::new(&mut mem, 2);
            let w = vec![
                Workload {
                    ops: vec![SimOp::Update(1)],
                },
                Workload {
                    ops: vec![SimOp::Update(2)],
                },
            ];
            (mem, Box::new(obj) as Box<dyn SimObject>, w)
        };
        let stats = count_schedules(&config, 1_000);
        assert_eq!(stats.schedules, 2);
        assert!(!stats.truncated);

        // One 1-step update vs one 2-step read: C(3,1) = 3.
        let config = || {
            let mut mem = Memory::new();
            let obj = IvlCounterSim::new(&mut mem, 2);
            let w = vec![
                Workload {
                    ops: vec![SimOp::Update(1)],
                },
                Workload {
                    ops: vec![SimOp::Query(0)],
                },
            ];
            (mem, Box::new(obj) as Box<dyn SimObject>, w)
        };
        assert_eq!(count_schedules(&config, 1_000).schedules, 3);
    }

    #[test]
    fn lemma_10_holds_on_every_schedule() {
        // 2 updaters (2 updates each) + 1 reader (1 read of 3 steps):
        // every single interleaving is IVL.
        let config = || {
            let mut mem = Memory::new();
            let obj = IvlCounterSim::new(&mut mem, 3);
            let w = vec![
                Workload {
                    ops: vec![SimOp::Update(1), SimOp::Update(2)],
                },
                Workload {
                    ops: vec![SimOp::Update(4)],
                },
                Workload {
                    ops: vec![SimOp::Query(0)],
                },
            ];
            (mem, Box::new(obj) as Box<dyn SimObject>, w)
        };
        let mut checked = 0u64;
        let stats = explore_all_schedules(&config, 100_000, |sched, result| {
            assert!(
                check_ivl_monotone(&SimCounterSpec, &result.history).is_ivl(),
                "schedule {sched:?} violated IVL"
            );
            checked += 1;
        });
        assert!(!stats.truncated, "exploration must be complete");
        assert_eq!(stats.schedules, checked);
        assert!(
            stats.schedules > 50,
            "non-trivial space: {}",
            stats.schedules
        );
    }

    #[test]
    fn snapshot_counter_linearizable_on_every_schedule() {
        // Tiny instance: 2 processes, one update (scan-embedded, ≥5
        // steps) and one read. Exhaustive — Afek correctness without
        // sampling gaps.
        let config = || {
            let mut mem = Memory::new();
            let obj = SnapshotCounterSim::new(&mut mem, 2);
            let w = vec![
                Workload {
                    ops: vec![SimOp::Update(3)],
                },
                Workload {
                    ops: vec![SimOp::Query(0)],
                },
            ];
            (mem, Box::new(obj) as Box<dyn SimObject>, w)
        };
        let stats = explore_all_schedules(&config, 1_000_000, |sched, result| {
            assert!(
                check_linearizable(&[SimCounterSpec], &result.history).is_linearizable(),
                "schedule {sched:?} broke the snapshot counter"
            );
        });
        assert!(!stats.truncated);
        assert!(stats.schedules > 100, "{}", stats.schedules);
    }

    #[test]
    fn example9_exact_violation_census() {
        // The minimal Example 9 configuration: seeds folded into one
        // update each; U(a) concurrent with Q(a);Q(b). Exhaustively
        // count the schedules whose history is not linearizable; every
        // one must still be IVL (Lemma 7, exhaustive flavour).
        let config = || {
            let mut mem = Memory::new();
            let obj = PcmSim::new(&mut mem, 2, 2, example9_hash());
            let spec_holder = obj.spec();
            let w = vec![
                Workload {
                    ops: vec![
                        SimOp::Update(2),
                        SimOp::Update(2),
                        SimOp::Update(2),
                        SimOp::Update(0),
                        SimOp::Update(1),
                        SimOp::Update(0), // U
                    ],
                },
                Workload {
                    ops: vec![SimOp::Query(0), SimOp::Query(1)],
                },
            ];
            let _ = spec_holder;
            (mem, Box::new(obj) as Box<dyn SimObject>, w)
        };
        // Rebuild a spec once (tables are deterministic).
        let spec = {
            let mut mem = Memory::new();
            PcmSim::new(&mut mem, 2, 2, example9_hash()).spec()
        };
        let mut nonlin = 0u64;
        let stats = explore_all_schedules(&config, 2_000_000, |sched, result| {
            assert!(
                check_ivl_monotone(&spec, &result.history).is_ivl(),
                "schedule {sched:?} violated IVL"
            );
            if !check_linearizable(std::slice::from_ref(&spec), &result.history).is_linearizable() {
                nonlin += 1;
            }
        });
        assert!(!stats.truncated, "space too large: {}", stats.schedules);
        assert!(nonlin > 0, "Example 9 violations must exist");
        assert!(nonlin < stats.schedules, "most schedules still linearize");
        println!(
            "example9 census: {} / {} schedules non-linearizable",
            nonlin, stats.schedules
        );
    }
}
