//! Exhaustive schedule exploration: bounded model checking of the
//! simulated algorithms.
//!
//! The random-scheduler experiments sample the schedule space; this
//! module enumerates it **completely** for small configurations, so
//! the paper's per-schedule claims (Lemma 7: *every* PCM history is
//! IVL; Lemma 10: *every* Algorithm 2 history is IVL; the snapshot
//! counter linearizes on *every* schedule) are verified with the
//! coverage of a model checker rather than a fuzzer, and the exact
//! number of non-linearizable schedules becomes a measurable quantity
//! (experiment E7-exact).
//!
//! Two explorers are provided:
//!
//! * [`explore_all_schedules`] — naive depth-first search over every
//!   maximal schedule. Because the [`Executor`] is [`Clone`], the
//!   search snapshots it at each branch point and extends by a single
//!   step per tree edge (incremental frontier discovery): the cost is
//!   O(nodes), not the O(paths · len²) of prefix re-execution.
//! * [`explore_dpor`] — dynamic partial-order reduction in the style
//!   of Flanagan–Godefroid (persistent/backtrack sets with sleep sets
//!   and clock vectors). It visits at least one representative of
//!   every Mazurkiewicz trace class instead of every interleaving,
//!   which pushes exact verification past the naive explorer's
//!   ~20-step ceiling.
//!
//! # Independence, and why histories survive the reduction
//!
//! Two steps of different processes are *independent* when swapping
//! them (a) leaves the final state unchanged and (b) leaves every
//! checked verdict unchanged. For (a) the classic shared-memory rule
//! applies: steps conflict iff they touch the same register and at
//! least one writes — the per-step [`Access`] footprints recorded by
//! [`crate::machine::MemCtx`] decide this exactly. But the properties
//! checked here (IVL, linearizability) are predicates over the
//! recorded *history*, and a history also carries the real-time
//! precedence order `≺_H`: swapping a response step past an
//! invocation step changes `≺_H` even when the two steps touch
//! disjoint registers. The dependence relation therefore also orders
//! *boundary* steps: a response-carrying step is dependent with every
//! other process's invocation-carrying step (and vice versa). Under
//! this relation every execution in one trace class yields the same
//! [`history_fingerprint`] — the same operations per process, the
//! same return values, the same precedence pairs — so checking one
//! representative checks the class. The differential tests below
//! assert exactly that against the naive explorer.
//!
//! A step's *register* footprint is determined by the machine's local
//! state, so a peeked footprint stays valid while the process does
//! not move. Whether the step will turn out to be its operation's
//! *last* step may depend on the value it reads (a snapshot scan
//! retires only when two collects agree), so for race detection the
//! explorer treats any read-performing step of an in-flight operation
//! as *potentially* response-carrying ([`Footprint::may_rsp`]) — a
//! sound over-approximation.

use std::collections::BTreeSet;

use crate::executor::{Executor, RunResult, SimObject, StepRecord, Workload};
use crate::machine::Access;
use crate::register::Memory;
use crate::scheduler::FixedScheduler;
use ivl_spec::history::{History, Op};

/// Everything needed to replay one configuration from scratch.
pub trait Configuration {
    /// Builds a fresh memory + object + workloads triple.
    fn build(&self) -> (Memory, Box<dyn SimObject>, Vec<Workload>);
}

impl<F> Configuration for F
where
    F: Fn() -> (Memory, Box<dyn SimObject>, Vec<Workload>),
{
    fn build(&self) -> (Memory, Box<dyn SimObject>, Vec<Workload>) {
        self()
    }
}

/// Summary of an exhaustive exploration.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExplorationStats {
    /// Complete schedules explored.
    pub schedules: u64,
    /// Simulator steps executed across the whole search tree (cost
    /// metric; one per tree edge thanks to snapshotting).
    pub steps_executed: u64,
    /// Whether exploration stopped early at the schedule cap.
    pub truncated: bool,
}

/// Enumerates **every** maximal schedule of `config` (up to
/// `max_schedules`), invoking `visit(schedule, result)` on each
/// completed execution.
///
/// # Examples
///
/// Verify Lemma 10 on *every* interleaving of a tiny instance:
///
/// ```
/// use ivl_shmem::algorithms::IvlCounterSim;
/// use ivl_shmem::executor::{SimCounterSpec, SimObject};
/// use ivl_shmem::{explore_all_schedules, Memory, SimOp, Workload};
/// use ivl_spec::check_ivl_monotone;
///
/// let config = || {
///     let mut mem = Memory::new();
///     let obj = IvlCounterSim::new(&mut mem, 2);
///     let w = vec![
///         Workload { ops: vec![SimOp::Update(5)] },
///         Workload { ops: vec![SimOp::Query(0)] },
///     ];
///     (mem, Box::new(obj) as Box<dyn SimObject>, w)
/// };
/// let stats = explore_all_schedules(&config, 1_000, |schedule, result| {
///     assert!(check_ivl_monotone(&SimCounterSpec, &result.history).is_ivl(),
///             "{schedule:?}");
/// });
/// assert_eq!(stats.schedules, 3); // C(3,1): one 1-step op vs one 2-step op
/// ```
///
/// # Panics
///
/// Propagates panics from the simulated algorithms and from `visit`.
pub fn explore_all_schedules<C: Configuration>(
    config: &C,
    max_schedules: u64,
    mut visit: impl FnMut(&[usize], &RunResult),
) -> ExplorationStats {
    let mut stats = ExplorationStats::default();
    let (mem, obj, workloads) = config.build();
    let root = Executor::new(mem, obj, workloads, FixedScheduler::new(Vec::new()));
    let mut prefix: Vec<usize> = Vec::new();
    dfs(&root, &mut prefix, &mut stats, max_schedules, &mut visit);
    stats
}

fn dfs(
    exec: &Executor<FixedScheduler>,
    prefix: &mut Vec<usize>,
    stats: &mut ExplorationStats,
    max_schedules: u64,
    visit: &mut impl FnMut(&[usize], &RunResult),
) {
    if stats.schedules >= max_schedules {
        stats.truncated = true;
        return;
    }
    let runnable = exec.runnable();
    if runnable.is_empty() {
        stats.schedules += 1;
        visit(prefix, &exec.result());
        return;
    }
    for p in runnable {
        // Snapshot-and-step: one executed step per tree edge.
        let mut child = exec.clone();
        child.step_once(p);
        stats.steps_executed += 1;
        prefix.push(p);
        dfs(&child, prefix, stats, max_schedules, visit);
        prefix.pop();
        if stats.truncated {
            return;
        }
    }
}

/// Counts the maximal schedules of `config` without visiting
/// (convenience for sizing a configuration before asserting on it).
pub fn count_schedules<C: Configuration>(config: &C, max_schedules: u64) -> ExplorationStats {
    explore_all_schedules(config, max_schedules, |_, _| {})
}

/// A canonical description of everything the history-level checkers
/// can observe: the operations of each process in program order (with
/// arguments and return values) plus the precedence pairs `op ≺_H
/// op'`. Executions in the same Mazurkiewicz trace class (under the
/// dependence relation of [`explore_dpor`]) have equal fingerprints,
/// and IVL/linearizability verdicts are functions of the fingerprint
/// — this is what the differential tests compare.
pub fn history_fingerprint(h: &History<u64, u64, u64>) -> String {
    let ops = h.operations();
    // Stable keys: process id + per-process program-order rank.
    let mut keys: Vec<String> = vec![String::new(); ops.len()];
    let mut by_proc: std::collections::BTreeMap<u32, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, o) in ops.iter().enumerate() {
        by_proc.entry(o.process.0).or_default().push(i);
    }
    for (p, idxs) in &mut by_proc {
        idxs.sort_by_key(|&i| ops[i].invoke_index);
        for (k, &i) in idxs.iter().enumerate() {
            keys[i] = format!("p{p}.{k}");
        }
    }
    let mut labels: Vec<String> = Vec::with_capacity(ops.len());
    for (i, o) in ops.iter().enumerate() {
        let body = match &o.op {
            Op::Update(u) => format!("U{u}"),
            Op::Query(q) => format!("Q{q}"),
        };
        let ret = match (&o.return_value, o.is_complete()) {
            (Some(v), _) => format!("={v}"),
            (None, true) => String::new(),
            (None, false) => "=?".to_string(),
        };
        labels.push(format!("{}:{body}{ret}", keys[i]));
    }
    labels.sort();
    let mut prec: Vec<String> = Vec::new();
    for (i, a) in ops.iter().enumerate() {
        for (j, b) in ops.iter().enumerate() {
            if i != j && a.precedes(b) {
                prec.push(format!("{}<{}", keys[i], keys[j]));
            }
        }
    }
    prec.sort();
    format!("{}|{}", labels.join(","), prec.join(","))
}

/// Summary of a [`explore_dpor`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct DporStats {
    /// Maximal executions visited (at least one per trace class).
    pub classes: u64,
    /// Steps executed along explored branches.
    pub steps_executed: u64,
    /// Steps executed on throwaway clones to peek at next-step
    /// footprints (for race detection and sleep filtering).
    pub peek_steps: u64,
    /// States whose every enabled process was asleep (pruned without
    /// visiting a redundant execution).
    pub sleep_blocked: u64,
    /// Whether exploration stopped early at the class cap.
    pub truncated: bool,
}

/// One process's next step, abstracted to what the dependence
/// relation needs.
#[derive(Clone, Debug)]
struct Footprint {
    process: usize,
    accesses: Vec<Access>,
    inv: bool,
    rsp: bool,
}

impl Footprint {
    fn of(rec: &StepRecord) -> Self {
        Footprint {
            process: rec.process,
            accesses: rec.accesses.clone(),
            inv: rec.is_inv(),
            rsp: rec.is_rsp(),
        }
    }

    fn conflicts(&self, other: &Footprint) -> bool {
        self.accesses
            .iter()
            .any(|a| other.accesses.iter().any(|b| a.conflicts_with(b)))
    }

    /// Exact dependence between two steps evaluated at the *same*
    /// state (executed steps, or peeks of co-enabled next steps —
    /// register-independent steps cannot change each other's
    /// footprint or completion, so peeked bits are exact here).
    fn dependent(&self, other: &Footprint) -> bool {
        if self.process == other.process {
            return true;
        }
        // Boundary dependence: swapping a response past an invocation
        // flips a `≺_H` precedence pair.
        if (self.rsp && other.inv) || (self.inv && other.rsp) {
            return true;
        }
        self.conflicts(other)
    }

    /// Whether this step *might* be its operation's response step in
    /// some context: it is one now, or its completion could hinge on
    /// the value a read returns.
    fn may_rsp(&self) -> bool {
        self.rsp || self.accesses.iter().any(|a| a.kind.is_read())
    }
}

/// Dependence between an *executed* step (exact bits) and a process's
/// *future* next step peeked at the current state. Between the
/// executed step and now, other processes may have written registers
/// the future step reads, so its response bit is taken as
/// [`Footprint::may_rsp`] — an over-approximation that keeps the
/// backtrack-point computation sound.
fn race_dependent(executed: &Footprint, next: &Footprint) -> bool {
    debug_assert_ne!(executed.process, next.process);
    if (executed.rsp && next.inv) || (executed.inv && next.may_rsp()) {
        return true;
    }
    executed.conflicts(next)
}

/// One executed step on the current DPOR stack.
struct ExecStep {
    f: Footprint,
    /// 1-based ordinal of this step within its process.
    ord: usize,
    /// `clock[q]` = how many of process `q`'s steps happen-before (or
    /// are) this step, under the exact dependence relation.
    clock: Vec<usize>,
}

/// A state on the DPOR stack. `frames[i]` is the state *before*
/// `steps[i]`; adding `q` to `frames[i].backtrack` schedules the
/// alternative "run `q` at that state" for exploration.
struct Frame {
    exec: Executor<FixedScheduler>,
    enabled: Vec<usize>,
    peeks: Vec<Option<Footprint>>,
    backtrack: BTreeSet<usize>,
    done: BTreeSet<usize>,
    sleep: BTreeSet<usize>,
}

/// Clock of `p`'s next step before it executes: the clock of `p`'s
/// last executed step (its own past and everything ordered before
/// it), or all-zero if `p` has not moved.
fn proc_clock(p: usize, steps: &[ExecStep], nprocs: usize) -> Vec<usize> {
    steps
        .iter()
        .rev()
        .find(|s| s.f.process == p)
        .map(|s| s.clock.clone())
        .unwrap_or_else(|| vec![0; nprocs])
}

fn push_frame(
    exec: Executor<FixedScheduler>,
    sleep: BTreeSet<usize>,
    nprocs: usize,
    frames: &mut Vec<Frame>,
    steps: &[ExecStep],
    stats: &mut DporStats,
) {
    let enabled = exec.runnable();
    let mut peeks: Vec<Option<Footprint>> = vec![None; nprocs];
    for &q in &enabled {
        let mut probe = exec.clone();
        let rec = probe.step_once(q);
        stats.peek_steps += 1;
        peeks[q] = Some(Footprint::of(&rec));
    }

    // Race detection: for every enabled q, find executed steps that
    // are dependent with q's next step but not already ordered before
    // it, and register q as a backtrack alternative at each such
    // state. (Flanagan–Godefroid add only the latest such step; adding
    // all of them is a superset, hence still sound. Enabled sets only
    // shrink over an execution — no blocking — so q was enabled at
    // every earlier state.)
    let mut to_add: Vec<(usize, usize)> = Vec::new();
    for &q in &enabled {
        let fq = peeks[q].as_ref().expect("peek recorded for enabled q");
        let cq = proc_clock(q, steps, nprocs);
        for (i, st) in steps.iter().enumerate() {
            if st.f.process == q {
                continue;
            }
            if st.ord <= cq[st.f.process] {
                continue; // already happens-before q's next step
            }
            if race_dependent(&st.f, fq) {
                to_add.push((i, q));
            }
        }
    }

    let mut backtrack = BTreeSet::new();
    if let Some(&first) = enabled.iter().find(|&&q| !sleep.contains(&q)) {
        backtrack.insert(first);
    } else if !enabled.is_empty() {
        stats.sleep_blocked += 1;
    }

    frames.push(Frame {
        exec,
        enabled,
        peeks,
        backtrack,
        done: BTreeSet::new(),
        sleep,
    });
    for (i, q) in to_add {
        frames[i].backtrack.insert(q);
    }
}

/// Explores at least one representative execution per Mazurkiewicz
/// trace class of `config` (dynamic partial-order reduction with
/// sleep sets), invoking `visit(schedule, result)` on each. Verdicts
/// that are functions of the [`history_fingerprint`] — IVL and
/// linearizability — are thereby checked over **all** schedules while
/// executing only a fraction of them.
///
/// # Panics
///
/// Propagates panics from the simulated algorithms and from `visit`.
pub fn explore_dpor<C: Configuration>(
    config: &C,
    max_classes: u64,
    mut visit: impl FnMut(&[usize], &RunResult),
) -> DporStats {
    let mut stats = DporStats::default();
    let (mem, obj, workloads) = config.build();
    let nprocs = workloads.len();
    let root = Executor::new(mem, obj, workloads, FixedScheduler::new(Vec::new()));

    let mut frames: Vec<Frame> = Vec::new();
    let mut steps: Vec<ExecStep> = Vec::new();
    push_frame(
        root,
        BTreeSet::new(),
        nprocs,
        &mut frames,
        &steps,
        &mut stats,
    );

    while let Some(d) = frames.len().checked_sub(1) {
        if frames[d].enabled.is_empty() {
            // Maximal execution: one representative of its class.
            stats.classes += 1;
            let schedule: Vec<usize> = steps.iter().map(|s| s.f.process).collect();
            let result = frames[d].exec.result();
            visit(&schedule, &result);
            frames.pop();
            steps.pop();
            continue;
        }

        // Next unexplored backtrack alternative; sleeping processes
        // are provably redundant here and are skipped outright.
        let choice = loop {
            let fr = &mut frames[d];
            match fr.backtrack.iter().copied().find(|q| !fr.done.contains(q)) {
                None => break None,
                Some(q) if fr.sleep.contains(&q) => {
                    fr.done.insert(q);
                }
                Some(q) => break Some(q),
            }
        };
        let Some(p) = choice else {
            frames.pop();
            if !frames.is_empty() {
                steps.pop();
            }
            continue;
        };
        if stats.classes >= max_classes {
            stats.truncated = true;
            break;
        }

        frames[d].done.insert(p);
        let fp = frames[d].peeks[p]
            .clone()
            .expect("enabled process has a peek");

        // Sleep inheritance: alternatives already covered from this
        // state stay asleep in the child iff independent of p's step.
        let child_sleep: BTreeSet<usize> = frames[d]
            .sleep
            .iter()
            .chain(frames[d].done.iter())
            .copied()
            .filter(|&q| q != p)
            .filter(|&q| match &frames[d].peeks[q] {
                Some(fq) => !fq.dependent(&fp),
                None => false,
            })
            .collect();

        let mut child = frames[d].exec.clone();
        let rec = child.step_once(p);
        stats.steps_executed += 1;
        let f = Footprint::of(&rec);

        // Clock vector of the new step: own program order joined with
        // every dependent executed step.
        let mut clock = proc_clock(p, &steps, nprocs);
        let ord = clock[p] + 1;
        clock[p] = ord;
        for st in steps.iter() {
            if st.f.dependent(&f) {
                for (c, sc) in clock.iter_mut().zip(st.clock.iter()) {
                    *c = (*c).max(*sc);
                }
            }
        }
        steps.push(ExecStep { f, ord, clock });
        push_frame(child, child_sleep, nprocs, &mut frames, &steps, &mut stats);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{example9_hash, IvlCounterSim, PcmSim, SnapshotCounterSim};
    use crate::executor::{SimCounterSpec, SimOp};
    use ivl_spec::check_ivl_monotone;
    use ivl_spec::linearize::check_linearizable;
    use std::collections::BTreeMap;

    #[test]
    fn schedule_count_matches_interleaving_math() {
        // Two processes, one single-step update each: exactly C(2,1)=2
        // interleavings.
        let config = || {
            let mut mem = Memory::new();
            let obj = IvlCounterSim::new(&mut mem, 2);
            let w = vec![
                Workload {
                    ops: vec![SimOp::Update(1)],
                },
                Workload {
                    ops: vec![SimOp::Update(2)],
                },
            ];
            (mem, Box::new(obj) as Box<dyn SimObject>, w)
        };
        let stats = count_schedules(&config, 1_000);
        assert_eq!(stats.schedules, 2);
        assert!(!stats.truncated);

        // One 1-step update vs one 2-step read: C(3,1) = 3.
        let config = || {
            let mut mem = Memory::new();
            let obj = IvlCounterSim::new(&mut mem, 2);
            let w = vec![
                Workload {
                    ops: vec![SimOp::Update(1)],
                },
                Workload {
                    ops: vec![SimOp::Query(0)],
                },
            ];
            (mem, Box::new(obj) as Box<dyn SimObject>, w)
        };
        assert_eq!(count_schedules(&config, 1_000).schedules, 3);
    }

    #[test]
    fn lemma_10_holds_on_every_schedule() {
        // 2 updaters (2 updates each) + 1 reader (1 read of 3 steps):
        // every single interleaving is IVL.
        let config = || {
            let mut mem = Memory::new();
            let obj = IvlCounterSim::new(&mut mem, 3);
            let w = vec![
                Workload {
                    ops: vec![SimOp::Update(1), SimOp::Update(2)],
                },
                Workload {
                    ops: vec![SimOp::Update(4)],
                },
                Workload {
                    ops: vec![SimOp::Query(0)],
                },
            ];
            (mem, Box::new(obj) as Box<dyn SimObject>, w)
        };
        let mut checked = 0u64;
        let stats = explore_all_schedules(&config, 100_000, |sched, result| {
            assert!(
                check_ivl_monotone(&SimCounterSpec, &result.history).is_ivl(),
                "schedule {sched:?} violated IVL"
            );
            checked += 1;
        });
        assert!(!stats.truncated, "exploration must be complete");
        assert_eq!(stats.schedules, checked);
        assert!(
            stats.schedules > 50,
            "non-trivial space: {}",
            stats.schedules
        );
    }

    #[test]
    fn snapshot_counter_linearizable_on_every_schedule() {
        // Tiny instance: 2 processes, one update (scan-embedded, ≥5
        // steps) and one read. Exhaustive — Afek correctness without
        // sampling gaps.
        let config = || {
            let mut mem = Memory::new();
            let obj = SnapshotCounterSim::new(&mut mem, 2);
            let w = vec![
                Workload {
                    ops: vec![SimOp::Update(3)],
                },
                Workload {
                    ops: vec![SimOp::Query(0)],
                },
            ];
            (mem, Box::new(obj) as Box<dyn SimObject>, w)
        };
        let stats = explore_all_schedules(&config, 1_000_000, |sched, result| {
            assert!(
                check_linearizable(&[SimCounterSpec], &result.history).is_linearizable(),
                "schedule {sched:?} broke the snapshot counter"
            );
        });
        assert!(!stats.truncated);
        assert!(stats.schedules > 100, "{}", stats.schedules);
    }

    #[test]
    fn example9_exact_violation_census() {
        // The minimal Example 9 configuration: seeds folded into one
        // update each; U(a) concurrent with Q(a);Q(b). Exhaustively
        // count the schedules whose history is not linearizable; every
        // one must still be IVL (Lemma 7, exhaustive flavour).
        let config = example9_census_config;
        let spec = {
            let mut mem = Memory::new();
            PcmSim::new(&mut mem, 2, 2, example9_hash()).spec()
        };
        let mut nonlin = 0u64;
        let stats = explore_all_schedules(&config, 2_000_000, |sched, result| {
            assert!(
                check_ivl_monotone(&spec, &result.history).is_ivl(),
                "schedule {sched:?} violated IVL"
            );
            if !check_linearizable(std::slice::from_ref(&spec), &result.history).is_linearizable() {
                nonlin += 1;
            }
        });
        assert!(!stats.truncated, "space too large: {}", stats.schedules);
        assert!(nonlin > 0, "Example 9 violations must exist");
        assert!(nonlin < stats.schedules, "most schedules still linearize");
        println!(
            "example9 census: {} / {} schedules non-linearizable",
            nonlin, stats.schedules
        );
    }

    /// The Example 9 PCM configuration used by the census and the
    /// differential tests.
    fn example9_census_config() -> (Memory, Box<dyn SimObject>, Vec<Workload>) {
        let mut mem = Memory::new();
        let obj = PcmSim::new(&mut mem, 2, 2, example9_hash());
        let w = vec![
            Workload {
                ops: vec![
                    SimOp::Update(2),
                    SimOp::Update(2),
                    SimOp::Update(2),
                    SimOp::Update(0),
                    SimOp::Update(1),
                    SimOp::Update(0), // U
                ],
            },
            Workload {
                ops: vec![SimOp::Query(0), SimOp::Query(1)],
            },
        ];
        (mem, Box::new(obj) as Box<dyn SimObject>, w)
    }

    /// Collects `fingerprint -> (is_ivl, is_linearizable)` over every
    /// execution an explorer visits, asserting along the way that the
    /// verdict really is a function of the fingerprint.
    fn collect_verdicts(
        explore: impl FnOnce(&mut dyn FnMut(&[usize], &RunResult)),
        judge: impl Fn(&RunResult) -> (bool, bool),
    ) -> BTreeMap<String, (bool, bool)> {
        let mut map: BTreeMap<String, (bool, bool)> = BTreeMap::new();
        let mut visit = |sched: &[usize], result: &RunResult| {
            let fp = history_fingerprint(&result.history);
            let v = judge(result);
            if let Some(prev) = map.insert(fp.clone(), v) {
                assert_eq!(
                    prev, v,
                    "fingerprint {fp} maps to two verdicts (schedule {sched:?})"
                );
            }
        };
        explore(&mut visit);
        map
    }

    /// The differential harness: naive DFS and DPOR must agree on the
    /// set of reachable history fingerprints and on every verdict,
    /// with DPOR executing no more (in practice: far fewer) schedules.
    fn assert_dpor_matches_naive<C: Configuration>(
        config: &C,
        judge: impl Fn(&RunResult) -> (bool, bool) + Copy,
        label: &str,
    ) -> (ExplorationStats, DporStats) {
        let mut naive_stats = ExplorationStats::default();
        let naive = collect_verdicts(
            |visit| {
                naive_stats = explore_all_schedules(config, 5_000_000, |s, r| visit(s, r));
            },
            judge,
        );
        assert!(!naive_stats.truncated, "{label}: naive side truncated");
        let mut dpor_stats = DporStats::default();
        let dpor = collect_verdicts(
            |visit| {
                dpor_stats = explore_dpor(config, 5_000_000, |s, r| visit(s, r));
            },
            judge,
        );
        assert!(!dpor_stats.truncated, "{label}: DPOR side truncated");
        assert_eq!(
            naive, dpor,
            "{label}: fingerprint/verdict maps diverge between naive DFS and DPOR"
        );
        assert!(
            dpor_stats.classes <= naive_stats.schedules,
            "{label}: DPOR visited more executions ({}) than schedules exist ({})",
            dpor_stats.classes,
            naive_stats.schedules
        );
        println!(
            "{label}: naive {} schedules / DPOR {} classes ({} fingerprints)",
            naive_stats.schedules,
            dpor_stats.classes,
            naive.len()
        );
        (naive_stats, dpor_stats)
    }

    fn counter_judge(result: &RunResult) -> (bool, bool) {
        (
            check_ivl_monotone(&SimCounterSpec, &result.history).is_ivl(),
            check_linearizable(&[SimCounterSpec], &result.history).is_linearizable(),
        )
    }

    #[test]
    fn dpor_agrees_with_naive_on_counter_configs() {
        // Lemma 10's exhaustive config (mixed 1-step updates and a
        // multi-step read).
        let lemma10 = || {
            let mut mem = Memory::new();
            let obj = IvlCounterSim::new(&mut mem, 3);
            let w = vec![
                Workload {
                    ops: vec![SimOp::Update(1), SimOp::Update(2)],
                },
                Workload {
                    ops: vec![SimOp::Update(4)],
                },
                Workload {
                    ops: vec![SimOp::Query(0)],
                },
            ];
            (mem, Box::new(obj) as Box<dyn SimObject>, w)
        };
        assert_dpor_matches_naive(&lemma10, counter_judge, "lemma10");

        // Two concurrent readers against one updater: read-read
        // independence is where the reduction bites.
        let readers = || {
            let mut mem = Memory::new();
            let obj = IvlCounterSim::new(&mut mem, 3);
            let w = vec![
                Workload {
                    ops: vec![SimOp::Update(7)],
                },
                Workload {
                    ops: vec![SimOp::Query(0)],
                },
                Workload {
                    ops: vec![SimOp::Query(0)],
                },
            ];
            (mem, Box::new(obj) as Box<dyn SimObject>, w)
        };
        let (naive, dpor) = assert_dpor_matches_naive(&readers, counter_judge, "readers");
        assert!(
            dpor.classes < naive.schedules,
            "reduction must be strict here: {} vs {}",
            dpor.classes,
            naive.schedules
        );
    }

    #[test]
    fn dpor_agrees_with_naive_on_snapshot_counter() {
        // Value-dependent termination (a scan retires only when two
        // collects agree) exercises the may_rsp over-approximation.
        let config = || {
            let mut mem = Memory::new();
            let obj = SnapshotCounterSim::new(&mut mem, 2);
            let w = vec![
                Workload {
                    ops: vec![SimOp::Update(3)],
                },
                Workload {
                    ops: vec![SimOp::Query(0)],
                },
            ];
            (mem, Box::new(obj) as Box<dyn SimObject>, w)
        };
        assert_dpor_matches_naive(&config, counter_judge, "snapshot");
    }

    #[test]
    fn dpor_agrees_with_naive_on_example9_exact() {
        let spec = {
            let mut mem = Memory::new();
            PcmSim::new(&mut mem, 2, 2, example9_hash()).spec()
        };
        let judge = |result: &RunResult| {
            (
                check_ivl_monotone(&spec, &result.history).is_ivl(),
                check_linearizable(std::slice::from_ref(&spec), &result.history).is_linearizable(),
            )
        };
        let (_, dpor) = assert_dpor_matches_naive(&example9_census_config, judge, "example9-exact");
        // The census's non-linearizable histories must survive the
        // reduction: DPOR sees every violating fingerprint.
        assert!(dpor.classes > 0);
    }

    #[test]
    fn dpor_verifies_beyond_naive_ceiling() {
        // E7-exact, scaled past the naive explorer's reach: a
        // 10-process IVL counter with two 1-step updaters and two
        // 10-step readers — 22 total steps. The naive schedule count
        // is 22!/(10!·10!) ≈ 8.5·10⁷ — hopeless for an in-test
        // enumeration — while the readers' interior steps are
        // pairwise-independent reads, so DPOR collapses the space to
        // its small dependent core and certifies Lemma 10 on all of
        // it.
        let config = || {
            let mut mem = Memory::new();
            let obj = IvlCounterSim::new(&mut mem, 10);
            let mut w = vec![Workload::default(); 10];
            w[0] = Workload {
                ops: vec![SimOp::Update(3)],
            };
            w[1] = Workload {
                ops: vec![SimOp::Update(5)],
            };
            w[2] = Workload {
                ops: vec![SimOp::Query(0)],
            };
            w[3] = Workload {
                ops: vec![SimOp::Query(0)],
            };
            (mem, Box::new(obj) as Box<dyn SimObject>, w)
        };

        // The naive explorer cannot finish this: it hits the cap.
        let naive = count_schedules(&config, 50_000);
        assert!(naive.truncated, "config must be out of naive reach");

        let mut max_len = 0usize;
        let stats = explore_dpor(&config, 5_000_000, |sched, result| {
            max_len = max_len.max(sched.len());
            assert!(
                check_ivl_monotone(&SimCounterSpec, &result.history).is_ivl(),
                "schedule {sched:?} violated IVL"
            );
        });
        assert!(!stats.truncated, "DPOR must close the space: {stats:?}");
        assert!(
            max_len > 20,
            "must be beyond the ~20-step naive ceiling: {max_len}"
        );
        println!(
            "beyond-ceiling: DPOR closed {} classes ({} steps executed, {} peeks) on a {}-step config",
            stats.classes, stats.steps_executed, stats.peek_steps, max_len
        );
    }
}
