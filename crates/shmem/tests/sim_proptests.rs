//! Property tests of the simulator and its algorithms: Lemma 10
//! (Algorithm 2 is IVL) and the snapshot counter's linearizability on
//! arbitrary seeded schedules and workload shapes, plus step-count
//! invariants.

use ivl_shmem::algorithms::{IvlCounterSim, PcmSim, SnapshotCounterSim};
use ivl_shmem::executor::{SimCounterSpec, SimObject};
use ivl_shmem::{Executor, Memory, RandomScheduler, SimOp, Workload};
use ivl_spec::check_ivl_monotone;
use ivl_spec::linearize::check_linearizable;
use proptest::prelude::*;

/// Builds per-process workloads from proptest-drawn shapes: each
/// process gets a list of (is_query, value) pairs.
fn workloads_from(shapes: &[Vec<(bool, u64)>]) -> Vec<Workload> {
    shapes
        .iter()
        .map(|ops| Workload {
            ops: ops
                .iter()
                .map(|&(q, v)| {
                    if q {
                        SimOp::Query(0)
                    } else {
                        SimOp::Update(v % 10)
                    }
                })
                .collect(),
        })
        .collect()
}

fn shape_strategy(
    max_procs: usize,
    max_ops: usize,
) -> impl Strategy<Value = Vec<Vec<(bool, u64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((any::<bool>(), 0u64..10), 0..max_ops),
        1..max_procs,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 10 on arbitrary workloads and schedules, with the O(n)
    /// and O(1) step counts verified on the same runs.
    #[test]
    fn ivl_counter_sim_always_ivl(shapes in shape_strategy(5, 5), seed in 0u64..1_000_000) {
        let n = shapes.len();
        let mut mem = Memory::new();
        let obj = IvlCounterSim::new(&mut mem, n);
        let mut exec = Executor::new(
            mem,
            Box::new(obj),
            workloads_from(&shapes),
            RandomScheduler::new(seed),
        );
        let result = exec.run();
        prop_assert!(check_ivl_monotone(&SimCounterSpec, &result.history).is_ivl());
        for stat in &result.stats {
            match stat.op {
                SimOp::Update(_) => prop_assert_eq!(stat.steps, 1),
                SimOp::Query(_) => prop_assert_eq!(stat.steps, n as u64),
            }
        }
    }

    /// The snapshot-based counter is linearizable on every sampled
    /// schedule (kept small: the checker is exponential).
    #[test]
    fn snapshot_counter_sim_always_linearizable(
        shapes in shape_strategy(4, 3),
        seed in 0u64..1_000_000,
    ) {
        let total_ops: usize = shapes.iter().map(|s| s.len()).sum();
        prop_assume!(total_ops <= 8);
        let n = shapes.len();
        let mut mem = Memory::new();
        let obj = SnapshotCounterSim::new(&mut mem, n);
        let mut exec = Executor::new(
            mem,
            Box::new(obj),
            workloads_from(&shapes),
            RandomScheduler::new(seed),
        );
        let result = exec.run();
        prop_assert!(
            check_linearizable(&[SimCounterSpec], &result.history).is_linearizable(),
            "schedule {seed} broke the snapshot counter: {:?}",
            result.history
        );
        // Ω(n)-shaped cost: every update pays at least 2n + 1 steps.
        for stat in &result.stats {
            if matches!(stat.op, SimOp::Update(_)) {
                prop_assert!(stat.steps > 2 * n as u64);
            }
        }
    }

    /// Simulated PCM with random hash tables: always IVL (Lemma 7),
    /// and quiescent final queries match the sequential spec.
    #[test]
    fn pcm_sim_random_tables_always_ivl(
        table_seed in 0u64..10_000,
        sched_seed in 0u64..1_000_000,
        width in 2usize..5,
        depth in 1usize..4,
    ) {
        // Derive deterministic hash tables from the seed.
        let alphabet = 6usize;
        let mut x = table_seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let hash: Vec<Vec<usize>> = (0..depth)
            .map(|_| (0..alphabet).map(|_| (next() as usize) % width).collect())
            .collect();

        let mut mem = Memory::new();
        let obj = PcmSim::new(&mut mem, 3, width, hash);
        let spec = obj.spec();
        let workloads = vec![
            Workload {
                ops: vec![SimOp::Update(0), SimOp::Update(1), SimOp::Update(2)],
            },
            Workload {
                ops: vec![SimOp::Query(0), SimOp::Query(3), SimOp::Query(1)],
            },
            Workload {
                ops: vec![SimOp::Update(4), SimOp::Update(5)],
            },
        ];
        let mut exec = Executor::new(mem, Box::new(obj), workloads, RandomScheduler::new(sched_seed));
        let result = exec.run();
        prop_assert!(check_ivl_monotone(&spec, &result.history).is_ivl());
    }

    /// The executor's history is always well-formed, whatever the
    /// schedule.
    #[test]
    fn executor_histories_wellformed(shapes in shape_strategy(5, 4), seed in 0u64..1_000_000) {
        let n = shapes.len();
        let mut mem = Memory::new();
        let obj = IvlCounterSim::new(&mut mem, n);
        let mut exec = Executor::new(
            mem,
            Box::new(obj),
            workloads_from(&shapes),
            RandomScheduler::new(seed),
        );
        let result = exec.run();
        prop_assert!(
            ivl_spec::History::from_events(result.history.events().to_vec()).is_ok()
        );
        // Every operation of every workload completed.
        let expected: usize = shapes.iter().map(|s| s.len()).sum();
        prop_assert_eq!(result.stats.len(), expected);
    }

    /// Cut-off executions leave pending operations; the history is
    /// still well-formed and still IVL (pending updates may or may not
    /// have taken partial effect — exactly what IVL's completion
    /// semantics cover).
    #[test]
    fn bounded_runs_leave_wellformed_pending_histories(
        shapes in shape_strategy(4, 4),
        seed in 0u64..1_000_000,
        cutoff in 1u64..40,
    ) {
        let n = shapes.len();
        let mut mem = Memory::new();
        let obj = IvlCounterSim::new(&mut mem, n);
        let mut exec = Executor::new(
            mem,
            Box::new(obj),
            workloads_from(&shapes),
            RandomScheduler::new(seed),
        );
        let result = exec.run_bounded(cutoff);
        prop_assert!(
            ivl_spec::History::from_events(result.history.events().to_vec()).is_ok()
        );
        prop_assert!(check_ivl_monotone(&SimCounterSpec, &result.history).is_ivl());
        // Stats cover exactly the invoked operations.
        let invoked = result.history.operations().len();
        prop_assert_eq!(result.stats.len(), invoked);
    }

    /// Determinism: identical seeds produce identical histories and
    /// step counts.
    #[test]
    fn executor_is_deterministic(seed in 0u64..1_000_000) {
        let run = || {
            let mut mem = Memory::new();
            let obj = SnapshotCounterSim::new(&mut mem, 3);
            let workloads = vec![
                Workload { ops: vec![SimOp::Update(1), SimOp::Update(2)] },
                Workload { ops: vec![SimOp::Query(0)] },
                Workload { ops: vec![SimOp::Update(3)] },
            ];
            let mut exec = Executor::new(mem, Box::new(obj), workloads, RandomScheduler::new(seed));
            let r = exec.run();
            let steps: Vec<u64> = r.stats.iter().map(|s| s.steps).collect();
            (r.history, steps)
        };
        let (h1, s1) = run();
        let (h2, s2) = run();
        prop_assert_eq!(h1, h2);
        prop_assert_eq!(s1, s2);
    }
}

/// Non-proptest guard: the binary-snapshot reduction machinery
/// composes with both counters without panicking across many seeds.
#[test]
fn reduction_composition_smoke() {
    use ivl_shmem::algorithms::BinarySnapshotSim;
    for seed in 0..20 {
        let n = 3;
        let mut mem = Memory::new();
        let counter = SnapshotCounterSim::new(&mut mem, n);
        let mut obj = BinarySnapshotSim::new(Box::new(counter));
        assert_eq!(obj.num_processes(), n);
        let workloads = vec![
            Workload {
                ops: vec![SimOp::Update(1), SimOp::Update(0)],
            },
            Workload {
                ops: vec![SimOp::Update(1)],
            },
            Workload {
                ops: vec![SimOp::Query(0), SimOp::Query(0)],
            },
        ];
        let first = obj.begin_op(ivl_spec::ProcessId(0), &SimOp::Update(1));
        drop(first); // machines may be dropped unstarted
        let mut mem = Memory::new();
        let counter = SnapshotCounterSim::new(&mut mem, n);
        let obj = BinarySnapshotSim::new(Box::new(counter));
        let mut exec = Executor::new(mem, Box::new(obj), workloads, RandomScheduler::new(seed));
        let result = exec.run();
        assert!(result.stats.iter().all(|s| s.completed));
    }
}
