//! Property tests pinning the mergeable-summary algebra: per kind,
//! `merge_into` is commutative and associative (so merge order across
//! replicas never matters), and the kind-tagged encode/decode pair is
//! the identity on every state.

use ivl_merge::{MergePolicy, MergeableState, SnapshotState};
use proptest::collection::vec;
use proptest::prelude::*;

/// `a ⊔ b` under `policy`, as a value.
fn merged(a: &SnapshotState, b: &SnapshotState, policy: MergePolicy) -> SnapshotState {
    let mut target = b.clone();
    a.merge_into(&mut target, policy).expect("same-kind merge");
    target
}

fn cm_state(cells: Vec<u64>) -> SnapshotState {
    SnapshotState::CountMin {
        width: 4,
        depth: 3,
        hash_fp: 0xc01d_c0de,
        cells,
    }
}

fn hll_state(registers: Vec<u8>) -> SnapshotState {
    SnapshotState::Hll {
        hash_fp: 0xab1e,
        registers,
    }
}

/// Checks both laws for one triple under one policy.
fn check_laws(a: &SnapshotState, b: &SnapshotState, c: &SnapshotState, policy: MergePolicy) {
    assert_eq!(merged(a, b, policy), merged(b, a, policy), "commutativity");
    assert_eq!(
        merged(&merged(a, b, policy), c, policy),
        merged(a, &merged(b, c, policy), policy),
        "associativity"
    );
}

proptest! {
    #[test]
    fn cm_merge_is_commutative_and_associative(
        a in vec(0u64..1 << 40, 12..13),
        b in vec(0u64..1 << 40, 12..13),
        c in vec(0u64..1 << 40, 12..13),
    ) {
        let (a, b, c) = (cm_state(a), cm_state(b), cm_state(c));
        for policy in [MergePolicy::Add, MergePolicy::Join] {
            check_laws(&a, &b, &c, policy);
        }
    }

    #[test]
    fn hll_merge_is_commutative_and_associative(
        a in vec(any::<u8>(), 16..17),
        b in vec(any::<u8>(), 16..17),
        c in vec(any::<u8>(), 16..17),
    ) {
        let (a, b, c) = (hll_state(a), hll_state(b), hll_state(c));
        for policy in [MergePolicy::Add, MergePolicy::Join] {
            check_laws(&a, &b, &c, policy);
        }
    }

    #[test]
    fn scalar_merges_are_commutative_and_associative(
        a in any::<u32>(),
        b in any::<u32>(),
        c in any::<u32>(),
        x in any::<u64>(),
        y in any::<u64>(),
        z in any::<u64>(),
    ) {
        let (ma, mb, mc) = (
            SnapshotState::Morris { exponent: a },
            SnapshotState::Morris { exponent: b },
            SnapshotState::Morris { exponent: c },
        );
        let (na, nb, nc) = (
            SnapshotState::MinRegister { minimum: x },
            SnapshotState::MinRegister { minimum: y },
            SnapshotState::MinRegister { minimum: z },
        );
        for policy in [MergePolicy::Add, MergePolicy::Join] {
            check_laws(&ma, &mb, &mc, policy);
            check_laws(&na, &nb, &nc, policy);
        }
    }

    #[test]
    fn join_merges_are_idempotent(
        cells in vec(0u64..1 << 40, 12..13),
        registers in vec(any::<u8>(), 16..17),
        exponent in any::<u32>(),
        minimum in any::<u64>(),
    ) {
        for state in [
            cm_state(cells),
            hll_state(registers),
            SnapshotState::Morris { exponent },
            SnapshotState::MinRegister { minimum },
        ] {
            prop_assert_eq!(merged(&state, &state, MergePolicy::Join), state);
        }
    }

    #[test]
    fn encode_decode_roundtrips_every_kind(
        cells in vec(any::<u64>(), 12..13),
        registers in vec(any::<u8>(), 0..64),
        exponent in any::<u32>(),
        minimum in any::<u64>(),
    ) {
        for state in [
            cm_state(cells),
            hll_state(registers),
            SnapshotState::Morris { exponent },
            SnapshotState::MinRegister { minimum },
        ] {
            let mut buf = Vec::new();
            state.encode_into(&mut buf);
            let mut body = buf.as_slice();
            let back = SnapshotState::decode_from(state.kind(), &mut body).unwrap();
            prop_assert_eq!(back, state);
            prop_assert!(body.is_empty(), "decode must consume the whole body");
        }
    }
}
