//! `ivl-merge`: the mergeable-state layer shared by the serving and
//! replication subsystems.
//!
//! The full *Fast Concurrent Data Sketches* line of work builds on one
//! algebraic fact: the served sketches are **mergeable summaries** —
//! CountMin cell matrices add cell-wise, HyperLogLog registers max
//! register-wise, Morris exponents and min registers join as scalars —
//! so any number of independently grown copies combine into one
//! summary of the union (or, for mirrored copies, the common stream).
//! Before this crate existed that algebra was written three times:
//! once in the served objects (snapshot bodies), once in the wire
//! codec (`SNAPSHOT`/`SNAPSHOT_SINCE` frames), and once in the replica
//! group's per-kind merge arms. This crate is the single home:
//!
//! * [`SnapshotState`] — the kind-tagged state itself, with
//!   [`CellRun`]/[`DeltaChange`] as its sparse-delta vocabulary.
//! * [`MergeableState`] — the trait tying the algebra together:
//!   kind-tagged `encode_into`/`decode_from` (the exact wire schema of
//!   the snapshot frames), `merge_into` (the summary join, under a
//!   [`MergePolicy`]), `apply_change` (delta application against a
//!   cached copy), fingerprints, and `absorb_into` — the entry point
//!   replication catch-up uses to push a peer's state back into a
//!   *live* served structure through an [`AbsorbSink`].
//! * [`cm_hash_fingerprint`]/[`hll_hash_fingerprint`]/[`slot_coins`] —
//!   the coin/fingerprint discipline that makes merging safe: state is
//!   only combined when both sides provably sampled the same hash
//!   functions, and a mismatch is a typed [`MergeError`] (the wire's
//!   `MergeMismatch`), never a silent wrong merge.
//!
//! Everything here is sequential and allocation-explicit; the
//! concurrent absorb paths (shard leases, register `fetch_max`) live
//! with the live structures and implement [`AbsorbSink`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use ivl_sketch::hash::PairwiseHash;
use ivl_sketch::hll::HyperLogLog;
use ivl_sketch::CoinFlips;
use std::fmt;

/// The kinds of quantitative objects the server can register. The
/// discriminant is the wire tag used by kind-tagged envelope frames
/// and the `OBJECTS` listing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObjectKind {
    /// Sharded CountMin frequency sketch (the original served object).
    CountMin,
    /// Concurrent HyperLogLog cardinality sketch.
    Hll,
    /// Concurrent Morris approximate counter.
    Morris,
    /// Concurrent min register (antitone).
    MinRegister,
}

impl ObjectKind {
    /// Wire tag of this kind.
    pub fn to_u8(self) -> u8 {
        match self {
            ObjectKind::CountMin => 0,
            ObjectKind::Hll => 1,
            ObjectKind::Morris => 2,
            ObjectKind::MinRegister => 3,
        }
    }

    /// Parses a wire tag.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(ObjectKind::CountMin),
            1 => Some(ObjectKind::Hll),
            2 => Some(ObjectKind::Morris),
            3 => Some(ObjectKind::MinRegister),
            _ => None,
        }
    }
}

impl fmt::Display for ObjectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ObjectKind::CountMin => "cm",
            ObjectKind::Hll => "hll",
            ObjectKind::Morris => "morris",
            ObjectKind::MinRegister => "min",
        })
    }
}

impl std::str::FromStr for ObjectKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cm" | "countmin" | "count-min" => Ok(ObjectKind::CountMin),
            "hll" => Ok(ObjectKind::Hll),
            "morris" => Ok(ObjectKind::Morris),
            "min" | "min-register" => Ok(ObjectKind::MinRegister),
            other => Err(format!(
                "unknown object kind {other:?} (want cm|hll|morris|min)"
            )),
        }
    }
}

/// The kind-specific mergeable state carried by a `SNAPSHOT` reply.
///
/// Each variant is the raw material of that kind's merge operator
/// (CountMin cells add cell-wise, HLL registers max register-wise,
/// Morris exponents and min registers are scalars), so a replication
/// layer can combine any number of snapshots into one summary over
/// the union (partition) or the common stream (mirror) — the
/// "mergeable summaries" property the full paper builds on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotState {
    /// A CountMin cell matrix, row-major (`depth × width` sums).
    CountMin {
        /// Matrix width (columns per row).
        width: u32,
        /// Matrix depth (rows).
        depth: u32,
        /// Probe fingerprint of the row hash functions (see
        /// [`cm_hash_fingerprint`]); peers whose fingerprints differ
        /// sampled different coins and must not be merged.
        hash_fp: u64,
        /// The `depth * width` cell sums.
        cells: Vec<u64>,
    },
    /// HLL registers (one max-rank byte per bucket).
    Hll {
        /// Probe fingerprint of the routing hash (see
        /// [`hll_hash_fingerprint`]).
        hash_fp: u64,
        /// The `2^precision` register bytes.
        registers: Vec<u8>,
    },
    /// A Morris counter's exponent.
    Morris {
        /// Current exponent.
        exponent: u32,
    },
    /// A min register's current minimum.
    MinRegister {
        /// Current minimum (`u64::MAX` when empty).
        minimum: u64,
    },
}

/// One sparse overwrite run of a CountMin delta: `values` replace the
/// client's cached cells `[lo, lo + values.len())` of `row`. Runs
/// carry current summed cell values (not increments), so applying a
/// delta is idempotent and never double-counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellRun {
    /// Matrix row the run overwrites.
    pub row: u32,
    /// First column (inclusive) of the overwrite.
    pub lo: u32,
    /// The replacement cell sums.
    pub values: Vec<u64>,
}

/// How a `SNAPSHOT_SINCE` reply changes the client's cached state.
#[derive(Clone, Debug, PartialEq)]
pub enum DeltaChange {
    /// Nothing changed since the client's base epoch: keep the cached
    /// state (the reply still carries a fresh envelope — acknowledged
    /// weight may move without a cell change).
    Unchanged,
    /// Sparse cell overwrites against a cached CountMin whose epoch is
    /// `base_epoch`.
    CmRuns {
        /// The cache epoch these runs patch.
        base_epoch: u64,
        /// The overwrite runs (row-sparse, column-contiguous).
        runs: Vec<CellRun>,
    },
    /// A register-range overwrite against a cached HLL whose epoch is
    /// `base_epoch`: `registers` replace `[lo, lo + registers.len())`.
    HllRange {
        /// The cache epoch this range patches.
        base_epoch: u64,
        /// First register (inclusive) of the overwrite.
        lo: u32,
        /// The replacement register bytes.
        registers: Vec<u8>,
    },
    /// A full replacement state: the client's base was unknown (or too
    /// old to diff), or a delta would not beat the full frame.
    Full(SnapshotState),
}

/// Fixed probe keys hashed by the fingerprint helpers. Two hash
/// functions that agree on all probes are overwhelmingly likely the
/// same sampled function; replicas built from the same seed (see
/// [`slot_coins`]) always agree exactly.
const FP_PROBES: [u64; 8] = [
    0,
    1,
    0x5bd1_e995,
    0x0b1e_c7ed,
    u64::MAX / 3,
    u64::MAX / 2,
    u64::MAX - 1,
    u64::MAX,
];

fn fp_mix(acc: u64, v: u64) -> u64 {
    // splitmix64-style finalizer: order-sensitive, avalanching.
    let mut x = acc.wrapping_add(v).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^ (x >> 27)
}

/// A u64 fingerprint of a CountMin's row hash functions, computed by
/// hashing [`FP_PROBES`] through every row. Snapshots carry it so a
/// merging peer can refuse mismatched coins with a typed error
/// instead of silently adding cells that count different things.
pub fn cm_hash_fingerprint(hashes: &[PairwiseHash]) -> u64 {
    let mut acc = fp_mix(0x1dea_c0de, hashes.len() as u64);
    for h in hashes {
        for probe in FP_PROBES {
            acc = fp_mix(acc, h.hash(probe) as u64);
        }
    }
    acc
}

/// A u64 fingerprint of an HLL's routing hash (bucket and rank of
/// every [`FP_PROBES`] key) — the HLL counterpart of
/// [`cm_hash_fingerprint`].
pub fn hll_hash_fingerprint(hll: &HyperLogLog) -> u64 {
    let mut acc = fp_mix(0xca8d_117a, hll.num_registers() as u64);
    for probe in FP_PROBES {
        let (bucket, rank) = hll.route(probe);
        acc = fp_mix(acc, ((bucket as u64) << 8) | rank as u64);
    }
    acc
}

/// The coin-flip stream for registry slot `idx` under `seed`.
///
/// Exposed (and kept deliberately simple) because replication depends
/// on it: replicas started with the same `--seed` and the same object
/// roster sample identical hash functions per slot, which is exactly
/// the precondition for merging their snapshots. A replica-group
/// client rebuilds prototypes with this same function to re-derive
/// estimates from merged state.
pub fn slot_coins(seed: u64, idx: u32) -> CoinFlips {
    // Distinct streams per registry slot, so two `hll` objects do not
    // share hash functions.
    CoinFlips::from_seed(seed ^ ((idx as u64) << 32 | 0x0b1ec7))
}

/// How two copies of the same-kind state combine.
///
/// CountMin cells are the only place the distinction matters: copies
/// that counted **disjoint substreams** (a partitioned group) add
/// cell-wise, while copies that counted the **same stream** (a
/// mirrored group) join by cell-wise max. The other kinds' operators
/// are idempotent joins (register max, exponent max, scalar min) and
/// behave identically under either policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergePolicy {
    /// Cell-wise addition: summaries of disjoint substreams.
    Add,
    /// Cell-wise max: summaries of the same stream.
    Join,
}

/// A refused merge or absorb: kinds, dimensions, or hash fingerprints
/// disagree, or a delta does not fit the cache it claims to patch.
/// Maps to the wire's `MergeMismatch` error code; callers prefix the
/// object id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeError {
    reason: String,
}

impl MergeError {
    /// A new typed refusal with a human-readable reason.
    pub fn new(reason: impl Into<String>) -> Self {
        MergeError {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.reason)
    }
}

impl std::error::Error for MergeError {}

/// What [`MergeableState::apply_change`] did to the cached state, with
/// enough detail for a caller keeping a derived accumulator (the
/// replica group's merged cells) to patch it incrementally instead of
/// rebuilding from every cache.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StatePatch {
    /// The delta was `Unchanged`: the cache is already current.
    Unchanged,
    /// Sparse CountMin overwrites were applied; each entry is
    /// `(flat cell index, old value, new value)`.
    CmCells(Vec<(usize, u64, u64)>),
    /// An HLL register range `[lo, lo + registers.len())` was
    /// overwritten with `registers`.
    HllRange {
        /// First overwritten register.
        lo: usize,
        /// The bytes now in place.
        registers: Vec<u8>,
    },
    /// The delta carried a full state; the cache was replaced wholesale.
    Replaced,
}

/// A live served structure a peer's [`SnapshotState`] can be absorbed
/// into — the receiving half of replication catch-up.
///
/// [`MergeableState::absorb_into`] dispatches on the state's kind;
/// implementations override exactly the method matching the structure
/// they serve (the defaults refuse with a kind-mismatch
/// [`MergeError`]), and own whatever concurrency discipline the write
/// needs: the CountMin sink adds cells under its shard lease
/// (single-writer stores, one epoch commit), the HLL sink `fetch_max`es
/// registers, Morris raises its exponent by CAS, the min register
/// `fetch_min`s. All four absorb operations are joins with the
/// structure's own update algebra, so absorbing an IVL snapshot keeps
/// the structure an intermediate mix of real updates.
pub trait AbsorbSink {
    /// Absorbs a CountMin cell matrix (cell-wise add).
    fn absorb_cm(
        &mut self,
        width: u32,
        depth: u32,
        hash_fp: u64,
        cells: &[u64],
    ) -> Result<(), MergeError> {
        let _ = (width, depth, hash_fp, cells);
        Err(MergeError::new(KIND_MISMATCH))
    }

    /// Absorbs HLL registers (register-wise max).
    fn absorb_hll(&mut self, hash_fp: u64, registers: &[u8]) -> Result<(), MergeError> {
        let _ = (hash_fp, registers);
        Err(MergeError::new(KIND_MISMATCH))
    }

    /// Absorbs a Morris exponent (raise to at least `exponent`).
    fn absorb_morris(&mut self, exponent: u32) -> Result<(), MergeError> {
        let _ = exponent;
        Err(MergeError::new(KIND_MISMATCH))
    }

    /// Absorbs a minimum (lower to at most `minimum`).
    fn absorb_min(&mut self, minimum: u64) -> Result<(), MergeError> {
        let _ = minimum;
        Err(MergeError::new(KIND_MISMATCH))
    }
}

/// Default [`AbsorbSink`] refusal: the pushed state's kind does not
/// match the structure absorbing it.
pub const KIND_MISMATCH: &str = "peer state kind does not match the served object";

/// The mergeable-summary algebra, tied to a wire schema.
///
/// One implementation ships ([`SnapshotState`]); the trait names the
/// contract the servers, the codec, and the replica group all rely on:
///
/// * `encode_into`/`decode_from` are exact inverses and *are* the wire
///   schema of the snapshot frame bodies (kind tag carried separately).
/// * `merge_into` is associative and commutative per kind (pinned by
///   this crate's property tests), so merge order across replicas
///   never matters.
/// * `apply_change` applies a `SNAPSHOT_SINCE` delta to a cached copy;
///   runs carry absolute values, so re-application is idempotent.
/// * `absorb_into` pushes the state into a live structure through an
///   [`AbsorbSink`] — `absorb`-then-snapshot equals
///   snapshot-then-`merge_into` (also property-pinned).
pub trait MergeableState: Sized {
    /// This state's kind tag.
    fn kind(&self) -> ObjectKind;

    /// The hash/coin fingerprint guarding merges, for kinds that carry
    /// one (CountMin, HLL).
    fn fingerprint(&self) -> Option<u64>;

    /// Appends the kind-specific wire body (little-endian, no kind
    /// tag — the frame carries that).
    fn encode_into(&self, out: &mut Vec<u8>);

    /// Decodes a wire body of `kind` from the front of `body`,
    /// consuming exactly the encoded bytes. Never trusts a length
    /// field further than the bytes actually present.
    fn decode_from(kind: ObjectKind, body: &mut &[u8]) -> Result<Self, &'static str>;

    /// Merges `self` into `target` under `policy`.
    fn merge_into(&self, target: &mut Self, policy: MergePolicy) -> Result<(), MergeError>;

    /// Applies a delta to this cached state, reporting what changed.
    fn apply_change(&mut self, change: DeltaChange) -> Result<StatePatch, MergeError>;

    /// Absorbs this state into a live served structure.
    fn absorb_into(&self, sink: &mut dyn AbsorbSink) -> Result<(), MergeError>;
}

fn take_u32(body: &mut &[u8]) -> Result<u32, &'static str> {
    if body.len() < 4 {
        return Err(SHORT_BODY);
    }
    let (head, rest) = body.split_at(4);
    *body = rest;
    Ok(u32::from_le_bytes(head.try_into().unwrap()))
}

fn take_u64(body: &mut &[u8]) -> Result<u64, &'static str> {
    if body.len() < 8 {
        return Err(SHORT_BODY);
    }
    let (head, rest) = body.split_at(8);
    *body = rest;
    Ok(u64::from_le_bytes(head.try_into().unwrap()))
}

const SHORT_BODY: &str = "body shorter than its schema";

impl MergeableState for SnapshotState {
    fn kind(&self) -> ObjectKind {
        match self {
            SnapshotState::CountMin { .. } => ObjectKind::CountMin,
            SnapshotState::Hll { .. } => ObjectKind::Hll,
            SnapshotState::Morris { .. } => ObjectKind::Morris,
            SnapshotState::MinRegister { .. } => ObjectKind::MinRegister,
        }
    }

    fn fingerprint(&self) -> Option<u64> {
        match self {
            SnapshotState::CountMin { hash_fp, .. } | SnapshotState::Hll { hash_fp, .. } => {
                Some(*hash_fp)
            }
            SnapshotState::Morris { .. } | SnapshotState::MinRegister { .. } => None,
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            SnapshotState::CountMin {
                width,
                depth,
                hash_fp,
                cells,
            } => {
                out.extend_from_slice(&width.to_le_bytes());
                out.extend_from_slice(&depth.to_le_bytes());
                out.extend_from_slice(&hash_fp.to_le_bytes());
                // No cell-count field: the count is `width * depth`.
                for &cell in cells {
                    out.extend_from_slice(&cell.to_le_bytes());
                }
            }
            SnapshotState::Hll { hash_fp, registers } => {
                out.extend_from_slice(&hash_fp.to_le_bytes());
                out.extend_from_slice(&(registers.len() as u32).to_le_bytes());
                out.extend_from_slice(registers);
            }
            SnapshotState::Morris { exponent } => {
                out.extend_from_slice(&exponent.to_le_bytes());
            }
            SnapshotState::MinRegister { minimum } => {
                out.extend_from_slice(&minimum.to_le_bytes());
            }
        }
    }

    fn decode_from(kind: ObjectKind, body: &mut &[u8]) -> Result<Self, &'static str> {
        match kind {
            ObjectKind::CountMin => {
                let width = take_u32(body)?;
                let depth = take_u32(body)?;
                let hash_fp = take_u64(body)?;
                let cells_len = width as u64 * depth as u64;
                // Cross-check the claimed dimensions against the bytes
                // actually present before allocating.
                if cells_len > (body.len() / 8) as u64 {
                    return Err(SHORT_BODY);
                }
                let mut cells = Vec::with_capacity(cells_len as usize);
                for _ in 0..cells_len {
                    cells.push(take_u64(body)?);
                }
                Ok(SnapshotState::CountMin {
                    width,
                    depth,
                    hash_fp,
                    cells,
                })
            }
            ObjectKind::Hll => {
                let hash_fp = take_u64(body)?;
                let len = take_u32(body)? as usize;
                if body.len() < len {
                    return Err(SHORT_BODY);
                }
                let (raw, rest) = body.split_at(len);
                *body = rest;
                Ok(SnapshotState::Hll {
                    hash_fp,
                    registers: raw.to_vec(),
                })
            }
            ObjectKind::Morris => Ok(SnapshotState::Morris {
                exponent: take_u32(body)?,
            }),
            ObjectKind::MinRegister => Ok(SnapshotState::MinRegister {
                minimum: take_u64(body)?,
            }),
        }
    }

    fn merge_into(&self, target: &mut Self, policy: MergePolicy) -> Result<(), MergeError> {
        match (self, target) {
            (
                SnapshotState::CountMin {
                    width,
                    depth,
                    hash_fp,
                    cells,
                },
                SnapshotState::CountMin {
                    width: tw,
                    depth: td,
                    hash_fp: tf,
                    cells: tc,
                },
            ) => {
                if (width, depth, hash_fp) != (tw, td, tf) {
                    return Err(MergeError::new(
                        "replica CountMin dimensions or coins disagree",
                    ));
                }
                for (t, &c) in tc.iter_mut().zip(cells) {
                    match policy {
                        MergePolicy::Add => *t += c,
                        MergePolicy::Join => *t = (*t).max(c),
                    }
                }
                Ok(())
            }
            (
                SnapshotState::Hll { hash_fp, registers },
                SnapshotState::Hll {
                    hash_fp: tf,
                    registers: tr,
                },
            ) => {
                if hash_fp != tf || registers.len() != tr.len() {
                    return Err(MergeError::new("replica HLL precision or coins disagree"));
                }
                // Register max under either policy: both copies hold
                // max-ranks, and max is the union summary.
                for (t, &r) in tr.iter_mut().zip(registers) {
                    *t = (*t).max(r);
                }
                Ok(())
            }
            (SnapshotState::Morris { exponent }, SnapshotState::Morris { exponent: te }) => {
                *te = (*te).max(*exponent);
                Ok(())
            }
            (
                SnapshotState::MinRegister { minimum },
                SnapshotState::MinRegister { minimum: tm },
            ) => {
                *tm = (*tm).min(*minimum);
                Ok(())
            }
            _ => Err(MergeError::new("kind tag and state disagree")),
        }
    }

    fn apply_change(&mut self, change: DeltaChange) -> Result<StatePatch, MergeError> {
        match change {
            DeltaChange::Unchanged => Ok(StatePatch::Unchanged),
            DeltaChange::Full(state) => {
                *self = state;
                Ok(StatePatch::Replaced)
            }
            DeltaChange::CmRuns { runs, .. } => {
                let SnapshotState::CountMin {
                    width,
                    depth,
                    cells,
                    ..
                } = self
                else {
                    return Err(MergeError::new("CountMin runs for a non-CountMin cache"));
                };
                let (width, depth) = (*width as usize, *depth as usize);
                let mut patched = Vec::new();
                for run in &runs {
                    let (row, lo) = (run.row as usize, run.lo as usize);
                    if row >= depth || lo + run.values.len() > width {
                        return Err(MergeError::new("delta run out of bounds"));
                    }
                    for (k, &value) in run.values.iter().enumerate() {
                        let idx = row * width + lo + k;
                        patched.push((idx, cells[idx], value));
                        cells[idx] = value;
                    }
                }
                Ok(StatePatch::CmCells(patched))
            }
            DeltaChange::HllRange { lo, registers, .. } => {
                let SnapshotState::Hll {
                    registers: cached, ..
                } = self
                else {
                    return Err(MergeError::new("HLL range for a non-HLL cache"));
                };
                let lo = lo as usize;
                if lo + registers.len() > cached.len() {
                    return Err(MergeError::new("delta register range out of bounds"));
                }
                cached[lo..lo + registers.len()].copy_from_slice(&registers);
                Ok(StatePatch::HllRange { lo, registers })
            }
        }
    }

    fn absorb_into(&self, sink: &mut dyn AbsorbSink) -> Result<(), MergeError> {
        match self {
            SnapshotState::CountMin {
                width,
                depth,
                hash_fp,
                cells,
            } => sink.absorb_cm(*width, *depth, *hash_fp, cells),
            SnapshotState::Hll { hash_fp, registers } => sink.absorb_hll(*hash_fp, registers),
            SnapshotState::Morris { exponent } => sink.absorb_morris(*exponent),
            SnapshotState::MinRegister { minimum } => sink.absorb_min(*minimum),
        }
    }
}

/// Folds any number of same-kind states into one merged summary under
/// `policy`. Errors on an empty slice, on mixed kinds, and on any
/// dimension/fingerprint disagreement.
pub fn merge_states(
    policy: MergePolicy,
    states: &[&SnapshotState],
) -> Result<SnapshotState, MergeError> {
    let mut iter = states.iter();
    let Some(first) = iter.next() else {
        return Err(MergeError::new("no states to merge"));
    };
    let mut merged = (*first).clone();
    for state in iter {
        state.merge_into(&mut merged, policy)?;
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cm(cells: Vec<u64>) -> SnapshotState {
        SnapshotState::CountMin {
            width: 3,
            depth: 2,
            hash_fp: 0xfeed,
            cells,
        }
    }

    #[test]
    fn kinds_roundtrip_through_wire_tags_and_strings() {
        for kind in [
            ObjectKind::CountMin,
            ObjectKind::Hll,
            ObjectKind::Morris,
            ObjectKind::MinRegister,
        ] {
            assert_eq!(ObjectKind::from_u8(kind.to_u8()), Some(kind));
            assert_eq!(kind.to_string().parse::<ObjectKind>().unwrap(), kind);
        }
        assert_eq!(ObjectKind::from_u8(9), None);
        assert!("quartz".parse::<ObjectKind>().is_err());
    }

    #[test]
    fn encode_decode_is_the_identity_and_consumes_exactly_the_body() {
        let states = [
            cm(vec![1, 2, 3, 4, 5, 6]),
            SnapshotState::Hll {
                hash_fp: 9,
                registers: vec![0, 3, 1, 7],
            },
            SnapshotState::Morris { exponent: 12 },
            SnapshotState::MinRegister { minimum: 41 },
        ];
        for state in &states {
            let mut buf = Vec::new();
            state.encode_into(&mut buf);
            buf.extend_from_slice(b"trailer");
            let mut body = buf.as_slice();
            let back = SnapshotState::decode_from(state.kind(), &mut body).unwrap();
            assert_eq!(&back, state);
            assert_eq!(body, b"trailer");
        }
    }

    #[test]
    fn decode_refuses_lying_lengths_without_allocating() {
        // CM header claiming a huge matrix over a tiny body.
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        let mut body = buf.as_slice();
        assert_eq!(
            SnapshotState::decode_from(ObjectKind::CountMin, &mut body),
            Err(SHORT_BODY)
        );
        // HLL register count beyond the bytes present.
        let mut buf = Vec::new();
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&100u32.to_le_bytes());
        buf.extend_from_slice(&[1, 2, 3]);
        let mut body = buf.as_slice();
        assert_eq!(
            SnapshotState::decode_from(ObjectKind::Hll, &mut body),
            Err(SHORT_BODY)
        );
    }

    #[test]
    fn merge_adds_or_joins_cells_and_refuses_mismatches() {
        let a = cm(vec![1, 0, 2, 3, 0, 0]);
        let mut add = cm(vec![4, 1, 0, 0, 2, 0]);
        a.merge_into(&mut add, MergePolicy::Add).unwrap();
        assert_eq!(add, cm(vec![5, 1, 2, 3, 2, 0]));
        let mut join = cm(vec![4, 1, 0, 0, 2, 0]);
        a.merge_into(&mut join, MergePolicy::Join).unwrap();
        assert_eq!(join, cm(vec![4, 1, 2, 3, 2, 0]));

        let mut wrong_fp = cm(vec![0; 6]);
        if let SnapshotState::CountMin { hash_fp, .. } = &mut wrong_fp {
            *hash_fp = 1;
        }
        assert!(a.merge_into(&mut wrong_fp, MergePolicy::Add).is_err());
        let mut wrong_kind = SnapshotState::Morris { exponent: 0 };
        let err = a.merge_into(&mut wrong_kind, MergePolicy::Add).unwrap_err();
        assert_eq!(err.to_string(), "kind tag and state disagree");
    }

    #[test]
    fn apply_change_patches_and_reports_old_and_new_values() {
        let mut cache = cm(vec![1, 2, 3, 4, 5, 6]);
        let patch = cache
            .apply_change(DeltaChange::CmRuns {
                base_epoch: 1,
                runs: vec![CellRun {
                    row: 1,
                    lo: 1,
                    values: vec![50, 60],
                }],
            })
            .unwrap();
        assert_eq!(patch, StatePatch::CmCells(vec![(4, 5, 50), (5, 6, 60)]));
        assert_eq!(cache, cm(vec![1, 2, 3, 4, 50, 60]));
        assert!(cache
            .apply_change(DeltaChange::CmRuns {
                base_epoch: 1,
                runs: vec![CellRun {
                    row: 2,
                    lo: 0,
                    values: vec![1],
                }],
            })
            .is_err());

        let mut hll = SnapshotState::Hll {
            hash_fp: 0,
            registers: vec![1, 2, 3, 4],
        };
        let patch = hll
            .apply_change(DeltaChange::HllRange {
                base_epoch: 1,
                lo: 2,
                registers: vec![9, 9],
            })
            .unwrap();
        assert_eq!(
            patch,
            StatePatch::HllRange {
                lo: 2,
                registers: vec![9, 9]
            }
        );
        assert!(hll
            .apply_change(DeltaChange::HllRange {
                base_epoch: 1,
                lo: 3,
                registers: vec![9, 9],
            })
            .is_err());
        assert!(matches!(
            hll.apply_change(DeltaChange::Full(SnapshotState::Morris { exponent: 1 })),
            Ok(StatePatch::Replaced)
        ));
    }

    #[test]
    fn default_sink_refuses_every_kind() {
        struct Deaf;
        impl AbsorbSink for Deaf {}
        let mut deaf = Deaf;
        for state in [
            cm(vec![0; 6]),
            SnapshotState::Hll {
                hash_fp: 0,
                registers: vec![0],
            },
            SnapshotState::Morris { exponent: 0 },
            SnapshotState::MinRegister { minimum: 0 },
        ] {
            let err = state.absorb_into(&mut deaf).unwrap_err();
            assert_eq!(err.to_string(), KIND_MISMATCH);
        }
    }

    #[test]
    fn merge_states_folds_and_refuses_empty() {
        let a = cm(vec![1, 0, 0, 0, 0, 0]);
        let b = cm(vec![0, 2, 0, 0, 0, 0]);
        let c = cm(vec![0, 0, 3, 0, 0, 0]);
        let merged = merge_states(MergePolicy::Add, &[&a, &b, &c]).unwrap();
        assert_eq!(merged, cm(vec![1, 2, 3, 0, 0, 0]));
        assert!(merge_states(MergePolicy::Add, &[]).is_err());
    }
}
