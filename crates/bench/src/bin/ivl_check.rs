//! `ivl-check`: verdicts for externally recorded histories.
//!
//! ```text
//! usage: ivl_check <file> <spec> [--per-object] [--hb] [--json]
//!        ivl_check --replicated <file>... <spec> [--hb] [--json]
//!   <file>  history in the ivl-spec text format (see ivl_spec::io)
//!   <spec>  counter | incdec | max | min
//!   --per-object  project the history per object id and check each
//!           projection separately against <spec>, printing one
//!           verdict row per object — Theorem 1's locality,
//!           operationally: the history is IVL iff every row is
//!   --replicated  treat each <file> as one replica's client-side
//!           history of the same replicated run (the loadgen
//!           `--history-out FILE.replicaK` files) and check every
//!           replica's per-object projection; the composed verdict is
//!           their conjunction — Theorem 1's locality applied across
//!           replicas, which is exactly what makes the merged read's
//!           composed envelope sound: `ErrorEnvelope::compose` only
//!           widens bounds, so the merge is IVL iff its parts are
//!   --hb    also print the happens-before summary of the history
//!           (precedence pairs, concurrent pairs, max overlap)
//!   --json  render the --hb summary as JSON, and append a verdict
//!           object `{"checker": "exact"|"monotone", "ops": N,
//!           "ivl": bool, "linearizable": bool|null}` — or, with
//!           --per-object, `{"objects": [{"object": ID, "ops": N,
//!           "checker": ..., "ivl": bool, "linearizable": bool|null},
//!           ...], "ivl": bool}`, or, with --replicated,
//!           `{"replicas": [{"file": PATH, "objects": [...],
//!           "ivl": bool}, ...], "ivl": bool}` (see README schemas)
//! ```
//!
//! Prints the timeline, the linearizability verdict, the IVL verdict
//! and (for monotone specs) the per-query IVL intervals. Histories
//! larger than the exact search bound skip the timeline and the
//! exponential checks: monotone specs fall back to the linear-time
//! monotone interval checker (printing only violating intervals), the
//! non-monotone `incdec` spec is rejected. Which checker produced the
//! verdict is always surfaced: a stderr note in human mode, the
//! `"checker"` field with `--json` — the two checkers prove different
//! statements (exact search vs. monotone interval bounds), so a
//! consumer must know which one it got. A history mentioning several
//! object ids is rejected by the whole-history paths (they would mix
//! objects' values) and must be checked with `--per-object`. Exit
//! status: 0 if IVL, 2 if not, 1 on usage/parse errors.

use ivl_analyzer::history_hb_summary;
use ivl_spec::history::History;
use ivl_spec::io::parse_history;
use ivl_spec::ivl::{check_ivl_exact, check_ivl_monotone, monotone_query_bounds};
use ivl_spec::linearize::{check_linearizable, MAX_EXACT_OPS};
use ivl_spec::render::render_timeline;
use ivl_spec::spec::{MonotoneSpec, ObjectSpec};
use ivl_spec::specs::{BatchedCounterSpec, IncDecCounterSpec, MaxRegisterSpec, MinRegisterSpec};
use std::fmt::Debug;
use std::process::ExitCode;

/// Adapters giving the CLI specs a `u64` query argument (ignored), so
/// one file format serves all of them.
macro_rules! arg_ignoring_spec {
    ($name:ident, $inner:ty, $update:ty, $value:ty) => {
        #[derive(Clone, Debug)]
        struct $name;

        impl ObjectSpec for $name {
            type Update = $update;
            type Query = u64;
            type Value = $value;
            type State = <$inner as ObjectSpec>::State;

            fn initial_state(&self) -> Self::State {
                <$inner>::default().initial_state()
            }

            fn apply_update(&self, state: &mut Self::State, update: &Self::Update) {
                <$inner>::default().apply_update(state, update)
            }

            fn eval_query(&self, state: &Self::State, _q: &u64) -> Self::Value {
                <$inner>::default().eval_query(state, &())
            }
        }
    };
}

arg_ignoring_spec!(CounterCli, BatchedCounterSpec, u64, u64);
arg_ignoring_spec!(IncDecCli, IncDecCounterSpec, i64, i64);
arg_ignoring_spec!(MaxCli, MaxRegisterSpec, u64, u64);
arg_ignoring_spec!(MinCli, MinRegisterSpec, u64, u64);

impl MonotoneSpec for CounterCli {}
impl MonotoneSpec for MaxCli {}
impl MonotoneSpec for MinCli {}
// IncDecCli is deliberately not monotone.

/// Options shared by the spec-dispatched check paths.
#[derive(Clone, Copy, Default)]
struct CheckOpts {
    hb: bool,
    json: bool,
    per_object: bool,
    replicated: bool,
}

fn print_hb<U, Q, V>(h: &History<U, Q, V>, opts: CheckOpts)
where
    U: Clone + Debug,
    Q: Clone + Debug,
    V: Clone + Debug,
{
    if !opts.hb {
        return;
    }
    let summary = history_hb_summary(h);
    if opts.json {
        println!("{}", summary.to_json());
    } else {
        println!("{}", summary.render());
    }
}

/// Surfaces which checker produced the verdict: a JSON verdict object
/// on stdout with `--json`, a stderr note in human mode (stderr so
/// scripts scraping stdout see only the documented output).
fn report_checker(opts: CheckOpts, checker: &str, ops: usize, ivl: bool, lin: Option<bool>) {
    if opts.json {
        let lin = lin.map_or_else(|| "null".to_owned(), |l| l.to_string());
        println!(
            "{{\"checker\": \"{checker}\", \"ops\": {ops}, \"ivl\": {ivl}, \
             \"linearizable\": {lin}}}"
        );
    } else {
        eprintln!("note: verdict produced by the {checker} checker");
    }
}

/// One `--per-object` verdict row.
struct ObjectRow {
    object: u32,
    ops: usize,
    checker: &'static str,
    ivl: bool,
    linearizable: Option<bool>,
}

/// The `"objects"` array body of a per-object JSON verdict.
fn rows_json(rows: &[ObjectRow]) -> String {
    let objects: Vec<String> = rows
        .iter()
        .map(|r| {
            let lin = r
                .linearizable
                .map_or_else(|| "null".to_owned(), |l| l.to_string());
            format!(
                "{{\"object\": {}, \"ops\": {}, \"checker\": \"{}\", \
                 \"ivl\": {}, \"linearizable\": {lin}}}",
                r.object, r.ops, r.checker, r.ivl
            )
        })
        .collect();
    objects.join(", ")
}

/// The human-readable per-object verdict rows.
fn print_rows(rows: &[ObjectRow]) {
    for r in rows {
        let shown = if r.ivl { "IVL" } else { "VIOLATION" };
        println!(
            "  object {:>3}: {:>6} ops  {:9}  ({} checker)",
            r.object, r.ops, shown, r.checker
        );
    }
}

/// Prints the per-object verdict table (or its JSON form) and returns
/// the Theorem 1 conjunction: the history is IVL iff every projection
/// is.
fn report_objects(opts: CheckOpts, rows: &[ObjectRow]) -> bool {
    let all = rows.iter().all(|r| r.ivl);
    if opts.json {
        println!("{{\"objects\": [{}], \"ivl\": {all}}}", rows_json(rows));
    } else {
        println!("per-object verdicts (Theorem 1 locality):");
        print_rows(rows);
        println!("history IVL iff every projection is (Theorem 1): {all}");
    }
    all
}

/// `--per-object`: check each object's projection separately against
/// the one CLI spec. Projections small enough for the exact search get
/// it (plus a linearizability verdict); larger ones fall back to the
/// linear-time monotone interval checker.
fn check_per_object<S>(spec: S, text: &str, opts: CheckOpts) -> Result<bool, String>
where
    S: MonotoneSpec + ObjectSpec<Query = u64> + Clone,
    S::Update: std::str::FromStr + Debug,
    S::Value: std::str::FromStr + Debug + std::fmt::Display,
{
    let h: History<S::Update, u64, S::Value> = parse_history(text).map_err(|e| e.to_string())?;
    print_hb(&h, opts);
    let rows = object_rows(&spec, &h)?;
    Ok(report_objects(opts, &rows))
}

/// One verdict row per object id in the history, each projection
/// checked separately (exact when small enough, monotone otherwise).
fn object_rows<S>(spec: &S, h: &History<S::Update, u64, S::Value>) -> Result<Vec<ObjectRow>, String>
where
    S: MonotoneSpec + ObjectSpec<Query = u64> + Clone,
    S::Update: Debug,
    S::Value: Debug + std::fmt::Display,
{
    let mut objects = h.objects();
    objects.sort_by_key(|o| o.0);
    if objects.is_empty() {
        return Err("history mentions no objects".into());
    }
    let mut rows = Vec::new();
    for object in objects {
        let proj = h.project(object);
        let ops = proj.operations().len();
        let row = if ops > MAX_EXACT_OPS {
            ObjectRow {
                object: object.0,
                ops,
                checker: "monotone",
                ivl: check_ivl_monotone(spec, &proj).is_ivl(),
                linearizable: None,
            }
        } else {
            // The exact checkers index their spec slice by object id,
            // and a projection keeps the id it had in the full
            // history — pad the roster out to reach it.
            let specs = vec![spec.clone(); object.0 as usize + 1];
            ObjectRow {
                object: object.0,
                ops,
                checker: "exact",
                ivl: check_ivl_exact(&specs, &proj).is_ivl(),
                linearizable: Some(check_linearizable(&specs, &proj).is_linearizable()),
            }
        };
        rows.push(row);
    }
    Ok(rows)
}

/// `--replicated`: each file is one replica's client-side history of
/// the same run. Every replica's per-object projection must be IVL on
/// its own — that is the precondition under which the replication
/// layer's merged read is sound: `ErrorEnvelope::compose` only widens
/// part envelopes, so a merged read can only violate IVL if some part
/// already did. The composed verdict is the conjunction (Theorem 1's
/// locality, applied across objects *and* replicas).
fn check_replicated<S>(spec: S, files: &[String], opts: CheckOpts) -> Result<bool, String>
where
    S: MonotoneSpec + ObjectSpec<Query = u64> + Clone,
    S::Update: std::str::FromStr + Debug,
    S::Value: std::str::FromStr + Debug + std::fmt::Display,
{
    let mut parts = Vec::new();
    let mut all = true;
    for path in files {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let h: History<S::Update, u64, S::Value> =
            parse_history(&text).map_err(|e| format!("{path}: {e}"))?;
        print_hb(&h, opts);
        let rows = object_rows(&spec, &h).map_err(|e| format!("{path}: {e}"))?;
        let ok = rows.iter().all(|r| r.ivl);
        all &= ok;
        if opts.json {
            parts.push(format!(
                "{{\"file\": \"{path}\", \"objects\": [{}], \"ivl\": {ok}}}",
                rows_json(&rows)
            ));
        } else {
            println!("replica history {path}:");
            print_rows(&rows);
        }
    }
    if opts.json {
        println!("{{\"replicas\": [{}], \"ivl\": {all}}}", parts.join(", "));
    } else {
        println!(
            "merged reads IVL iff every replica projection is \
             (Theorem 1 across replicas; compose only widens): {all}"
        );
    }
    Ok(all)
}

/// Guard for the whole-history paths: they check one object at a
/// time, so a multi-object history must be projected via
/// `--per-object` instead of silently mixing objects. Returns the
/// spec-roster length the exact checkers need (they index specs by
/// object id, which need not be 0 in a projection file).
fn single_object_pad<U: Clone, Q: Clone, V: Clone>(h: &History<U, Q, V>) -> Result<usize, String> {
    let objects = h.objects();
    if objects.len() > 1 {
        return Err(format!(
            "history mentions {} objects; check each projection with --per-object \
             (Theorem 1: the history is IVL iff every projection is)",
            objects.len()
        ));
    }
    Ok(objects.first().map_or(0, |o| o.0 as usize) + 1)
}

fn check<S>(spec: S, text: &str, monotone: bool, opts: CheckOpts) -> Result<bool, String>
where
    S: MonotoneSpec + ObjectSpec<Query = u64> + Clone,
    S::Update: std::str::FromStr + Debug,
    S::Value: std::str::FromStr + Debug + std::fmt::Display,
{
    let h: History<S::Update, u64, S::Value> = parse_history(text).map_err(|e| e.to_string())?;
    let pad = single_object_pad(&h)?;
    let ops = h.operations().len();
    if ops > MAX_EXACT_OPS {
        print_hb(&h, opts);
        println!(
            "{ops} ops exceeds the exact search bound ({MAX_EXACT_OPS}); \
             using the linear-time monotone interval checker"
        );
        let ivl = check_ivl_monotone(&spec, &h);
        println!("IVL (monotone): {}", ivl.is_ivl());
        for qb in monotone_query_bounds(&spec, &h) {
            if !qb.in_bounds() {
                println!(
                    "  {:>5}: {} <= {} <= {}  VIOLATION",
                    qb.id, qb.lower, qb.actual, qb.upper
                );
            }
        }
        report_checker(opts, "monotone", ops, ivl.is_ivl(), None);
        return Ok(ivl.is_ivl());
    }
    println!("{}", render_timeline(&h));
    print_hb(&h, opts);
    let specs = vec![spec.clone(); pad];
    let lin = check_linearizable(&specs, &h);
    println!("linearizable : {}", lin.is_linearizable());
    let ivl = check_ivl_exact(&specs, &h);
    println!("IVL          : {ivl:?}");
    if monotone {
        println!("\nper-query IVL intervals:");
        for qb in monotone_query_bounds(&spec, &h) {
            let mark = if qb.in_bounds() { "ok " } else { "VIOLATION" };
            println!(
                "  {:>5}: {} <= {} <= {}  {mark}",
                qb.id, qb.lower, qb.actual, qb.upper
            );
        }
    }
    report_checker(
        opts,
        "exact",
        ops,
        ivl.is_ivl(),
        Some(lin.is_linearizable()),
    );
    Ok(ivl.is_ivl())
}

/// Exact check only, for the non-monotone inc/dec spec.
fn check_exact_only<S>(spec: S, text: &str, opts: CheckOpts) -> Result<bool, String>
where
    S: ObjectSpec<Query = u64> + Clone,
    S::Update: std::str::FromStr + Debug,
    S::Value: std::str::FromStr + Debug,
{
    let h: History<S::Update, u64, S::Value> = parse_history(text).map_err(|e| e.to_string())?;
    let pad = single_object_pad(&h)?;
    let ops = h.operations().len();
    if ops > MAX_EXACT_OPS {
        return Err(format!(
            "{ops} ops exceeds the exact search bound ({MAX_EXACT_OPS}) and \
             this spec is not monotone; record a smaller history"
        ));
    }
    println!("{}", render_timeline(&h));
    print_hb(&h, opts);
    let specs = vec![spec.clone(); pad];
    let lin = check_linearizable(&specs, &h);
    println!("linearizable : {}", lin.is_linearizable());
    let ivl = check_ivl_exact(&specs, &h);
    println!("IVL          : {ivl:?}");
    report_checker(
        opts,
        "exact",
        ops,
        ivl.is_ivl(),
        Some(lin.is_linearizable()),
    );
    Ok(ivl.is_ivl())
}

fn main() -> ExitCode {
    let mut opts = CheckOpts::default();
    let mut positional: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--hb" => opts.hb = true,
            "--json" => opts.json = true,
            "--per-object" => opts.per_object = true,
            "--replicated" => opts.replicated = true,
            _ => positional.push(arg),
        }
    }
    if opts.replicated {
        // One history per replica, spec last: the file list is open
        // ended, so the two-positional gate does not apply.
        if positional.len() < 2 {
            eprintln!("usage: ivl_check --replicated <file>... <counter|max|min> [--hb] [--json]");
            return ExitCode::from(1);
        }
        let spec_name = positional.last().expect("gated above").clone();
        let files = &positional[..positional.len() - 1];
        let outcome = match spec_name.as_str() {
            "counter" => check_replicated(CounterCli, files, opts),
            "max" => check_replicated(MaxCli, files, opts),
            "min" => check_replicated(MinCli, files, opts),
            other => {
                eprintln!("--replicated needs a monotone spec (counter|max|min), not `{other}`");
                return ExitCode::from(1);
            }
        };
        return match outcome {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::from(2),
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(1)
            }
        };
    }
    if positional.len() != 2 {
        eprintln!(
            "usage: ivl_check <file> <counter|incdec|max|min> [--per-object] [--hb] [--json]\n\
             \x20      ivl_check --replicated <file>... <counter|max|min> [--hb] [--json]"
        );
        return ExitCode::from(1);
    }
    let text = match std::fs::read_to_string(&positional[0]) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", positional[0]);
            return ExitCode::from(1);
        }
    };
    let outcome = match (positional[1].as_str(), opts.per_object) {
        ("counter", false) => check(CounterCli, &text, true, opts),
        ("max", false) => check(MaxCli, &text, true, opts),
        ("min", false) => check(MinCli, &text, true, opts),
        ("counter", true) => check_per_object(CounterCli, &text, opts),
        ("max", true) => check_per_object(MaxCli, &text, opts),
        ("min", true) => check_per_object(MinCli, &text, opts),
        ("incdec", false) => check_exact_only(IncDecCli, &text, opts),
        ("incdec", true) => {
            eprintln!("--per-object needs a monotone spec (counter|max|min), not incdec");
            return ExitCode::from(1);
        }
        (other, _) => {
            eprintln!("unknown spec `{other}` (counter|incdec|max|min)");
            return ExitCode::from(1);
        }
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(2),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}
