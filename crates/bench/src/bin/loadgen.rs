//! `loadgen`: multi-threaded load generator for `ivl-service`.
//!
//! ```text
//! usage: loadgen [--threads N] [--ops N] [--keys N] [--queries N]
//!                [--batch N] [--shards N] [--no-check]
//! ```
//!
//! Boots an in-process recording server, hammers it over real TCP with
//! `--threads` ingest connections (Zipf keys, batched frames) plus one
//! querying connection, prints throughput and the server's own STATS
//! view, then drains and replays the recorded history through the IVL
//! checkers: the monotone interval checker over the full run, and the
//! exact (exponential) checker over a second, small run that fits
//! under its operation limit. Exit status 2 if any check fails.

use ivl_bench::{mops, timed_scope, Worker};
use ivl_service::server::{serve, ServerConfig};
use ivl_service::{Client, ClientError, ErrorCode};
use ivl_sketch::stream::ZipfStream;
use ivl_spec::ivl::{check_ivl_exact, check_ivl_monotone};
use ivl_spec::linearize::MAX_EXACT_OPS;
use std::process::ExitCode;
use std::time::Instant;

struct Opts {
    threads: usize,
    ops: u64,
    keys: usize,
    queries: u64,
    batch: usize,
    shards: usize,
    check: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            threads: 4,
            ops: 20_000,
            keys: 512,
            queries: 2_000,
            batch: 32,
            shards: 8,
            check: true,
        }
    }
}

fn parse() -> Option<Opts> {
    let mut o = Opts::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = || args.next()?.parse::<u64>().ok();
        match arg.as_str() {
            "--threads" => o.threads = val()? as usize,
            "--ops" => o.ops = val()?,
            "--keys" => o.keys = (val()? as usize).max(2),
            "--queries" => o.queries = val()?,
            "--batch" => o.batch = (val()? as usize).clamp(1, 4096),
            "--shards" => o.shards = val()? as usize,
            "--no-check" => o.check = false,
            _ => return None,
        }
    }
    Some(o)
}

/// One ingest connection: `ops` weighted updates in `batch`-sized
/// frames over Zipf-distributed keys. A `busy` answer (more ingest
/// connections than shards) is backpressure, not failure: back off and
/// retry until a peer hangs up and frees its shard lease.
fn ingest_client(addr: std::net::SocketAddr, ops: u64, keys: usize, batch: usize, seed: u64) {
    let mut client = Client::connect(addr).expect("connect ingest");
    let mut stream = ZipfStream::new(keys, 1.1, seed);
    let mut pending = Vec::with_capacity(batch);
    let mut sent = 0u64;
    while sent < ops {
        pending.clear();
        while pending.len() < batch && sent < ops {
            let key = stream.next_item();
            pending.push((key, 1 + key % 3));
            sent += 1;
        }
        loop {
            match client.batch(&pending) {
                Ok(_) => break,
                Err(ClientError::Server {
                    code: ErrorCode::Busy,
                    ..
                    // lint:allow sleep — load generator backs off on server Busy by design
                }) => std::thread::sleep(std::time::Duration::from_millis(1)),
                Err(e) => panic!("batch failed: {e}"),
            }
        }
    }
}

fn run_load(o: &Opts) -> Result<(), String> {
    let cfg = ServerConfig {
        shards: o.shards,
        record: o.check,
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).map_err(|e| e.to_string())?;
    let addr = handle.addr();
    let params = handle.params();
    println!(
        "server on {addr} — {} shards, width {}, depth {} (alpha {:.4}, delta {:.4})",
        o.shards,
        params.width,
        params.depth,
        params.alpha(),
        params.delta()
    );

    let mut workers: Vec<Worker<'_>> = (0..o.threads)
        .map(|t| -> Worker<'_> {
            let (ops, keys, batch) = (o.ops, o.keys, o.batch);
            Box::new(move || ingest_client(addr, ops, keys, batch, 0x10ad ^ t as u64))
        })
        .collect();
    let (queries, keys) = (o.queries, o.keys);
    workers.push(Box::new(move || {
        let mut client = Client::connect(addr).expect("connect querier");
        let mut stream = ZipfStream::new(keys, 1.1, 0xbeef);
        for _ in 0..queries {
            let env = client.query(stream.next_item()).expect("query answered");
            assert!(
                env.estimate >= env.lower_bound(),
                "inconsistent envelope: {env:?}"
            );
        }
    }));
    let wall = timed_scope(workers);

    let total_updates = o.ops * o.threads as u64;
    println!(
        "load: {} updates + {} queries over {} conns in {:.3}s — {:.2} Mops/s end-to-end",
        total_updates,
        o.queries,
        o.threads + 1,
        wall.as_secs_f64(),
        mops(total_updates + o.queries, wall)
    );
    let s = handle.stats();
    println!(
        "stats: {} updates, {} queries, {} batches, stream {}, \
         update p50/p99 {}/{} ns, query p50/p99 {}/{} ns",
        s.updates,
        s.queries,
        s.batches,
        s.stream_len,
        s.update_p50_ns,
        s.update_p99_ns,
        s.query_p50_ns,
        s.query_p99_ns
    );
    if s.updates != total_updates {
        return Err(format!(
            "server counted {} updates, loadgen sent {total_updates}",
            s.updates
        ));
    }

    let joined = handle.join();
    if o.check {
        let history = joined.history.expect("recording was on");
        let events = history.events().len();
        let t0 = Instant::now();
        let verdict = check_ivl_monotone(&joined.spec, &history);
        println!(
            "IVL (monotone interval checker): {} over {events} events in {:.3}s",
            verdict.is_ivl(),
            t0.elapsed().as_secs_f64()
        );
        if !verdict.is_ivl() {
            return Err("recorded serving history is not IVL".into());
        }
    }
    Ok(())
}

/// A second, tiny run whose history fits the exact checker's bound.
fn run_exact_check() -> Result<(), String> {
    let cfg = ServerConfig {
        shards: 2,
        record: true,
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).map_err(|e| e.to_string())?;
    let addr = handle.addr();
    let workers: Vec<Worker<'_>> = (0..2)
        .map(|t| -> Worker<'_> {
            Box::new(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..8u64 {
                    client.update(i % 3, 1 + t).expect("update");
                }
                for key in 0..3u64 {
                    client.query(key).expect("query");
                }
            })
        })
        .collect();
    timed_scope(workers);
    let joined = handle.join();
    let history = joined.history.expect("recording was on");
    let ops = history.operations().len();
    assert!(ops <= MAX_EXACT_OPS, "exact-check run too large: {ops} ops");
    let verdict = check_ivl_exact(std::slice::from_ref(&joined.spec), &history);
    println!("IVL (exact checker): {} over {ops} ops", verdict.is_ivl());
    if verdict.is_ivl() {
        Ok(())
    } else {
        Err("small serving history fails the exact IVL check".into())
    }
}

fn main() -> ExitCode {
    let Some(opts) = parse() else {
        eprintln!(
            "usage: loadgen [--threads N] [--ops N] [--keys N] [--queries N] \
             [--batch N] [--shards N] [--no-check]"
        );
        return ExitCode::from(1);
    };
    let outcome = run_load(&opts).and_then(|()| {
        if opts.check {
            run_exact_check()
        } else {
            Ok(())
        }
    });
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("FAILED: {e}");
            ExitCode::from(2)
        }
    }
}
