//! `loadgen`: multi-threaded load generator for `ivl-service`.
//!
//! ```text
//! usage: loadgen [--backend threaded|event-loop|both] [--threads N]
//!                [--ops N] [--keys N] [--queries N] [--batch N]
//!                [--shards N] [--write-buffer B] [--addr HOST:PORT]
//!                [--json FILE] [--history-out FILE] [--shutdown]
//!                [--no-check]
//! ```
//!
//! By default boots an in-process recording server, hammers it over
//! real TCP with `--threads` ingest connections (Zipf keys, batched
//! frames) plus one querying connection, prints throughput and
//! client-side p50/p95/p99 latencies, then drains and replays the
//! recorded history through the IVL checkers (monotone over the full
//! run, exact over a second tiny run). Exit status 2 if a check fails.
//!
//! `--backend both` runs the same total load twice — once per serving
//! backend, both times with 4x `--threads` ingest connections on the
//! same shard budget. That connection count is beyond what the
//! threaded backend's lease pool sustains (its surplus connections
//! busy-bounce against the shard budget), while the event loop
//! multiplexes all of them over its reactors without a single `busy`,
//! so the comparison shows what serving 4x the provisioned
//! concurrency costs each backend at the tail.
//!
//! `--addr` drives an external server (e.g. a separately launched
//! `ivl_serve`) instead of booting one; server-side history checks are
//! skipped, but `--history-out` still records a *client-side* counter
//! history — each batch is a counter update of its total weight, each
//! query a counter read returning the envelope's stream length — in
//! the `ivl_spec::io` text format, replayable with
//! `ivl_check <file> counter`. `--shutdown` sends a SHUTDOWN frame
//! when the load finishes.

use ivl_bench::{mops, timed_scope, Worker};
use ivl_service::server::{serve, Backend, ServerConfig};
use ivl_service::{Client, ClientError, ErrorCode, StatsReport};
use ivl_sketch::stream::ZipfStream;
use ivl_spec::history::{History, HistoryBuilder, ObjectId, ProcessId};
use ivl_spec::io::write_history;
use ivl_spec::ivl::{check_ivl_exact, check_ivl_monotone};
use ivl_spec::linearize::MAX_EXACT_OPS;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How many times more ingest connections than `--threads` the
/// `--backend both` comparison offers each backend (same shard
/// budget, same total ops).
const COMPARE_CONN_MULTIPLIER: usize = 4;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Single(Backend),
    Both,
}

struct Opts {
    mode: Mode,
    threads: usize,
    ops: u64,
    keys: usize,
    queries: u64,
    batch: usize,
    shards: usize,
    write_buffer: u64,
    check: bool,
    addr: Option<String>,
    json: Option<String>,
    history_out: Option<String>,
    shutdown: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            mode: Mode::Single(Backend::Threaded),
            threads: 4,
            ops: 20_000,
            keys: 512,
            queries: 2_000,
            batch: 32,
            shards: 8,
            write_buffer: 0,
            check: true,
            addr: None,
            json: None,
            history_out: None,
            shutdown: false,
        }
    }
}

fn parse() -> Option<Opts> {
    let mut o = Opts::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = || args.next()?.parse::<u64>().ok();
        match arg.as_str() {
            "--threads" => o.threads = (num()? as usize).max(1),
            "--ops" => o.ops = num()?,
            "--keys" => o.keys = (num()? as usize).max(2),
            "--queries" => o.queries = num()?,
            "--batch" => o.batch = (num()? as usize).clamp(1, 4096),
            "--shards" => o.shards = num()? as usize,
            "--write-buffer" => o.write_buffer = num()?,
            "--no-check" => o.check = false,
            "--shutdown" => o.shutdown = true,
            "--backend" => {
                o.mode = match args.next()?.as_str() {
                    "both" => Mode::Both,
                    one => Mode::Single(one.parse().ok()?),
                }
            }
            "--addr" => o.addr = Some(args.next()?),
            "--json" => o.json = Some(args.next()?),
            "--history-out" => o.history_out = Some(args.next()?),
            _ => return None,
        }
    }
    Some(o)
}

/// Client-side latency samples, merged across workers.
#[derive(Default)]
struct Samples(Mutex<Vec<u64>>);

impl Samples {
    fn push_all(&self, mut local: Vec<u64>) {
        self.0.lock().unwrap().append(&mut local);
    }

    /// Sorted samples; consumes the accumulator.
    fn sorted(self) -> Vec<u64> {
        let mut v = self.0.into_inner().unwrap();
        v.sort_unstable();
        v
    }
}

/// Nearest-rank percentile over an already-sorted slice.
fn pct(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

#[derive(Clone, Copy)]
struct Tail {
    p50: u64,
    p95: u64,
    p99: u64,
}

impl Tail {
    fn of(sorted: &[u64]) -> Tail {
        Tail {
            p50: pct(sorted, 0.50),
            p95: pct(sorted, 0.95),
            p99: pct(sorted, 0.99),
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"p50\": {}, \"p95\": {}, \"p99\": {}}}",
            self.p50, self.p95, self.p99
        )
    }
}

/// A client-side counter history of the run: batches become counter
/// updates of their total weight, queries become counter reads of the
/// envelope's stream length. Replayable with `ivl_check <file>
/// counter`.
struct ClientRecorder {
    builder: Mutex<HistoryBuilder<u64, u64, u64>>,
}

impl ClientRecorder {
    fn new() -> Self {
        ClientRecorder {
            builder: Mutex::new(HistoryBuilder::new()),
        }
    }

    fn finish(self) -> History<u64, u64, u64> {
        self.builder.into_inner().unwrap().finish()
    }
}

struct RunOutcome {
    backend: String,
    ingest_conns: usize,
    total_updates: u64,
    wall: Duration,
    batch_ns: Tail,
    query_ns: Tail,
    stats: StatsReport,
}

impl RunOutcome {
    fn json(&self, queries: u64) -> String {
        format!(
            "    {{\n      \"backend\": \"{}\",\n      \"ingest_conns\": {},\n      \
             \"total_updates\": {},\n      \"queries\": {},\n      \"wall_s\": {:.6},\n      \
             \"throughput_mops\": {:.4},\n      \"batch_ns\": {},\n      \"query_ns\": {},\n      \
             \"server\": {{\"busy_rejections\": {}, \"frames\": {}, \"wakeups\": {}, \
             \"ready_peak\": {}}}\n    }}",
            self.backend,
            self.ingest_conns,
            self.total_updates,
            queries,
            self.wall.as_secs_f64(),
            mops(self.total_updates + queries, self.wall),
            self.batch_ns.json(),
            self.query_ns.json(),
            self.stats.busy_rejections,
            self.stats.frames,
            self.stats.wakeups,
            self.stats.ready_peak,
        )
    }
}

/// One ingest connection: `ops` weighted updates in `batch`-sized
/// frames over Zipf-distributed keys, timing each batch roundtrip. A
/// `busy` answer (more ingest connections than threaded-backend
/// shards) is backpressure, not failure: back off and retry until a
/// peer hangs up and frees its shard lease.
#[allow(clippy::too_many_arguments)]
fn ingest_client(
    addr: SocketAddr,
    ops: u64,
    keys: usize,
    batch: usize,
    seed: u64,
    lat: &Samples,
    recorder: Option<&ClientRecorder>,
    process: ProcessId,
) {
    let mut client = Client::connect(addr).expect("connect ingest");
    let mut stream = ZipfStream::new(keys, 1.1, seed);
    let mut pending = Vec::with_capacity(batch);
    let mut local = Vec::with_capacity((ops as usize).div_ceil(batch));
    let mut sent = 0u64;
    while sent < ops {
        pending.clear();
        while pending.len() < batch && sent < ops {
            let key = stream.next_item();
            pending.push((key, 1 + key % 3));
            sent += 1;
        }
        let weight: u64 = pending.iter().map(|&(_, w)| w).sum();
        let op = recorder.map(|r| {
            r.builder
                .lock()
                .unwrap()
                .invoke_update(process, ObjectId(0), weight)
        });
        let t0 = Instant::now();
        loop {
            match client.batch(&pending) {
                Ok(_) => break,
                Err(ClientError::Server {
                    code: ErrorCode::Busy,
                    ..
                    // lint:allow sleep — load generator backs off on server Busy by design
                }) => std::thread::sleep(Duration::from_millis(1)),
                Err(e) => panic!("batch failed: {e}"),
            }
        }
        local.push(t0.elapsed().as_nanos() as u64);
        if let (Some(r), Some(op)) = (recorder, op) {
            r.builder.lock().unwrap().respond_update(op);
        }
    }
    lat.push_all(local);
}

/// The querying connection: `queries` Zipf point queries, each checked
/// for envelope consistency and timed.
fn query_client(
    addr: SocketAddr,
    queries: u64,
    keys: usize,
    lat: &Samples,
    recorder: Option<&ClientRecorder>,
    process: ProcessId,
) {
    let mut client = Client::connect(addr).expect("connect querier");
    let mut stream = ZipfStream::new(keys, 1.1, 0xbeef);
    let mut local = Vec::with_capacity(queries as usize);
    for _ in 0..queries {
        let key = stream.next_item();
        let op = recorder.map(|r| {
            r.builder
                .lock()
                .unwrap()
                .invoke_query(process, ObjectId(0), 0)
        });
        let t0 = Instant::now();
        let env = client.query(key).expect("query answered");
        local.push(t0.elapsed().as_nanos() as u64);
        if let (Some(r), Some(op)) = (recorder, op) {
            r.builder.lock().unwrap().respond_query(op, env.stream_len);
        }
        assert!(
            env.estimate >= env.lower_bound(),
            "inconsistent envelope: {env:?}"
        );
    }
    lat.push_all(local);
}

/// Drives one full load against `addr`: `conns` ingest connections
/// splitting `total_ops` updates, plus one querying connection.
fn drive(
    addr: SocketAddr,
    o: &Opts,
    conns: usize,
    total_ops: u64,
    recorder: Option<&ClientRecorder>,
) -> (Duration, Tail, Tail, u64) {
    let batch_lat = Samples::default();
    let query_lat = Samples::default();
    let per_conn = total_ops / conns as u64;
    let total_updates = per_conn * conns as u64;
    let mut workers: Vec<Worker<'_>> = (0..conns)
        .map(|t| -> Worker<'_> {
            let (keys, batch) = (o.keys, o.batch);
            let (lat, rec) = (&batch_lat, recorder);
            Box::new(move || {
                ingest_client(
                    addr,
                    per_conn,
                    keys,
                    batch,
                    0x10ad ^ t as u64,
                    lat,
                    rec,
                    ProcessId(t as u32),
                )
            })
        })
        .collect();
    let (queries, keys) = (o.queries, o.keys);
    let (lat, rec) = (&query_lat, recorder);
    workers.push(Box::new(move || {
        query_client(addr, queries, keys, lat, rec, ProcessId(conns as u32));
    }));
    let wall = timed_scope(workers);
    let batches = batch_lat.sorted();
    let queries_sorted = query_lat.sorted();
    (
        wall,
        Tail::of(&batches),
        Tail::of(&queries_sorted),
        total_updates,
    )
}

/// One in-process run against the given backend; returns the outcome
/// for the JSON report, or an error string if a sanity or IVL check
/// fails.
fn run_in_process(o: &Opts, backend: Backend, conns: usize) -> Result<RunOutcome, String> {
    // Strict per-operation IVL only holds at write_buffer == 0; with
    // buffering, acknowledged updates may be briefly invisible (the
    // envelope's lag), so the recorded-history check is skipped.
    let strict = o.write_buffer == 0;
    let cfg = ServerConfig {
        backend,
        shards: o.shards,
        record: o.check && strict,
        write_buffer: o.write_buffer,
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).map_err(|e| e.to_string())?;
    let addr = handle.addr();
    let params = handle.params();
    println!(
        "server on {addr} [{backend} backend] — {} shards, width {}, depth {} \
         (alpha {:.4}, delta {:.4}, write-buffer {})",
        o.shards,
        params.width,
        params.depth,
        params.alpha(),
        params.delta(),
        o.write_buffer
    );

    let recorder = o.history_out.as_ref().map(|_| ClientRecorder::new());
    let total_ops = o.ops * o.threads as u64;
    let (wall, batch_ns, query_ns, total_updates) =
        drive(addr, o, conns, total_ops, recorder.as_ref());
    report(
        backend,
        conns,
        total_updates,
        o.queries,
        wall,
        batch_ns,
        query_ns,
    );

    let stats = handle.stats();
    println!(
        "stats: {} updates, {} queries, {} batches, {} frames, {} wakeups \
         (ready peak {}), stream {}, buffered pending {} ({} flushes), \
         update p50/p99 {}/{} ns, query p50/p99 {}/{} ns",
        stats.updates,
        stats.queries,
        stats.batches,
        stats.frames,
        stats.wakeups,
        stats.ready_peak,
        stats.stream_len,
        stats.buffered_pending,
        stats.flushes,
        stats.update_p50_ns,
        stats.update_p99_ns,
        stats.query_p50_ns,
        stats.query_p99_ns
    );
    if stats.updates != total_updates {
        return Err(format!(
            "server counted {} updates, loadgen sent {total_updates}",
            stats.updates
        ));
    }

    let joined = handle.join();
    if o.check && !strict {
        // Flush-on-drain sanity in lieu of the history check: after
        // join, every acknowledged update must be visible in the
        // drained sketch's stream estimate.
        let visible = joined.sketch.stream_len_estimate();
        if visible != stats.stream_len {
            return Err(format!(
                "drained sketch shows {visible} weight but {} was acknowledged \
                 — flush-on-drain lost updates",
                stats.stream_len
            ));
        }
        println!(
            "IVL history check skipped (write-buffer {} > 0: deferred visibility \
             is the advertised lag); flush-on-drain verified: {visible} weight visible",
            o.write_buffer
        );
    }
    if o.check && strict {
        let history = joined.history.expect("recording was on");
        let events = history.events().len();
        let t0 = Instant::now();
        let verdict = check_ivl_monotone(&joined.spec, &history);
        println!(
            "IVL (monotone interval checker): {} over {events} events in {:.3}s",
            verdict.is_ivl(),
            t0.elapsed().as_secs_f64()
        );
        if !verdict.is_ivl() {
            return Err(format!("recorded {backend} serving history is not IVL"));
        }
    }
    if let (Some(path), Some(rec)) = (&o.history_out, recorder) {
        write_client_history(path, rec)?;
    }
    Ok(RunOutcome {
        backend: backend.to_string(),
        ingest_conns: conns,
        total_updates,
        wall,
        batch_ns,
        query_ns,
        stats,
    })
}

/// Drives an already-running external server (`--addr`): no in-process
/// recording, but the client-side history and STATS are available.
fn run_external(o: &Opts, addr_text: &str) -> Result<RunOutcome, String> {
    let addr: SocketAddr = addr_text
        .parse()
        .map_err(|e| format!("bad --addr {addr_text}: {e}"))?;
    println!("driving external server on {addr}");
    let recorder = o.history_out.as_ref().map(|_| ClientRecorder::new());
    let total_ops = o.ops * o.threads as u64;
    let (wall, batch_ns, query_ns, total_updates) =
        drive(addr, o, o.threads, total_ops, recorder.as_ref());

    let mut probe = Client::connect(addr).map_err(|e| e.to_string())?;
    let stats = probe.stats().map_err(|e| e.to_string())?;
    let backend = format!("external({addr_text})");
    report_named(
        &backend,
        o.threads,
        total_updates,
        o.queries,
        wall,
        batch_ns,
        query_ns,
    );
    if o.shutdown {
        probe.shutdown().map_err(|e| e.to_string())?;
        println!("sent SHUTDOWN");
    }
    if let (Some(path), Some(rec)) = (&o.history_out, recorder) {
        write_client_history(path, rec)?;
    }
    Ok(RunOutcome {
        backend,
        ingest_conns: o.threads,
        total_updates,
        wall,
        batch_ns,
        query_ns,
        stats,
    })
}

fn report(
    backend: Backend,
    conns: usize,
    updates: u64,
    queries: u64,
    wall: Duration,
    batch_ns: Tail,
    query_ns: Tail,
) {
    report_named(
        &backend.to_string(),
        conns,
        updates,
        queries,
        wall,
        batch_ns,
        query_ns,
    );
}

fn report_named(
    backend: &str,
    conns: usize,
    updates: u64,
    queries: u64,
    wall: Duration,
    batch_ns: Tail,
    query_ns: Tail,
) {
    println!(
        "[{backend}] {updates} updates + {queries} queries over {} conns in {:.3}s \
         — {:.2} Mops/s end-to-end",
        conns + 1,
        wall.as_secs_f64(),
        mops(updates + queries, wall)
    );
    println!(
        "[{backend}] batch p50/p95/p99 {}/{}/{} ns, query p50/p95/p99 {}/{}/{} ns",
        batch_ns.p50, batch_ns.p95, batch_ns.p99, query_ns.p50, query_ns.p95, query_ns.p99
    );
}

/// Serializes the client-side counter history for `ivl_check`.
fn write_client_history(path: &str, rec: ClientRecorder) -> Result<(), String> {
    let history = rec.finish();
    let ops = history.operations().len();
    std::fs::write(path, write_history(&history))
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("client-side counter history: {ops} ops -> {path}");
    Ok(())
}

/// A second, tiny run whose history fits the exact checker's bound.
fn run_exact_check(backend: Backend) -> Result<(), String> {
    let cfg = ServerConfig {
        backend,
        shards: 2,
        record: true,
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).map_err(|e| e.to_string())?;
    let addr = handle.addr();
    let workers: Vec<Worker<'_>> = (0..2)
        .map(|t| -> Worker<'_> {
            Box::new(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..8u64 {
                    client.update(i % 3, 1 + t).expect("update");
                }
                for key in 0..3u64 {
                    client.query(key).expect("query");
                }
            })
        })
        .collect();
    timed_scope(workers);
    let joined = handle.join();
    let history = joined.history.expect("recording was on");
    let ops = history.operations().len();
    assert!(ops <= MAX_EXACT_OPS, "exact-check run too large: {ops} ops");
    let verdict = check_ivl_exact(std::slice::from_ref(&joined.spec), &history);
    println!(
        "IVL (exact checker, {backend}): {} over {ops} ops",
        verdict.is_ivl()
    );
    if verdict.is_ivl() {
        Ok(())
    } else {
        Err(format!(
            "small {backend} serving history fails the exact IVL check"
        ))
    }
}

fn write_json(o: &Opts, runs: &[RunOutcome]) -> Result<(), String> {
    let Some(path) = &o.json else { return Ok(()) };
    let body: Vec<String> = runs.iter().map(|r| r.json(o.queries)).collect();
    let doc = format!(
        "{{\n  \"bench\": \"ivl-service loadgen\",\n  \"keys\": {},\n  \"batch\": {},\n  \
         \"shards\": {},\n  \"write_buffer\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        o.keys,
        o.batch,
        o.shards,
        o.write_buffer,
        body.join(",\n")
    );
    std::fs::write(path, doc).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

fn run(o: &Opts) -> Result<(), String> {
    let mut runs = Vec::new();
    if let Some(addr) = &o.addr {
        runs.push(run_external(o, addr)?);
    } else {
        match o.mode {
            Mode::Single(backend) => {
                runs.push(run_in_process(o, backend, o.threads)?);
                if o.check {
                    run_exact_check(backend)?;
                }
            }
            Mode::Both => {
                let conns = o.threads * COMPARE_CONN_MULTIPLIER;
                runs.push(run_in_process(o, Backend::Threaded, conns)?);
                runs.push(run_in_process(o, Backend::EventLoop, conns)?);
                let (t, e) = (&runs[0], &runs[1]);
                println!(
                    "compare at {conns} conns on {} shards: \
                     batch p99 {} ns (event-loop) vs {} ns (threaded, {} busy \
                     bounces); query p99 {} ns vs {} ns; event-loop busy \
                     rejections: {}",
                    o.shards,
                    e.batch_ns.p99,
                    t.batch_ns.p99,
                    t.stats.busy_rejections,
                    e.query_ns.p99,
                    t.query_ns.p99,
                    e.stats.busy_rejections,
                );
                if e.stats.busy_rejections == 0 && e.batch_ns.p99 <= t.batch_ns.p99 {
                    println!(
                        "compare: event-loop sustained {}x the lease-budget \
                         connections at equal or better ingest p99",
                        conns / o.shards.max(1)
                    );
                }
                if o.check {
                    run_exact_check(Backend::Threaded)?;
                    run_exact_check(Backend::EventLoop)?;
                }
            }
        }
    }
    write_json(o, &runs)
}

fn main() -> ExitCode {
    let Some(opts) = parse() else {
        eprintln!(
            "usage: loadgen [--backend threaded|event-loop|both] [--threads N] \
             [--ops N] [--keys N] [--queries N] [--batch N] [--shards N] \
             [--write-buffer B] [--addr HOST:PORT] [--json FILE] \
             [--history-out FILE] [--shutdown] [--no-check]"
        );
        return ExitCode::from(1);
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("FAILED: {e}");
            ExitCode::from(2)
        }
    }
}
