//! `loadgen`: multi-threaded load generator for `ivl-service`.
//!
//! ```text
//! usage: loadgen [--backend threaded|event-loop|both] [--threads N]
//!                [--ops N] [--keys N] [--queries N] [--batch N]
//!                [--shards N] [--write-buffer B] [--mix SPEC]
//!                [--replicas N] [--mode partition|mirror]
//!                [--query-ratio R] [--no-delta] [--rejoin]
//!                [--addr HOST:PORT] [--json FILE] [--history-out FILE]
//!                [--shutdown] [--no-check]
//! ```
//!
//! By default boots an in-process recording server, hammers it over
//! real TCP with `--threads` ingest connections (Zipf keys, batched
//! frames) plus one querying connection, prints throughput and
//! client-side p50/p95/p99 latencies, then drains and replays the
//! recorded history through the IVL checkers (one monotone verdict per
//! registered object — Theorem 1 locality — plus an exact check over a
//! second tiny run). Exit status 2 if a check fails.
//!
//! `--mix cm=8,hll=1,morris=1` spreads the load over several
//! registered objects by weight (names double as object kinds; a
//! `name:kind` entry such as `hits:hll=1` drives an object whose name
//! differs from its kind, e.g. one registered on an external server
//! with `ivl_serve --object hits=hll`; the CountMin always serves as
//! object 0). Latency tails are reported per object, both in text and
//! under `"objects"` in `--json`.
//!
//! `--backend both` runs the same total load twice — once per serving
//! backend, both times with 4x `--threads` ingest connections on the
//! same shard budget. That connection count is beyond what the
//! threaded backend's lease pool sustains (its surplus connections
//! busy-bounce against the shard budget), while the event loop
//! multiplexes all of them over its reactors without a single `busy`,
//! so the comparison shows what serving 4x the provisioned
//! concurrency costs each backend at the tail.
//!
//! `--addr` drives an external server (e.g. a separately launched
//! `ivl_serve`) instead of booting one; server-side history checks are
//! skipped, but `--history-out` still records a *client-side* counter
//! history — each batch is a counter update of its total weight, each
//! query a counter read returning the envelope's stream length — in
//! the `ivl_spec::io` text format, replayable with
//! `ivl_check <file> counter`. `--shutdown` sends a SHUTDOWN frame
//! when the load finishes.
//!
//! `--replicas N` appends replicated runs after the normal ones: N
//! in-process servers sharing a seed, every ingest worker driving its
//! own `ReplicaGroup` in `--mode partition` (default) or `mirror`,
//! plus the `N == 1` degenerate group as a baseline when `N > 1`.
//! Reported tails are the *merged* batch/query latencies (the group's
//! route-split sends and merge-on-query reads), with per-replica rows:
//! partition-mode batch tails per routed replica, and direct
//! single-replica query tails for the merge-on-query overhead
//! comparison. `--history-out` writes one client-side counter history
//! per replica (`FILE.replicaK`) — partition attributes each routed
//! sub-batch to its replica, mirror attributes every batch to every
//! replica, and queries respond with the merged read's per-part
//! observed weights — replayable with `ivl_check --replicated`.
//!
//! `--rejoin` runs the anti-entropy acceptance scenario instead of the
//! normal runs: 3 partitioned in-process replicas (or `--replicas N`,
//! N >= 2) take a pre-kill load, one is killed and restarted empty at
//! the same address, and the driver measures the composed envelope's
//! `lag` at each stage — pre-kill (L0), during the outage, widened on
//! rejoin detection (the forgotten weight), and after the group's
//! catch-up push — failing (exit 2) unless the post-catch-up lag
//! returns within 2x L0. Updates routed to the dead replica are held
//! client-side and replayed after the rejoin, so each per-replica
//! `--history-out` history stays a faithful record of what that
//! replica acknowledged (the catch-up push itself is re-delivered
//! weight, not a new update, and is deliberately not recorded).
//! Time-to-convergence and the catch-up counters land in `--json`.
//!
//! `--query-ratio R` sizes the query load so queries make up fraction
//! `R` of all operations (overriding `--queries`) — the query-heavy
//! mixes where the group's delta-cached merged reads pay off. The
//! replicated report then carries merged-read accounting: how the
//! snapshot roundtrips split across `unchanged`/delta/full replies
//! and the bytes they moved, in text and under `"merged_reads"` in
//! `--json`. `--no-delta` turns the querier's delta cache off (every
//! merged read fetches full snapshots), giving the like-for-like
//! wire-byte baseline the delta path is judged against.

use ivl_bench::{mops, timed_scope, Worker};
use ivl_replica::{DeltaStats, MergedRead, ReplicaError, ReplicaGroup, ReplicaMode};
use ivl_service::objects::{ObjectConfig, ObjectKind};
use ivl_service::server::{serve, Backend, ServerConfig};
use ivl_service::{Client, ClientError, ErrorCode, ErrorEnvelope, StatsReport};
use ivl_sketch::stream::ZipfStream;
use ivl_spec::history::{History, HistoryBuilder, ObjectId, ProcessId};
use ivl_spec::io::write_history;
use ivl_spec::ivl::check_ivl_exact;
use ivl_spec::linearize::MAX_EXACT_OPS;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How many times more ingest connections than `--threads` the
/// `--backend both` comparison offers each backend (same shard
/// budget, same total ops).
const COMPARE_CONN_MULTIPLIER: usize = 4;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Single(Backend),
    Both,
}

/// One `--mix` component: a named object and its share of the load.
#[derive(Clone)]
struct MixEntry {
    name: String,
    kind: ObjectKind,
    weight: u64,
}

/// Parses `cm=8,hll=1,morris=1` (weight defaults to 1).
fn parse_mix(spec: &str) -> Option<Vec<MixEntry>> {
    let mut entries = Vec::new();
    for part in spec.split(',') {
        let (label, weight) = match part.split_once('=') {
            Some((n, w)) => (n, w.parse::<u64>().ok().filter(|&w| w > 0)?),
            None => (part, 1),
        };
        // `name:kind` names an object whose name is not a kind string
        // (e.g. `hits:hll`); a bare label doubles as both.
        let (name, kind) = match label.split_once(':') {
            Some((n, k)) => (n, k),
            None => (label, label),
        };
        entries.push(MixEntry {
            name: name.to_owned(),
            kind: kind.parse().ok()?,
            weight,
        });
    }
    // The CountMin anchors object 0 (v1 compatibility): move it to the
    // front, or prepend a zero-traffic one if the mix has none.
    if let Some(pos) = entries.iter().position(|e| e.kind == ObjectKind::CountMin) {
        let cm = entries.remove(pos);
        entries.insert(0, cm);
    } else {
        entries.insert(
            0,
            MixEntry {
                name: "cm".to_owned(),
                kind: ObjectKind::CountMin,
                weight: 0,
            },
        );
    }
    Some(entries)
}

/// The resolved traffic plan: object roster, wire ids, and cumulative
/// weight buckets for deterministic weighted selection.
struct MixPlan {
    entries: Vec<MixEntry>,
    ids: Vec<u32>,
    total_weight: u64,
}

impl MixPlan {
    fn resolve(entries: &[MixEntry], ids: Vec<u32>) -> Self {
        assert_eq!(entries.len(), ids.len());
        let total_weight = entries.iter().map(|e| e.weight).sum::<u64>().max(1);
        MixPlan {
            entries: entries.to_vec(),
            ids,
            total_weight,
        }
    }

    /// In-process plan: object id == roster index.
    fn in_process(entries: &[MixEntry]) -> Self {
        MixPlan::resolve(entries, (0..entries.len() as u32).collect())
    }

    fn object_configs(&self) -> Vec<ObjectConfig> {
        self.entries
            .iter()
            .map(|e| ObjectConfig::new(&e.name, e.kind))
            .collect()
    }

    /// Deterministic weighted pick: maps `seq` into the cumulative
    /// weight buckets, so every `total_weight` consecutive picks hit
    /// each entry exactly `weight` times.
    fn pick(&self, seq: u64) -> usize {
        let mut slot = seq % self.total_weight;
        for (idx, e) in self.entries.iter().enumerate() {
            if slot < e.weight {
                return idx;
            }
            slot -= e.weight;
        }
        0
    }
}

struct Opts {
    mode: Mode,
    threads: usize,
    ops: u64,
    keys: usize,
    queries: u64,
    batch: usize,
    shards: usize,
    write_buffer: u64,
    mix: Vec<MixEntry>,
    replicas: usize,
    replica_mode: ReplicaMode,
    query_ratio: Option<f64>,
    delta_reads: bool,
    rejoin: bool,
    check: bool,
    addr: Option<String>,
    json: Option<String>,
    history_out: Option<String>,
    shutdown: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            mode: Mode::Single(Backend::Threaded),
            threads: 4,
            ops: 20_000,
            keys: 512,
            queries: 2_000,
            batch: 32,
            shards: 8,
            write_buffer: 0,
            mix: parse_mix("cm").expect("default mix parses"),
            replicas: 0,
            replica_mode: ReplicaMode::Partition,
            query_ratio: None,
            delta_reads: true,
            rejoin: false,
            check: true,
            addr: None,
            json: None,
            history_out: None,
            shutdown: false,
        }
    }
}

fn parse() -> Option<Opts> {
    let mut o = Opts::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = || args.next()?.parse::<u64>().ok();
        match arg.as_str() {
            "--threads" => o.threads = (num()? as usize).max(1),
            "--ops" => o.ops = num()?,
            "--keys" => o.keys = (num()? as usize).max(2),
            "--queries" => o.queries = num()?,
            "--batch" => o.batch = (num()? as usize).clamp(1, 4096),
            "--shards" => o.shards = num()? as usize,
            "--write-buffer" => o.write_buffer = num()?,
            "--mix" => o.mix = parse_mix(&args.next()?)?,
            "--replicas" => o.replicas = num()? as usize,
            "--mode" => o.replica_mode = args.next()?.parse().ok()?,
            "--query-ratio" => {
                let r = args.next()?.parse::<f64>().ok()?;
                if !(0.0..1.0).contains(&r) {
                    return None;
                }
                o.query_ratio = Some(r);
            }
            "--no-delta" => o.delta_reads = false,
            "--rejoin" => o.rejoin = true,
            "--no-check" => o.check = false,
            "--shutdown" => o.shutdown = true,
            "--backend" => {
                o.mode = match args.next()?.as_str() {
                    "both" => Mode::Both,
                    one => Mode::Single(one.parse().ok()?),
                }
            }
            "--addr" => o.addr = Some(args.next()?),
            "--json" => o.json = Some(args.next()?),
            "--history-out" => o.history_out = Some(args.next()?),
            _ => return None,
        }
    }
    // `--query-ratio R` sizes the querying connection's load so that
    // queries make up fraction R of all operations: with U total
    // updates, Q = U·R/(1−R) queries, overriding `--queries`.
    if let Some(r) = o.query_ratio {
        let total_updates = o.ops * o.threads as u64;
        o.queries = ((total_updates as f64) * r / (1.0 - r)).round() as u64;
    }
    Some(o)
}

/// Client-side latency samples, merged across workers.
#[derive(Default)]
struct Samples(Mutex<Vec<u64>>);

impl Samples {
    fn push_all(&self, mut local: Vec<u64>) {
        self.0.lock().unwrap().append(&mut local);
    }

    /// Sorted samples; consumes the accumulator.
    fn sorted(self) -> Vec<u64> {
        let mut v = self.0.into_inner().unwrap();
        v.sort_unstable();
        v
    }
}

/// Nearest-rank percentile over an already-sorted slice.
fn pct(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

#[derive(Clone, Copy)]
struct Tail {
    p50: u64,
    p95: u64,
    p99: u64,
}

impl Tail {
    fn of(sorted: &[u64]) -> Tail {
        Tail {
            p50: pct(sorted, 0.50),
            p95: pct(sorted, 0.95),
            p99: pct(sorted, 0.99),
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"p50\": {}, \"p95\": {}, \"p99\": {}}}",
            self.p50, self.p95, self.p99
        )
    }
}

/// A client-side counter history of the run: batches become counter
/// updates of their total weight, queries become counter reads of the
/// envelope's stream length. Replayable with `ivl_check <file>
/// counter`.
struct ClientRecorder {
    builder: Mutex<HistoryBuilder<u64, u64, u64>>,
}

impl ClientRecorder {
    fn new() -> Self {
        ClientRecorder {
            builder: Mutex::new(HistoryBuilder::new()),
        }
    }

    fn finish(self) -> History<u64, u64, u64> {
        self.builder.into_inner().unwrap().finish()
    }
}

/// Per-object latency tails for the report.
struct ObjLat {
    name: String,
    batch_ns: Tail,
    query_ns: Tail,
}

struct RunOutcome {
    backend: String,
    ingest_conns: usize,
    total_updates: u64,
    wall: Duration,
    batch_ns: Tail,
    query_ns: Tail,
    objects: Vec<ObjLat>,
    stats: StatsReport,
    /// Merged-read snapshot accounting (replicated runs only): how the
    /// group's reads split across unchanged/delta/full replies and
    /// what they cost on the wire.
    merged_reads: Option<DeltaStats>,
}

impl RunOutcome {
    fn json(&self, queries: u64) -> String {
        let objects: Vec<String> = self
            .objects
            .iter()
            .map(|o| {
                format!(
                    "{{\"name\": \"{}\", \"batch_ns\": {}, \"query_ns\": {}}}",
                    o.name,
                    o.batch_ns.json(),
                    o.query_ns.json()
                )
            })
            .collect();
        let merged_reads = match &self.merged_reads {
            Some(d) => format!(
                ",\n      \"merged_reads\": {{\"reads\": {}, \"unchanged\": {}, \
                 \"deltas\": {}, \"fulls\": {}, \"unchanged_rate\": {:.4}, \
                 \"bytes_out\": {}, \"bytes_in\": {}}}",
                d.reads,
                d.unchanged,
                d.deltas,
                d.fulls,
                d.unchanged_rate(),
                d.bytes_out,
                d.bytes_in,
            ),
            None => String::new(),
        };
        format!(
            "    {{\n      \"backend\": \"{}\",\n      \"ingest_conns\": {},\n      \
             \"total_updates\": {},\n      \"queries\": {},\n      \"wall_s\": {:.6},\n      \
             \"throughput_mops\": {:.4},\n      \"batch_ns\": {},\n      \"query_ns\": {},\n      \
             \"objects\": [{}],\n      \
             \"server\": {{\"busy_rejections\": {}, \"frames\": {}, \"wakeups\": {}, \
             \"ready_peak\": {}}}{}\n    }}",
            self.backend,
            self.ingest_conns,
            self.total_updates,
            queries,
            self.wall.as_secs_f64(),
            mops(self.total_updates + queries, self.wall),
            self.batch_ns.json(),
            self.query_ns.json(),
            objects.join(", "),
            self.stats.busy_rejections,
            self.stats.frames,
            self.stats.wakeups,
            self.stats.ready_peak,
            merged_reads,
        )
    }
}

/// Decorrelated-jitter backoff for `busy` retries: each pause is
/// `min(cap, uniform(base, 3·prev))`. The old fixed 1 ms sleep made
/// every bounced worker retry in lockstep — they re-collided on the
/// same exhausted shard pool and the batch p99 smeared across tens of
/// milliseconds; jitter desynchronizes the herd so a freed lease is
/// usually contested by one worker, not all of them.
struct Backoff {
    rng: u64,
    last_us: u64,
}

impl Backoff {
    /// Shortest pause — well under a lease-return round trip.
    const BASE_US: u64 = 100;
    /// Longest pause — a few ms, past which waiting stops helping.
    const CAP_US: u64 = 4_000;

    fn new(seed: u64) -> Self {
        Backoff {
            // xorshift rejects the all-zero state.
            rng: seed | 1,
            last_us: Self::BASE_US,
        }
    }

    /// xorshift64* step.
    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Sleeps for the next decorrelated interval. No reset on success:
    /// the next draw re-derives from the last pause, so a worker that
    /// just waited long decays back toward `base` within a few draws.
    fn pause(&mut self) {
        let hi = self
            .last_us
            .saturating_mul(3)
            .clamp(Self::BASE_US + 1, Self::CAP_US);
        self.last_us = Self::BASE_US + self.next_u64() % (hi - Self::BASE_US);
        // lint:allow sleep — load generator backs off on server Busy by design
        std::thread::sleep(Duration::from_micros(self.last_us));
    }
}

/// One ingest connection: `ops` weighted updates in `batch`-sized
/// frames over Zipf-distributed keys, each batch routed to a mix
/// object by weighted round-robin and timed per object. A `busy`
/// answer (more ingest connections than threaded-backend shards) is
/// backpressure, not failure: back off and retry until a peer hangs
/// up and frees its shard lease.
#[allow(clippy::too_many_arguments)]
fn ingest_client(
    addr: SocketAddr,
    ops: u64,
    keys: usize,
    batch: usize,
    seed: u64,
    plan: &MixPlan,
    lats: &[Samples],
    recorder: Option<&ClientRecorder>,
    process: ProcessId,
) {
    let mut client = Client::connect(addr).expect("connect ingest");
    let mut stream = ZipfStream::new(keys, 1.1, seed);
    let mut backoff = Backoff::new(seed ^ 0xb0ff);
    let mut pending = Vec::with_capacity(batch);
    let mut locals: Vec<Vec<u64>> = vec![Vec::new(); plan.entries.len()];
    let mut sent = 0u64;
    let mut seq = 0u64;
    while sent < ops {
        pending.clear();
        while pending.len() < batch && sent < ops {
            let key = stream.next_item();
            pending.push((key, 1 + key % 3));
            sent += 1;
        }
        // Offset each connection's rotation so the mix interleaves
        // across connections instead of synchronizing on one object.
        let obj_idx = plan.pick(seq.wrapping_add(seed));
        seq += 1;
        let object = plan.ids[obj_idx];
        let weight: u64 = pending.iter().map(|&(_, w)| w).sum();
        let op = recorder.map(|r| {
            r.builder
                .lock()
                .unwrap()
                .invoke_update(process, ObjectId(object), weight)
        });
        let t0 = Instant::now();
        loop {
            match client.object_id(object).batch(&pending) {
                Ok(_) => break,
                Err(ClientError::Server {
                    code: ErrorCode::Busy,
                    ..
                }) => backoff.pause(),
                Err(e) => panic!("batch failed: {e}"),
            }
        }
        locals[obj_idx].push(t0.elapsed().as_nanos() as u64);
        if let (Some(r), Some(op)) = (recorder, op) {
            r.builder.lock().unwrap().respond_update(op);
        }
    }
    for (lat, local) in lats.iter().zip(locals) {
        lat.push_all(local);
    }
}

/// The querying connection: `queries` Zipf point queries spread over
/// the mix objects, each checked for envelope consistency and timed.
fn query_client(
    addr: SocketAddr,
    queries: u64,
    keys: usize,
    plan: &MixPlan,
    lats: &[Samples],
    recorder: Option<&ClientRecorder>,
    process: ProcessId,
) {
    let mut client = Client::connect(addr).expect("connect querier");
    let mut stream = ZipfStream::new(keys, 1.1, 0xbeef);
    let mut locals: Vec<Vec<u64>> = vec![Vec::new(); plan.entries.len()];
    for i in 0..queries {
        let key = stream.next_item();
        let obj_idx = plan.pick(i);
        let object = plan.ids[obj_idx];
        let op = recorder.map(|r| {
            r.builder
                .lock()
                .unwrap()
                .invoke_query(process, ObjectId(object), 0)
        });
        let t0 = Instant::now();
        let env = client.object_id(object).query(key).expect("query answered");
        locals[obj_idx].push(t0.elapsed().as_nanos() as u64);
        if let (Some(r), Some(op)) = (recorder, op) {
            // Every envelope kind exposes `observed` (acknowledged
            // update weight), so each projection replays as a counter.
            r.builder.lock().unwrap().respond_query(op, env.observed());
        }
        if let ErrorEnvelope::Frequency(env) = &env {
            assert!(
                env.estimate >= env.lower_bound(),
                "inconsistent envelope: {env:?}"
            );
        }
    }
    for (lat, local) in lats.iter().zip(locals) {
        lat.push_all(local);
    }
}

/// Drives one full load against `addr`: `conns` ingest connections
/// splitting `total_ops` updates, plus one querying connection.
/// Returns wall time, overall batch/query tails, per-object latency
/// rows, and the update count actually sent.
fn drive(
    addr: SocketAddr,
    o: &Opts,
    conns: usize,
    total_ops: u64,
    plan: &MixPlan,
    recorder: Option<&ClientRecorder>,
) -> (Duration, Tail, Tail, Vec<ObjLat>, u64) {
    let batch_lat: Vec<Samples> = (0..plan.entries.len())
        .map(|_| Samples::default())
        .collect();
    let query_lat: Vec<Samples> = (0..plan.entries.len())
        .map(|_| Samples::default())
        .collect();
    let per_conn = total_ops / conns as u64;
    let total_updates = per_conn * conns as u64;
    let mut workers: Vec<Worker<'_>> = (0..conns)
        .map(|t| -> Worker<'_> {
            let (keys, batch) = (o.keys, o.batch);
            let (lat, rec) = (&batch_lat, recorder);
            Box::new(move || {
                ingest_client(
                    addr,
                    per_conn,
                    keys,
                    batch,
                    0x10ad ^ t as u64,
                    plan,
                    lat,
                    rec,
                    ProcessId(t as u32),
                )
            })
        })
        .collect();
    let (queries, keys) = (o.queries, o.keys);
    let (lat, rec) = (&query_lat, recorder);
    workers.push(Box::new(move || {
        query_client(addr, queries, keys, plan, lat, rec, ProcessId(conns as u32));
    }));
    let wall = timed_scope(workers);
    let mut all_batches = Vec::new();
    let mut all_queries = Vec::new();
    let mut objects = Vec::with_capacity(plan.entries.len());
    for ((entry, b), q) in plan.entries.iter().zip(batch_lat).zip(query_lat) {
        let b = b.sorted();
        let q = q.sorted();
        objects.push(ObjLat {
            name: entry.name.clone(),
            batch_ns: Tail::of(&b),
            query_ns: Tail::of(&q),
        });
        all_batches.extend(b);
        all_queries.extend(q);
    }
    all_batches.sort_unstable();
    all_queries.sort_unstable();
    (
        wall,
        Tail::of(&all_batches),
        Tail::of(&all_queries),
        objects,
        total_updates,
    )
}

/// One in-process run against the given backend; returns the outcome
/// for the JSON report, or an error string if a sanity or IVL check
/// fails.
fn run_in_process(o: &Opts, backend: Backend, conns: usize) -> Result<RunOutcome, String> {
    // Strict per-operation IVL only holds at write_buffer == 0; with
    // buffering, acknowledged updates may be briefly invisible (the
    // envelope's lag), so the recorded-history check is skipped.
    let strict = o.write_buffer == 0;
    let plan = MixPlan::in_process(&o.mix);
    let cfg = ServerConfig {
        backend,
        shards: o.shards,
        record: o.check && strict,
        write_buffer: o.write_buffer,
        objects: plan.object_configs(),
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).map_err(|e| e.to_string())?;
    let addr = handle.addr();
    let params = handle.params();
    let roster: Vec<String> = plan
        .entries
        .iter()
        .map(|e| format!("{}x{}", e.name, e.weight))
        .collect();
    println!(
        "server on {addr} [{backend} backend] — {} shards, width {}, depth {} \
         (alpha {:.4}, delta {:.4}, write-buffer {}), mix [{}]",
        o.shards,
        params.width,
        params.depth,
        params.alpha(),
        params.delta(),
        o.write_buffer,
        roster.join(", ")
    );

    let recorder = o.history_out.as_ref().map(|_| ClientRecorder::new());
    let total_ops = o.ops * o.threads as u64;
    let (wall, batch_ns, query_ns, objects, total_updates) =
        drive(addr, o, conns, total_ops, &plan, recorder.as_ref());
    report(
        backend,
        conns,
        total_updates,
        o.queries,
        wall,
        batch_ns,
        query_ns,
    );
    report_objects(&backend.to_string(), &objects);

    let stats = handle.stats();
    println!(
        "stats: {} updates, {} queries, {} batches, {} frames, {} wakeups \
         (ready peak {}), stream {}, buffered pending {} ({} flushes), \
         update p50/p99 {}/{} ns, query p50/p99 {}/{} ns",
        stats.updates,
        stats.queries,
        stats.batches,
        stats.frames,
        stats.wakeups,
        stats.ready_peak,
        stats.stream_len,
        stats.buffered_pending,
        stats.flushes,
        stats.update_p50_ns,
        stats.update_p99_ns,
        stats.query_p50_ns,
        stats.query_p99_ns
    );
    if stats.updates != total_updates {
        return Err(format!(
            "server counted {} updates, loadgen sent {total_updates}",
            stats.updates
        ));
    }

    let joined = handle.join();
    if o.check && !strict {
        // Flush-on-drain sanity in lieu of the history check: after
        // join, every acknowledged CountMin update must be visible in
        // the drained sketch's stream estimate.
        let visible = joined.sketch().stream_len_estimate();
        let acknowledged = joined.registry.cm(0).expect("object 0").stream_len();
        if visible != acknowledged {
            return Err(format!(
                "drained sketch shows {visible} weight but {acknowledged} was acknowledged \
                 — flush-on-drain lost updates"
            ));
        }
        println!(
            "IVL history check skipped (write-buffer {} > 0: deferred visibility \
             is the advertised lag); flush-on-drain verified: {visible} weight visible",
            o.write_buffer
        );
    }
    if o.check && strict {
        let events = joined
            .history
            .as_ref()
            .map(|h| h.events().len())
            .unwrap_or(0);
        let t0 = Instant::now();
        let verdicts = joined.verdicts().expect("recording was on");
        println!(
            "IVL (monotone interval checker, per object) over {events} events in {:.3}s:",
            t0.elapsed().as_secs_f64()
        );
        for v in &verdicts {
            let shown = match v.ivl {
                Some(ok) => ok.to_string(),
                None => "waived".to_owned(),
            };
            println!(
                "  object {} {} [{}]: {} over {} ops",
                v.id, v.name, v.kind, shown, v.ops
            );
            if v.ivl == Some(false) {
                return Err(format!(
                    "recorded {backend} projection for object {} ({}) is not IVL",
                    v.id, v.name
                ));
            }
        }
    }
    if let (Some(path), Some(rec)) = (&o.history_out, recorder) {
        write_client_history(path, rec)?;
    }
    Ok(RunOutcome {
        backend: backend.to_string(),
        ingest_conns: conns,
        total_updates,
        wall,
        batch_ns,
        query_ns,
        objects,
        stats,
        merged_reads: None,
    })
}

/// Drives an already-running external server (`--addr`): no in-process
/// recording, but the client-side history and STATS are available.
fn run_external(o: &Opts, addr_text: &str) -> Result<RunOutcome, String> {
    let addr: SocketAddr = addr_text
        .parse()
        .map_err(|e| format!("bad --addr {addr_text}: {e}"))?;
    println!("driving external server on {addr}");
    let mut probe = Client::connect(addr).map_err(|e| e.to_string())?;
    // Resolve mix names against the external server's roster: the
    // wire ids are whatever the server registered, not our indices.
    let infos = probe.objects().map_err(|e| e.to_string())?;
    let ids: Vec<u32> = o
        .mix
        .iter()
        .map(|e| {
            infos
                .iter()
                .find(|i| i.name == e.name)
                .map(|i| i.id)
                .ok_or_else(|| format!("external server has no object named {:?}", e.name))
        })
        .collect::<Result<_, _>>()?;
    let plan = MixPlan::resolve(&o.mix, ids);
    let recorder = o.history_out.as_ref().map(|_| ClientRecorder::new());
    let total_ops = o.ops * o.threads as u64;
    let (wall, batch_ns, query_ns, objects, total_updates) =
        drive(addr, o, o.threads, total_ops, &plan, recorder.as_ref());

    let stats = probe.stats().map_err(|e| e.to_string())?;
    let backend = format!("external({addr_text})");
    report_named(
        &backend,
        o.threads,
        total_updates,
        o.queries,
        wall,
        batch_ns,
        query_ns,
    );
    report_objects(&backend, &objects);
    if o.shutdown {
        probe.shutdown().map_err(|e| e.to_string())?;
        println!("sent SHUTDOWN");
    }
    if let (Some(path), Some(rec)) = (&o.history_out, recorder) {
        write_client_history(path, rec)?;
    }
    Ok(RunOutcome {
        backend,
        ingest_conns: o.threads,
        total_updates,
        wall,
        batch_ns,
        query_ns,
        objects,
        stats,
        merged_reads: None,
    })
}

fn report(
    backend: Backend,
    conns: usize,
    updates: u64,
    queries: u64,
    wall: Duration,
    batch_ns: Tail,
    query_ns: Tail,
) {
    report_named(
        &backend.to_string(),
        conns,
        updates,
        queries,
        wall,
        batch_ns,
        query_ns,
    );
}

fn report_named(
    backend: &str,
    conns: usize,
    updates: u64,
    queries: u64,
    wall: Duration,
    batch_ns: Tail,
    query_ns: Tail,
) {
    println!(
        "[{backend}] {updates} updates + {queries} queries over {} conns in {:.3}s \
         — {:.2} Mops/s end-to-end",
        conns + 1,
        wall.as_secs_f64(),
        mops(updates + queries, wall)
    );
    println!(
        "[{backend}] batch p50/p95/p99 {}/{}/{} ns, query p50/p95/p99 {}/{}/{} ns",
        batch_ns.p50, batch_ns.p95, batch_ns.p99, query_ns.p50, query_ns.p95, query_ns.p99
    );
}

/// Per-object latency rows (printed only when the mix has more than
/// one object — a single-object run's rows equal the overall tails).
fn report_objects(backend: &str, objects: &[ObjLat]) {
    if objects.len() < 2 {
        return;
    }
    for o in objects {
        println!(
            "[{backend}] {:8} batch p50/p95/p99 {}/{}/{} ns, query p50/p95/p99 {}/{}/{} ns",
            o.name,
            o.batch_ns.p50,
            o.batch_ns.p95,
            o.batch_ns.p99,
            o.query_ns.p50,
            o.query_ns.p95,
            o.query_ns.p99
        );
    }
}

/// Serializes the client-side counter history for `ivl_check`.
fn write_client_history(path: &str, rec: ClientRecorder) -> Result<(), String> {
    let history = rec.finish();
    let ops = history.operations().len();
    std::fs::write(path, write_history(&history))
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("client-side counter history: {ops} ops -> {path}");
    Ok(())
}

/// Retries a group write for as long as the refusal is backpressure
/// (a replica's `busy` shard budget), like the single-server path.
fn group_batch_retrying(
    group: &mut ReplicaGroup,
    backoff: &mut Backoff,
    object: u32,
    items: &[(u64, u64)],
) -> Result<(), String> {
    loop {
        match group.batch(object, items) {
            Ok(_) => return Ok(()),
            Err(ReplicaError::Client(ClientError::Server {
                code: ErrorCode::Busy,
                ..
            })) => backoff.pause(),
            Err(e) => return Err(format!("replicated batch failed: {e}")),
        }
    }
}

/// One replicated ingest worker: its own [`ReplicaGroup`] over the
/// shared roster. Partition mode pre-splits each batch by the group's
/// key route so the send latency of each sub-batch is attributable to
/// one replica; mirror mode fans the whole batch and only the merged
/// latency is meaningful.
#[allow(clippy::too_many_arguments)]
fn replicated_ingest(
    addrs: &[String],
    mode: ReplicaMode,
    seed_group: u64,
    ops: u64,
    keys: usize,
    batch: usize,
    seed: u64,
    plan: &MixPlan,
    merged_lat: &Samples,
    replica_lat: &[Samples],
    recorders: Option<&Vec<ClientRecorder>>,
    process: ProcessId,
) {
    let n = addrs.len();
    let mut group =
        ReplicaGroup::new(addrs.to_vec(), mode, seed_group).expect("non-empty replica group");
    let mut stream = ZipfStream::new(keys, 1.1, seed);
    let mut backoff = Backoff::new(seed ^ 0xb0ff);
    let mut pending = Vec::with_capacity(batch);
    let mut merged_local = Vec::new();
    let mut replica_local: Vec<Vec<u64>> = vec![Vec::new(); n];
    let mut sent = 0u64;
    let mut seq = 0u64;
    while sent < ops {
        pending.clear();
        while pending.len() < batch && sent < ops {
            let key = stream.next_item();
            pending.push((key, 1 + key % 3));
            sent += 1;
        }
        let object = plan.ids[plan.pick(seq.wrapping_add(seed))];
        seq += 1;
        match mode {
            ReplicaMode::Partition => {
                let mut subs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
                for &(k, w) in &pending {
                    subs[group.route(k)].push((k, w));
                }
                for (r, sub) in subs.iter().enumerate() {
                    if sub.is_empty() {
                        continue;
                    }
                    let weight: u64 = sub.iter().map(|&(_, w)| w).sum();
                    let op = recorders.map(|rec| {
                        rec[r].builder.lock().unwrap().invoke_update(
                            process,
                            ObjectId(object),
                            weight,
                        )
                    });
                    let t0 = Instant::now();
                    group_batch_retrying(&mut group, &mut backoff, object, sub)
                        .expect("partitioned batch");
                    let ns = t0.elapsed().as_nanos() as u64;
                    merged_local.push(ns);
                    replica_local[r].push(ns);
                    if let (Some(rec), Some(op)) = (recorders, op) {
                        rec[r].builder.lock().unwrap().respond_update(op);
                    }
                }
            }
            ReplicaMode::Mirror => {
                let weight: u64 = pending.iter().map(|&(_, w)| w).sum();
                let ops_per_replica: Option<Vec<_>> = recorders.map(|rec| {
                    rec.iter()
                        .map(|r| {
                            r.builder.lock().unwrap().invoke_update(
                                process,
                                ObjectId(object),
                                weight,
                            )
                        })
                        .collect()
                });
                let t0 = Instant::now();
                group_batch_retrying(&mut group, &mut backoff, object, &pending)
                    .expect("mirrored batch");
                merged_local.push(t0.elapsed().as_nanos() as u64);
                if let (Some(rec), Some(ops)) = (recorders, ops_per_replica) {
                    for (r, op) in rec.iter().zip(ops) {
                        r.builder.lock().unwrap().respond_update(op);
                    }
                }
            }
        }
    }
    merged_lat.push_all(merged_local);
    for (lat, local) in replica_lat.iter().zip(replica_local) {
        lat.push_all(local);
    }
}

/// The replicated querier: merged reads through the group (timed as
/// the merged tail, recorded per replica with the read's per-part
/// observed weights) interleaved with direct single-replica queries
/// for the per-replica baseline the merge overhead is judged against.
#[allow(clippy::too_many_arguments)]
fn replicated_query(
    addrs: &[String],
    mode: ReplicaMode,
    seed_group: u64,
    queries: u64,
    keys: usize,
    plan: &MixPlan,
    merged_lat: &Samples,
    replica_lat: &[Samples],
    recorders: Option<&Vec<ClientRecorder>>,
    process: ProcessId,
    delta_reads: bool,
    delta_out: &Mutex<DeltaStats>,
) {
    let n = addrs.len();
    let mut group =
        ReplicaGroup::new(addrs.to_vec(), mode, seed_group).expect("non-empty replica group");
    group.set_delta_reads(delta_reads);
    let mut direct: Vec<Client> = addrs
        .iter()
        .map(|a| Client::connect(a.parse::<SocketAddr>().expect("replica addr")))
        .collect::<Result<_, _>>()
        .expect("connect direct queriers");
    let mut stream = ZipfStream::new(keys, 1.1, 0xbeef);
    let mut merged_local = Vec::new();
    let mut replica_local: Vec<Vec<u64>> = vec![Vec::new(); n];
    for i in 0..queries {
        let key = stream.next_item();
        let object = plan.ids[plan.pick(i)];
        let ops_per_replica: Option<Vec<_>> = recorders.map(|rec| {
            rec.iter()
                .map(|r| {
                    r.builder
                        .lock()
                        .unwrap()
                        .invoke_query(process, ObjectId(object), 0)
                })
                .collect()
        });
        let t0 = Instant::now();
        let read = group.query(object, key).expect("merged query answered");
        merged_local.push(t0.elapsed().as_nanos() as u64);
        if let (Some(rec), Some(ops)) = (recorders, ops_per_replica) {
            for ((r, op), part) in rec.iter().zip(ops).zip(&read.parts) {
                let observed = part.expect("all replicas reachable in-process");
                r.builder.lock().unwrap().respond_query(op, observed);
            }
        }
        if let ErrorEnvelope::Frequency(env) = &read.envelope {
            assert!(
                env.estimate >= env.lower_bound(),
                "inconsistent merged envelope: {env:?}"
            );
        }
        let r = (i % n as u64) as usize;
        let t0 = Instant::now();
        direct[r]
            .object_id(object)
            .query(key)
            .expect("direct query answered");
        replica_local[r].push(t0.elapsed().as_nanos() as u64);
    }
    merged_lat.push_all(merged_local);
    for (lat, local) in replica_lat.iter().zip(replica_local) {
        lat.push_all(local);
    }
    *delta_out.lock().unwrap() = group.delta_stats();
}

/// Boots `n` in-process replicas sharing a seed and drives them
/// through per-worker [`ReplicaGroup`]s. Overall tails are the merged
/// group latencies; the per-"object" rows are per-replica tails.
/// `delta_reads` false runs the full-snapshot merged-read baseline
/// (labelled `-full`) the delta path is compared against.
fn run_replicated(
    o: &Opts,
    backend: Backend,
    n: usize,
    delta_reads: bool,
) -> Result<RunOutcome, String> {
    let mode = o.replica_mode;
    let plan = MixPlan::in_process(&o.mix);
    let handles: Vec<_> = (0..n)
        .map(|_| {
            serve(
                "127.0.0.1:0",
                ServerConfig {
                    backend,
                    shards: o.shards,
                    write_buffer: o.write_buffer,
                    objects: plan.object_configs(),
                    ..ServerConfig::default()
                },
            )
        })
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    let seed_group = ServerConfig::default().seed;
    let addrs: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();
    println!(
        "replicated: {n} replicas [{}] in {mode} mode ({backend} backend, seed {seed_group})",
        addrs.join(", ")
    );

    let merged_batch = Samples::default();
    let merged_query = Samples::default();
    let replica_batch: Vec<Samples> = (0..n).map(|_| Samples::default()).collect();
    let replica_query: Vec<Samples> = (0..n).map(|_| Samples::default()).collect();
    let recorders: Option<Vec<ClientRecorder>> = o
        .history_out
        .as_ref()
        .map(|_| (0..n).map(|_| ClientRecorder::new()).collect());

    let per_conn = o.ops;
    let total_updates = per_conn * o.threads as u64;
    let mut workers: Vec<Worker<'_>> = (0..o.threads)
        .map(|t| -> Worker<'_> {
            let (keys, batch) = (o.keys, o.batch);
            let (addrs, plan) = (&addrs, &plan);
            let (mlat, rlat, rec) = (&merged_batch, &replica_batch, recorders.as_ref());
            Box::new(move || {
                replicated_ingest(
                    addrs,
                    mode,
                    seed_group,
                    per_conn,
                    keys,
                    batch,
                    0x10ad ^ t as u64,
                    plan,
                    mlat,
                    rlat,
                    rec,
                    ProcessId(t as u32),
                )
            })
        })
        .collect();
    let (queries, keys, threads) = (o.queries, o.keys, o.threads);
    let delta_out = Mutex::new(DeltaStats::default());
    {
        let (addrs, plan) = (&addrs, &plan);
        let (mlat, rlat, rec) = (&merged_query, &replica_query, recorders.as_ref());
        let delta_out = &delta_out;
        workers.push(Box::new(move || {
            replicated_query(
                addrs,
                mode,
                seed_group,
                queries,
                keys,
                plan,
                mlat,
                rlat,
                rec,
                ProcessId(threads as u32),
                delta_reads,
                delta_out,
            );
        }));
    }
    let wall = timed_scope(workers);
    let merged_reads = delta_out.into_inner().unwrap();

    let batch_ns = Tail::of(&merged_batch.sorted());
    let query_ns = Tail::of(&merged_query.sorted());
    let mut objects = Vec::with_capacity(n);
    for (r, (b, q)) in replica_batch.into_iter().zip(replica_query).enumerate() {
        objects.push(ObjLat {
            name: format!("replica{r}"),
            batch_ns: Tail::of(&b.sorted()),
            query_ns: Tail::of(&q.sorted()),
        });
    }

    let label = if delta_reads {
        format!("replicated-{mode}-x{n}")
    } else {
        format!("replicated-{mode}-x{n}-full")
    };
    report_named(
        &label,
        o.threads,
        total_updates,
        o.queries,
        wall,
        batch_ns,
        query_ns,
    );
    report_objects(&label, &objects);
    if merged_reads.reads > 0 {
        println!(
            "[{label}] merged reads: {} snapshot roundtrips ({} unchanged, {} delta, \
             {} full; unchanged-rate {:.2}), wire {} B out + {} B in",
            merged_reads.reads,
            merged_reads.unchanged,
            merged_reads.deltas,
            merged_reads.fulls,
            merged_reads.unchanged_rate(),
            merged_reads.bytes_out,
            merged_reads.bytes_in,
        );
    }

    // Aggregate server-side counters across the replicas; keep the
    // first replica's latency histograms (they are not summable).
    let mut stats = handles[0].stats();
    for h in &handles[1..] {
        let s = h.stats();
        stats.updates += s.updates;
        stats.queries += s.queries;
        stats.batches += s.batches;
        stats.frames += s.frames;
        stats.wakeups += s.wakeups;
        stats.busy_rejections += s.busy_rejections;
        stats.stream_len += s.stream_len;
        stats.ready_peak = stats.ready_peak.max(s.ready_peak);
    }
    let expected = match mode {
        ReplicaMode::Partition => total_updates,
        ReplicaMode::Mirror => total_updates * n as u64,
    };
    if stats.updates != expected {
        return Err(format!(
            "replicas counted {} updates, expected {expected} ({mode} mode)",
            stats.updates
        ));
    }
    for h in handles {
        h.join();
    }
    if let (Some(path), Some(recs)) = (&o.history_out, recorders) {
        for (r, rec) in recs.into_iter().enumerate() {
            write_client_history(&format!("{path}.replica{r}"), rec)?;
        }
    }
    Ok(RunOutcome {
        backend: label,
        ingest_conns: o.threads,
        total_updates,
        wall,
        batch_ns,
        query_ns,
        objects,
        stats,
        merged_reads: Some(merged_reads),
    })
}

/// Sends `updates` weighted updates through the group in route-split
/// sub-batches. With `down` set, sub-batches routed to that replica
/// are *held* in `held` instead of sent (the replica is dead; its
/// history must not claim acknowledgements) — the caller replays them
/// after the rejoin. Sent weight per mix object accumulates in
/// `sent_weight` for the parts-coverage check.
#[allow(clippy::too_many_arguments)]
fn rejoin_send(
    group: &mut ReplicaGroup,
    backoff: &mut Backoff,
    stream: &mut ZipfStream,
    plan: &MixPlan,
    n: usize,
    batch: usize,
    updates: u64,
    seq: &mut u64,
    recorders: Option<&Vec<ClientRecorder>>,
    process: ProcessId,
    down: Option<usize>,
    held: &mut Vec<(u32, Vec<(u64, u64)>)>,
    sent_weight: &mut [u64],
) -> Result<(), String> {
    let mut pending = Vec::with_capacity(batch);
    let mut sent = 0u64;
    while sent < updates {
        pending.clear();
        while pending.len() < batch && sent < updates {
            let key = stream.next_item();
            pending.push((key, 1 + key % 3));
            sent += 1;
        }
        let obj_idx = plan.pick(*seq);
        *seq += 1;
        let object = plan.ids[obj_idx];
        let mut subs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
        for &(k, w) in &pending {
            subs[group.route(k)].push((k, w));
        }
        for (r, sub) in subs.iter().enumerate() {
            if sub.is_empty() {
                continue;
            }
            if down == Some(r) {
                held.push((object, sub.clone()));
                continue;
            }
            let weight: u64 = sub.iter().map(|&(_, w)| w).sum();
            let op = recorders.map(|rec| {
                rec[r]
                    .builder
                    .lock()
                    .unwrap()
                    .invoke_update(process, ObjectId(object), weight)
            });
            group_batch_retrying(group, backoff, object, sub)?;
            sent_weight[obj_idx] += weight;
            if let (Some(rec), Some(op)) = (recorders, op) {
                rec[r].builder.lock().unwrap().respond_update(op);
            }
        }
    }
    Ok(())
}

/// One merged read recorded into every replica's client history (the
/// read's per-part observed weights are each replica's counter value).
/// Only called while the whole group is reachable: a `None` part would
/// leave a dangling invocation, so it is an error here.
fn rejoin_query_recorded(
    group: &mut ReplicaGroup,
    object: u32,
    key: u64,
    recorders: Option<&Vec<ClientRecorder>>,
    process: ProcessId,
) -> Result<MergedRead, String> {
    let ops = recorders.map(|rec| {
        rec.iter()
            .map(|r| {
                r.builder
                    .lock()
                    .unwrap()
                    .invoke_query(process, ObjectId(object), 0)
            })
            .collect::<Vec<_>>()
    });
    let read = group
        .query(object, key)
        .map_err(|e| format!("merged query failed: {e}"))?;
    if let (Some(rec), Some(ops)) = (recorders, ops) {
        for ((r, op), part) in rec.iter().zip(ops).zip(&read.parts) {
            let observed =
                part.ok_or_else(|| "recorded query saw an unreachable replica".to_string())?;
            r.builder.lock().unwrap().respond_query(op, observed);
        }
    }
    Ok(read)
}

/// The `--rejoin` scenario: load, kill, restart, converge. Fails
/// unless the composed envelope's lag returns within 2x its pre-kill
/// width once the group's catch-up push is absorbed.
fn run_rejoin(o: &Opts) -> Result<(), String> {
    let n = if o.replicas >= 2 { o.replicas } else { 3 };
    let plan = MixPlan::in_process(&o.mix);
    let cfg = || ServerConfig {
        backend: Backend::Threaded,
        shards: o.shards,
        write_buffer: o.write_buffer,
        objects: plan.object_configs(),
        ..ServerConfig::default()
    };
    let mut handles: Vec<_> = (0..n)
        .map(|_| serve("127.0.0.1:0", cfg()))
        .collect::<Result<_, _>>()
        .map_err(|e| e.to_string())?;
    let seed_group = ServerConfig::default().seed;
    let addrs: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();
    println!(
        "rejoin: {n} replicas [{}] in partition mode (threaded backend, seed {seed_group})",
        addrs.join(", ")
    );
    let mut group = ReplicaGroup::new(addrs, ReplicaMode::Partition, seed_group)
        .expect("non-empty replica group");
    group.set_retry_limit(3);
    group.set_backoff(Duration::from_millis(5));
    let recorders_owned: Option<Vec<ClientRecorder>> = o
        .history_out
        .as_ref()
        .map(|_| (0..n).map(|_| ClientRecorder::new()).collect());
    let recorders = recorders_owned.as_ref();
    let process = ProcessId(0);
    let mut stream = ZipfStream::new(o.keys, 1.1, 0x10ad);
    let mut backoff = Backoff::new(0xb0ff);
    let mut seq = 0u64;
    let mut held: Vec<(u32, Vec<(u64, u64)>)> = Vec::new();
    let mut sent_weight = vec![0u64; plan.entries.len()];

    // Phase 1 — pre-kill load, then the L0 baseline read.
    let ops_a = o.ops.max(64);
    rejoin_send(
        &mut group,
        &mut backoff,
        &mut stream,
        &plan,
        n,
        o.batch,
        ops_a,
        &mut seq,
        recorders,
        process,
        None,
        &mut held,
        &mut sent_weight,
    )?;
    let mut pre_lag = 0;
    for (idx, &object) in plan.ids.iter().enumerate() {
        let read = rejoin_query_recorded(&mut group, object, 7, recorders, process)?;
        if idx == 0 {
            pre_lag = read
                .envelope
                .frequency()
                .expect("object 0 is the CountMin")
                .lag;
        }
    }

    // Phase 2 — kill replica 0 (close our side first: its connection
    // threads only exit at client EOF) and keep loading. Its route
    // share is held client-side; merged reads degrade but answer.
    let victim = handles.remove(0);
    let victim_addr = victim.addr().to_string();
    group.disconnect(0);
    drop(victim.join());
    rejoin_send(
        &mut group,
        &mut backoff,
        &mut stream,
        &plan,
        n,
        o.batch,
        ops_a / 2,
        &mut seq,
        recorders,
        process,
        Some(0),
        &mut held,
        &mut sent_weight,
    )?;
    let down_read = group
        .query(0, 7)
        .map_err(|e| format!("downtime query failed: {e}"))?;
    let down_lag = down_read.envelope.frequency().expect("frequency").lag;

    // Phase 3 — restart the replica empty at its old address (the old
    // listener needs a moment to release it).
    let reborn = {
        let mut reborn = None;
        for _ in 0..100 {
            match serve(&victim_addr, cfg()) {
                Ok(h) => {
                    reborn = Some(h);
                    break;
                }
                // lint:allow sleep — waiting for the OS to release the address
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        reborn.ok_or_else(|| format!("could not rebind {victim_addr}"))?
    };
    let t_restart = Instant::now();

    // Detection round: one unrecorded read per object while the reborn
    // replica still observes less than the displaced caches — each
    // detection retains that cache for the push and widens lag by the
    // forgotten weight.
    let mut widened_lag = 0;
    for (idx, &object) in plan.ids.iter().enumerate() {
        let read = group
            .query(object, 7)
            .map_err(|e| format!("rejoin-detection query failed: {e}"))?;
        if idx == 0 {
            widened_lag = read.envelope.frequency().expect("frequency").lag;
        }
    }
    if widened_lag <= pre_lag {
        return Err(format!(
            "the kill lost no weight (lag {pre_lag} -> {widened_lag}): \
             the scenario did not exercise catch-up"
        ));
    }

    // Replay the held share now that its replica is back — recorded as
    // ordinary acknowledged updates, after the detection round so the
    // replayed weight can never mask the rejoin (detection compares
    // against the displaced cache's observed count).
    let mut held_weight = 0u64;
    for (object, items) in &held {
        let weight: u64 = items.iter().map(|&(_, w)| w).sum();
        let op = recorders.map(|rec| {
            rec[0]
                .builder
                .lock()
                .unwrap()
                .invoke_update(process, ObjectId(*object), weight)
        });
        group_batch_retrying(&mut group, &mut backoff, *object, items)?;
        if let Some(idx) = plan.ids.iter().position(|&id| id == *object) {
            sent_weight[idx] += weight;
        }
        held_weight += weight;
        if let (Some(rec), Some(op)) = (recorders, op) {
            rec[0].builder.lock().unwrap().respond_update(op);
        }
    }

    // Convergence: each read first flushes the pending pushes, then
    // re-pulls the absorbed state, so the lag narrows back as soon as
    // the pushes are acknowledged.
    let bound = pre_lag.saturating_mul(2);
    let mut post_lag = u64::MAX;
    let mut convergence = None;
    for _ in 0..16 {
        let read = group
            .query(0, 7)
            .map_err(|e| format!("post-restart query failed: {e}"))?;
        post_lag = read.envelope.frequency().expect("frequency").lag;
        if group.catchup_pending() == 0 && post_lag <= bound {
            convergence = Some(t_restart.elapsed());
            break;
        }
    }
    let Some(convergence) = convergence else {
        return Err(format!(
            "lag did not converge: pre-kill {pre_lag}, bound {bound}, still {post_lag} \
             with {} pushes pending",
            group.catchup_pending()
        ));
    };
    let cstats = group.catchup_stats();
    if cstats.failed > 0 {
        return Err(format!("{} catch-up pushes failed", cstats.failed));
    }

    // Final recorded reads: the whole group is reachable again and the
    // parts must cover every acknowledged update.
    for (idx, &object) in plan.ids.iter().enumerate() {
        let read = rejoin_query_recorded(&mut group, object, 7, recorders, process)?;
        if idx == 0 {
            let covered: u64 = read.parts.iter().flatten().sum();
            if covered != sent_weight[0] {
                return Err(format!(
                    "post-catch-up parts cover {covered} weight, {} was acknowledged",
                    sent_weight[0]
                ));
            }
        }
    }

    println!(
        "[rejoin] lag: pre-kill {pre_lag}, downtime {down_lag}, widened {widened_lag} \
         on detection, post-catch-up {post_lag} (bound {bound})"
    );
    println!(
        "[rejoin] converged {:.1} ms after restart; catch-up: {} detected, {} pushed, \
         {} acked, {} weight settled; {held_weight} held weight replayed",
        convergence.as_secs_f64() * 1e3,
        cstats.detected,
        cstats.pushed,
        cstats.acked,
        cstats.settled_weight,
    );

    drop(group);
    drop(reborn.join());
    for h in handles {
        drop(h.join());
    }
    if let (Some(path), Some(recs)) = (&o.history_out, recorders_owned) {
        for (r, rec) in recs.into_iter().enumerate() {
            write_client_history(&format!("{path}.replica{r}"), rec)?;
        }
    }
    if let Some(path) = &o.json {
        let doc = format!(
            "{{\n  \"bench\": \"ivl-service loadgen rejoin\",\n  \"replicas\": {n},\n  \
             \"pre_kill_lag\": {pre_lag},\n  \"downtime_lag\": {down_lag},\n  \
             \"widened_lag\": {widened_lag},\n  \"post_catchup_lag\": {post_lag},\n  \
             \"lag_bound\": {bound},\n  \"convergence_ms\": {:.3},\n  \
             \"held_weight_replayed\": {held_weight},\n  \
             \"catchup\": {{\"detected\": {}, \"pushed\": {}, \"acked\": {}, \
             \"failed\": {}, \"settled_weight\": {}}}\n}}\n",
            convergence.as_secs_f64() * 1e3,
            cstats.detected,
            cstats.pushed,
            cstats.acked,
            cstats.failed,
            cstats.settled_weight,
        );
        std::fs::write(path, doc).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// A second, tiny run whose history fits the exact checker's bound.
fn run_exact_check(backend: Backend) -> Result<(), String> {
    let cfg = ServerConfig {
        backend,
        shards: 2,
        record: true,
        ..ServerConfig::default()
    };
    let handle = serve("127.0.0.1:0", cfg).map_err(|e| e.to_string())?;
    let addr = handle.addr();
    let workers: Vec<Worker<'_>> = (0..2)
        .map(|t| -> Worker<'_> {
            Box::new(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..8u64 {
                    client.update(i % 3, 1 + t).expect("update");
                }
                for key in 0..3u64 {
                    client.query(key).expect("query");
                }
            })
        })
        .collect();
    timed_scope(workers);
    let joined = handle.join();
    let spec = joined.spec();
    let history = joined.history.expect("recording was on");
    let ops = history.operations().len();
    assert!(ops <= MAX_EXACT_OPS, "exact-check run too large: {ops} ops");
    let verdict = check_ivl_exact(std::slice::from_ref(&spec), &history);
    println!(
        "IVL (exact checker, {backend}): {} over {ops} ops",
        verdict.is_ivl()
    );
    if verdict.is_ivl() {
        Ok(())
    } else {
        Err(format!(
            "small {backend} serving history fails the exact IVL check"
        ))
    }
}

fn write_json(o: &Opts, runs: &[RunOutcome]) -> Result<(), String> {
    let Some(path) = &o.json else { return Ok(()) };
    let body: Vec<String> = runs.iter().map(|r| r.json(o.queries)).collect();
    let mix: Vec<String> = o
        .mix
        .iter()
        .map(|e| format!("\"{}={}\"", e.name, e.weight))
        .collect();
    let doc = format!(
        "{{\n  \"bench\": \"ivl-service loadgen\",\n  \"keys\": {},\n  \"batch\": {},\n  \
         \"shards\": {},\n  \"write_buffer\": {},\n  \"mix\": [{}],\n  \"runs\": [\n{}\n  ]\n}}\n",
        o.keys,
        o.batch,
        o.shards,
        o.write_buffer,
        mix.join(", "),
        body.join(",\n")
    );
    std::fs::write(path, doc).map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

fn run(o: &Opts) -> Result<(), String> {
    if o.rejoin {
        if o.addr.is_some() {
            return Err("--rejoin boots its own in-process replicas; drop --addr".into());
        }
        return run_rejoin(o);
    }
    let mut runs = Vec::new();
    if let Some(addr) = &o.addr {
        if o.replicas > 0 {
            return Err("--replicas boots its own in-process replicas; drop --addr".into());
        }
        runs.push(run_external(o, addr)?);
    } else {
        match o.mode {
            Mode::Single(backend) => {
                runs.push(run_in_process(o, backend, o.threads)?);
                if o.check {
                    run_exact_check(backend)?;
                }
            }
            Mode::Both => {
                let conns = o.threads * COMPARE_CONN_MULTIPLIER;
                runs.push(run_in_process(o, Backend::Threaded, conns)?);
                runs.push(run_in_process(o, Backend::EventLoop, conns)?);
                let (t, e) = (&runs[0], &runs[1]);
                println!(
                    "compare at {conns} conns on {} shards: \
                     batch p99 {} ns (event-loop) vs {} ns (threaded, {} busy \
                     bounces); query p99 {} ns vs {} ns; event-loop busy \
                     rejections: {}",
                    o.shards,
                    e.batch_ns.p99,
                    t.batch_ns.p99,
                    t.stats.busy_rejections,
                    e.query_ns.p99,
                    t.query_ns.p99,
                    e.stats.busy_rejections,
                );
                if e.stats.busy_rejections == 0 && e.batch_ns.p99 <= t.batch_ns.p99 {
                    println!(
                        "compare: event-loop sustained {}x the lease-budget \
                         connections at equal or better ingest p99",
                        conns / o.shards.max(1)
                    );
                }
                if o.check {
                    run_exact_check(Backend::Threaded)?;
                    run_exact_check(Backend::EventLoop)?;
                }
            }
        }
        if o.replicas > 0 {
            let backend = match o.mode {
                Mode::Single(backend) => backend,
                Mode::Both => Backend::Threaded,
            };
            // The N == 1 degenerate group isolates the replication
            // layer's own overhead from the fan-out/merge cost.
            let first = runs.len();
            if o.replicas > 1 {
                runs.push(run_replicated(o, backend, 1, o.delta_reads)?);
            }
            runs.push(run_replicated(o, backend, o.replicas, o.delta_reads)?);
            if o.replicas > 1 {
                let (one, many) = (&runs[first], &runs[first + 1]);
                println!(
                    "compare 1 vs {} replicas ({}): batch p99 {} ns -> {} ns, \
                     query p99 {} ns -> {} ns (merge-on-query over {} snapshots); \
                     merged query p50 {} ns vs single-replica {} ns ({:.1}x)",
                    o.replicas,
                    o.replica_mode,
                    one.batch_ns.p99,
                    many.batch_ns.p99,
                    one.query_ns.p99,
                    many.query_ns.p99,
                    o.replicas,
                    many.query_ns.p50,
                    one.query_ns.p50,
                    many.query_ns.p50 as f64 / one.query_ns.p50.max(1) as f64,
                );
            }
            // The full-snapshot baseline: the same query-heavy load
            // with the delta cache off, so the wire-byte savings of
            // the `SNAPSHOT_SINCE` path are measured like-for-like
            // (and committed alongside it in `--json`).
            if o.replicas > 1 && o.delta_reads {
                let delta_at = runs.len() - 1;
                runs.push(run_replicated(o, backend, o.replicas, false)?);
                let (d, f) = (&runs[delta_at], runs.last().expect("just pushed"));
                if let (Some(d), Some(f)) = (&d.merged_reads, &f.merged_reads) {
                    let total_d = d.bytes_out + d.bytes_in;
                    let total_f = f.bytes_out + f.bytes_in;
                    println!(
                        "compare merged-read wire bytes over {} reads: delta {} B \
                         vs full {} B ({:.1}x fewer)",
                        d.reads,
                        total_d,
                        total_f,
                        total_f as f64 / total_d.max(1) as f64,
                    );
                }
            }
        }
    }
    write_json(o, &runs)
}

fn main() -> ExitCode {
    let Some(opts) = parse() else {
        eprintln!(
            "usage: loadgen [--backend threaded|event-loop|both] [--threads N] \
             [--ops N] [--keys N] [--queries N] [--batch N] [--shards N] \
             [--write-buffer B] [--mix cm=8,hll=1,morris=1] [--replicas N] \
             [--mode partition|mirror] [--query-ratio R] [--no-delta] [--rejoin] \
             [--addr HOST:PORT] [--json FILE] [--history-out FILE] \
             [--shutdown] [--no-check]"
        );
        return ExitCode::from(1);
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("FAILED: {e}");
            ExitCode::from(2)
        }
    }
}
