//! Regenerates every numeric table of EXPERIMENTS.md in one run.
//!
//! Run with: `cargo run --release -p ivl-bench --bin tables`

use ivl_concurrent::{DelegatedCountMin, Pcm};
use ivl_core::theorem6::{counter_envelope_run, theorem6_run, Theorem6Config};
use ivl_counter::{FetchAddCounter, IvlBatchedCounter, MutexBatchedCounter};
use ivl_shmem::algorithms::{example9_violation_count, example9_violation_count_biased};
use ivl_shmem::experiments::{render_table, step_complexity_sweep};
use ivl_sketch::stream::ZipfStream;
use ivl_sketch::{
    CoinFlips, CountMin, CountSketch, FrequencySketch, GkQuantiles, HyperLogLog, MorrisCounter,
    SpaceSaving,
};
use std::collections::HashMap;

fn e1_e2_step_complexity() {
    println!("== E1/E2: step complexity (simulator; Theorems 11 & 14) ==\n");
    let rows = step_complexity_sweep(&[2, 4, 8, 16, 32, 64, 128], 8, 0xC0FFEE);
    println!("{}", render_table(&rows));
}

fn e5_counter_envelope() {
    println!("== E5: IVL envelope on real-thread counters (Lemma 10) ==\n");
    println!("counter     | reads | lower viol | upper viol | final total");
    println!("------------+-------+------------+------------+------------");
    let c = IvlBatchedCounter::new(4);
    let r = counter_envelope_run(&c, 100_000, 1, 10_000);
    println!(
        "ivl         | {:>5} | {:>10} | {:>10} | {:>10}",
        r.reads, r.lower_violations, r.upper_violations, r.final_total
    );
    let c = FetchAddCounter::new(4);
    let r = counter_envelope_run(&c, 100_000, 1, 10_000);
    println!(
        "fetch_add   | {:>5} | {:>10} | {:>10} | {:>10}",
        r.reads, r.lower_violations, r.upper_violations, r.final_total
    );
    let c = MutexBatchedCounter::new(4);
    let r = counter_envelope_run(&c, 100_000, 1, 10_000);
    println!(
        "mutex       | {:>5} | {:>10} | {:>10} | {:>10}\n",
        r.reads, r.lower_violations, r.upper_violations, r.final_total
    );
}

fn e7_violation_frequency() {
    println!("== E7: PCM linearizability violations under random schedules ==\n");
    for runs in [100u64, 400, 1_000] {
        let v = example9_violation_count(runs);
        println!(
            "{runs:>5} random schedules: {v:>4} non-linearizable histories ({:.1}%), all IVL",
            100.0 * v as f64 / runs as f64
        );
    }
    println!("scheduler bias (400 runs, updater:querier weights):");
    for (w, label) in [
        ([1u32, 1], "1:1 balanced"),
        ([1, 4], "1:4 updater-starved"),
        ([4, 1], "4:1 querier-starved"),
    ] {
        let v = example9_violation_count_biased(400, w);
        println!(
            "  {label:<20} {v:>4} non-linearizable ({:.1}%)",
            100.0 * v as f64 / 400.0
        );
    }
    e7_exact_census();
    println!();
}

/// E7-exact: exhaustively enumerate every schedule of the minimal
/// Example 9 configuration and count the non-linearizable ones.
fn e7_exact_census() {
    use ivl_shmem::algorithms::{example9_hash, PcmSim};
    use ivl_shmem::executor::SimObject;
    use ivl_shmem::{explore_all_schedules, explore_dpor, Memory, SimOp, Workload};
    use ivl_spec::check_ivl_monotone;
    use ivl_spec::linearize::check_linearizable;

    let config = || {
        let mut mem = Memory::new();
        let obj = PcmSim::new(&mut mem, 2, 2, example9_hash());
        let w = vec![
            Workload {
                ops: vec![
                    SimOp::Update(2),
                    SimOp::Update(2),
                    SimOp::Update(2),
                    SimOp::Update(0),
                    SimOp::Update(1),
                    SimOp::Update(0),
                ],
            },
            Workload {
                ops: vec![SimOp::Query(0), SimOp::Query(1)],
            },
        ];
        (mem, Box::new(obj) as Box<dyn SimObject>, w)
    };
    let spec = {
        let mut mem = Memory::new();
        PcmSim::new(&mut mem, 2, 2, example9_hash()).spec()
    };
    let mut nonlin = 0u64;
    let mut all_ivl = true;
    let stats = explore_all_schedules(&config, 1_000_000, |_, result| {
        all_ivl &= check_ivl_monotone(&spec, &result.history).is_ivl();
        if !check_linearizable(std::slice::from_ref(&spec), &result.history).is_linearizable() {
            nonlin += 1;
        }
    });
    println!(
        "exhaustive census (minimal Example 9 config): {nonlin} / {} schedules \
         non-linearizable, all IVL = {all_ivl}",
        stats.schedules
    );

    // The same config under DPOR: one representative per trace class,
    // same verdict census at a fraction of the schedules.
    let mut dpor_nonlin = 0u64;
    let mut dpor_all_ivl = true;
    let dstats = explore_dpor(&config, 1_000_000, |_, result| {
        dpor_all_ivl &= check_ivl_monotone(&spec, &result.history).is_ivl();
        if !check_linearizable(std::slice::from_ref(&spec), &result.history).is_linearizable() {
            dpor_nonlin += 1;
        }
    });
    println!(
        "DPOR on the same config: {} trace classes ({} with a non-linearizable \
         representative), all IVL = {dpor_all_ivl} — {:.1}x fewer executions",
        dstats.classes,
        dpor_nonlin,
        stats.schedules as f64 / dstats.classes as f64
    );

    println!("\nnaive DFS vs DPOR ladder (naive capped at 100000 schedules):");
    let rows = ivl_shmem::experiments::exploration_census(100_000);
    print!("{}", ivl_shmem::experiments::render_census(&rows));
}

fn e8_theorem6() {
    println!("== E8: Theorem 6 / Corollary 8 (PCM vs delegation) ==\n");
    let cfg = Theorem6Config {
        threads: 4,
        updates_per_thread: 100_000,
        alphabet: 2_000,
        zipf_s: 1.1,
        queries: 5_000,
        alpha: 0.005,
        seed: 42,
    };
    let delta = 0.01;
    let pcm = Pcm::for_bounds(cfg.alpha, delta, &mut CoinFlips::from_seed(7));
    let r = theorem6_run(&pcm, &cfg);
    println!(
        "PCM        : {} queries | lower viol {} | upper viol {} ({:.3}% vs δ = {:.1}%) | ε = {:.0}",
        r.queries,
        r.lower_violations,
        r.upper_violations,
        100.0 * r.upper_violation_rate(),
        100.0 * delta,
        r.epsilon
    );

    let dcm = DelegatedCountMin::new(
        ivl_sketch::countmin::CountMinParams::for_bounds(cfg.alpha, delta),
        4_096,
        &mut CoinFlips::from_seed(7),
    );
    let r = theorem6_run(&dcm, &cfg);
    println!(
        "delegation : {} queries | lower viol {} (IVL forbids any) | upper viol {}",
        r.queries, r.lower_violations, r.upper_violations
    );
    println!();
}

fn e13_sequential_errors() {
    println!("== E13: sequential (ε,δ) verification, all sketches ==\n");
    let n: u64 = 200_000;
    let alphabet = 5_000;

    // Ground truth stream.
    let items: Vec<u64> = ZipfStream::new(alphabet, 1.1, 99)
        .take(n as usize)
        .collect();
    let mut truth: HashMap<u64, u64> = HashMap::new();
    for &i in &items {
        *truth.entry(i).or_default() += 1;
    }

    // CountMin.
    {
        let alpha = 0.002;
        let delta = 0.01;
        let mut cm = CountMin::for_bounds(alpha, delta, &mut CoinFlips::from_seed(1));
        for &i in &items {
            cm.update(i);
        }
        let eps = (alpha * n as f64).ceil() as u64;
        let fails = truth
            .iter()
            .filter(|(&a, &f)| cm.estimate(a) < f || cm.estimate(a) > f + eps)
            .count();
        println!(
            "CountMin    (α={alpha}, δ={delta}): {} items, {} outside [f, f+{eps}] ({:.3}% vs δ={:.0}%)",
            truth.len(),
            fails,
            100.0 * fails as f64 / truth.len() as f64,
            100.0 * delta
        );
    }

    // CountSketch.
    {
        let mut cs = CountSketch::new(2048, 5, &mut CoinFlips::from_seed(2));
        for &i in &items {
            cs.update(i);
        }
        let mut worst_rel: f64 = 0.0;
        for (&a, &f) in truth.iter().filter(|(_, &f)| f > n / 1_000) {
            let est = cs.estimate(a) as f64;
            worst_rel = worst_rel.max((est - f as f64).abs() / f as f64);
        }
        println!("CountSketch (w=2048, d=5): worst heavy-hitter rel err {worst_rel:.4}");
    }

    // SpaceSaving.
    {
        let k = 512;
        let mut ss = SpaceSaving::new(k);
        for &i in &items {
            ss.update(i);
        }
        let bound = n / k as u64;
        let over = ss
            .top()
            .iter()
            .map(|&(a, _, _)| ss.estimate(a) - truth.get(&a).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        println!("SpaceSaving (k={k}): max overestimate {over} (bound n/k = {bound})");
    }

    // HyperLogLog.
    {
        let mut hll = HyperLogLog::new(12, &mut CoinFlips::from_seed(3));
        for &i in &items {
            hll.update(i);
        }
        let distinct = truth.len() as f64;
        let rel = (hll.estimate() - distinct).abs() / distinct;
        println!(
            "HyperLogLog (p=12): rel err {rel:.4} (std err {:.4})",
            hll.standard_error()
        );
    }

    // Morris (mean over runs).
    {
        let runs = 30;
        let mut total = 0.0;
        for s in 0..runs {
            let mut m = MorrisCounter::new(0.05, CoinFlips::from_seed(s));
            for _ in 0..n {
                m.update();
            }
            total += m.estimate();
        }
        let mean = total / runs as f64;
        println!(
            "Morris      (a=0.05): mean of {runs} runs {mean:.0} vs true {n} (rel {:.4})",
            (mean - n as f64).abs() / n as f64
        );
    }

    // GK quantiles.
    {
        let eps = 0.005;
        let mut gk = GkQuantiles::new(eps);
        for &i in &items {
            gk.insert(i);
        }
        let mut sorted = items.clone();
        sorted.sort_unstable();
        let mut worst = 0u64;
        for phi in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let rank = ((phi * n as f64).ceil() as u64).clamp(1, n);
            let v = gk.query_rank(rank);
            let lo = sorted.partition_point(|&x| x < v) as u64 + 1;
            let hi = sorted.partition_point(|&x| x <= v) as u64;
            let err = if rank < lo {
                lo - rank
            } else {
                rank.saturating_sub(hi)
            };
            worst = worst.max(err);
        }
        println!(
            "GKQuantiles (ε={eps}): worst rank error {worst} (bound εn = {:.0}), summary {} tuples",
            eps * n as f64,
            gk.summary_size()
        );
    }
    println!();
}

fn e8b_concurrent_morris_hll() {
    println!("== E14: concurrent Morris / HLL accuracy under 4 threads ==\n");
    let threads = 4;
    let per_thread = 50_000u64;
    let n = threads as f64 * per_thread as f64;
    let runs = 10;
    let mut total = 0.0;
    for s in 0..runs {
        let m = ivl_concurrent::ConcurrentMorris::new(0.05, CoinFlips::from_seed(s));
        crossbeam::scope(|sc| {
            for _ in 0..threads {
                let m = &m;
                sc.spawn(move |_| {
                    for _ in 0..per_thread {
                        m.update();
                    }
                });
            }
        })
        .unwrap();
        total += m.estimate();
    }
    println!(
        "ConcurrentMorris: mean of {runs} runs {:.0} vs true {n:.0} (rel {:.4})",
        total / runs as f64,
        (total / runs as f64 - n).abs() / n
    );

    let mut coins = CoinFlips::from_seed(5);
    let hll = ivl_concurrent::ConcurrentHll::new(12, &mut coins);
    let distinct = 200_000u64;
    crossbeam::scope(|sc| {
        for t in 0..threads as u64 {
            let hll = &hll;
            sc.spawn(move |_| {
                for x in (t * distinct / 4)..((t + 1) * distinct / 4) {
                    hll.update(x);
                }
            });
        }
    })
    .unwrap();
    let rel = (hll.estimate() - distinct as f64).abs() / distinct as f64;
    println!("ConcurrentHll   : rel err {rel:.4} on {distinct} distinct items\n");
}

fn main() {
    e1_e2_step_complexity();
    e5_counter_envelope();
    e7_violation_frequency();
    e8_theorem6();
    e13_sequential_errors();
    e8b_concurrent_morris_hll();
}
