//! Shared benchmark utilities: multi-threaded throughput drivers used
//! by the Criterion benches, the table generator and the `loadgen`
//! service load generator.
//!
//! Every driver funnels through [`timed_scope`]: build one closure per
//! worker, run them all inside a crossbeam scope, time the batch. The
//! specialized entry points below only differ in which closures they
//! build.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ivl_concurrent::{ConcurrentSketch, SketchHandle};
use ivl_counter::SharedBatchedCounter;
use ivl_sketch::stream::ZipfStream;
use std::time::{Duration, Instant};

/// A boxed worker for [`timed_scope`].
pub type Worker<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Runs every worker on its own scoped thread and returns the
/// wall-clock duration from first spawn to last join — the one spawn
/// loop shared by all batch drivers.
///
/// # Panics
///
/// Re-raises the first worker panic.
pub fn timed_scope(workers: Vec<Worker<'_>>) -> Duration {
    let start = Instant::now();
    crossbeam::scope(|s| {
        for w in workers {
            s.spawn(move |_| w());
        }
    })
    .unwrap();
    start.elapsed()
}

/// Runs `threads` updaters each performing `ops_per_thread` counter
/// updates; returns the wall-clock duration of the whole batch.
pub fn counter_update_batch<C: SharedBatchedCounter>(
    counter: &C,
    threads: usize,
    ops_per_thread: u64,
    value: u64,
) -> Duration {
    timed_scope(
        (0..threads)
            .map(|slot| -> Worker<'_> {
                Box::new(move || {
                    for _ in 0..ops_per_thread {
                        counter.update_slot(slot, value);
                    }
                })
            })
            .collect(),
    )
}

/// Like [`counter_update_batch`] with one extra thread issuing
/// `reads` reads concurrently; returns total duration.
pub fn counter_mixed_batch<C: SharedBatchedCounter>(
    counter: &C,
    threads: usize,
    ops_per_thread: u64,
    reads: u64,
) -> Duration {
    let mut workers: Vec<Worker<'_>> = (0..threads)
        .map(|slot| -> Worker<'_> {
            Box::new(move || {
                for _ in 0..ops_per_thread {
                    counter.update_slot(slot, 1);
                }
            })
        })
        .collect();
    workers.push(Box::new(move || {
        for _ in 0..reads {
            std::hint::black_box(counter.read());
        }
    }));
    timed_scope(workers)
}

/// One ingest worker: drives `ops` Zipf items through a sketch handle.
fn ingest_worker<S: ConcurrentSketch>(
    sketch: &S,
    ops: u64,
    alphabet: usize,
    seed: u64,
) -> Worker<'_> {
    let mut handle = sketch.handle();
    let mut stream = ZipfStream::new(alphabet, 1.1, seed);
    Box::new(move || {
        for _ in 0..ops {
            handle.update(stream.next_item());
        }
        handle.flush();
    })
}

/// Runs `threads` ingest threads pushing Zipf items into a concurrent
/// sketch; returns the wall-clock duration.
pub fn sketch_update_batch<S: ConcurrentSketch>(
    sketch: &S,
    threads: usize,
    ops_per_thread: u64,
    alphabet: usize,
    seed: u64,
) -> Duration {
    timed_scope(
        (0..threads)
            .map(|t| ingest_worker(sketch, ops_per_thread, alphabet, seed ^ (t as u64)))
            .collect(),
    )
}

/// Ingest plus a concurrent query thread issuing `queries` point
/// queries; returns total duration.
pub fn sketch_mixed_batch<S: ConcurrentSketch>(
    sketch: &S,
    threads: usize,
    ops_per_thread: u64,
    queries: u64,
    alphabet: usize,
    seed: u64,
) -> Duration {
    let mut workers: Vec<Worker<'_>> = (0..threads)
        .map(|t| ingest_worker(sketch, ops_per_thread, alphabet, seed ^ (t as u64)))
        .collect();
    let sketch = &sketch;
    let mut qstream = ZipfStream::new(alphabet, 1.1, seed ^ 0xabcdef);
    workers.push(Box::new(move || {
        for _ in 0..queries {
            std::hint::black_box(sketch.query(qstream.next_item()));
        }
    }));
    timed_scope(workers)
}

/// Million-operations-per-second from an op count and duration.
pub fn mops(ops: u64, d: Duration) -> f64 {
    ops as f64 / d.as_secs_f64() / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivl_counter::IvlBatchedCounter;

    #[test]
    fn timed_scope_runs_every_worker() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let hits = AtomicU64::new(0);
        let workers: Vec<Worker<'_>> = (0..5)
            .map(|_| -> Worker<'_> {
                let hits = &hits;
                Box::new(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        timed_scope(workers);
        assert_eq!(hits.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn batch_drivers_apply_all_updates() {
        let c = IvlBatchedCounter::new(4);
        counter_update_batch(&c, 4, 1_000, 2);
        assert_eq!(c.read(), 8_000);
        counter_mixed_batch(&c, 4, 1_000, 100);
        assert_eq!(c.read(), 12_000);
    }
}
