//! Shared benchmark utilities: multi-threaded throughput drivers used
//! by the Criterion benches and the table generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ivl_concurrent::{ConcurrentSketch, SketchHandle};
use ivl_counter::SharedBatchedCounter;
use ivl_sketch::stream::ZipfStream;
use std::time::{Duration, Instant};

/// Runs `threads` updaters each performing `ops_per_thread` counter
/// updates; returns the wall-clock duration of the whole batch.
pub fn counter_update_batch<C: SharedBatchedCounter>(
    counter: &C,
    threads: usize,
    ops_per_thread: u64,
    value: u64,
) -> Duration {
    let start = Instant::now();
    crossbeam::scope(|s| {
        for slot in 0..threads {
            s.spawn(move |_| {
                for _ in 0..ops_per_thread {
                    counter.update_slot(slot, value);
                }
            });
        }
    })
    .unwrap();
    start.elapsed()
}

/// Like [`counter_update_batch`] with one extra thread issuing
/// `reads` reads concurrently; returns total duration.
pub fn counter_mixed_batch<C: SharedBatchedCounter>(
    counter: &C,
    threads: usize,
    ops_per_thread: u64,
    reads: u64,
) -> Duration {
    let start = Instant::now();
    crossbeam::scope(|s| {
        for slot in 0..threads {
            s.spawn(move |_| {
                for _ in 0..ops_per_thread {
                    counter.update_slot(slot, 1);
                }
            });
        }
        s.spawn(move |_| {
            for _ in 0..reads {
                std::hint::black_box(counter.read());
            }
        });
    })
    .unwrap();
    start.elapsed()
}

/// Runs `threads` ingest threads pushing Zipf items into a concurrent
/// sketch; returns the wall-clock duration.
pub fn sketch_update_batch<S: ConcurrentSketch>(
    sketch: &S,
    threads: usize,
    ops_per_thread: u64,
    alphabet: usize,
    seed: u64,
) -> Duration {
    let start = Instant::now();
    crossbeam::scope(|s| {
        for t in 0..threads {
            let mut handle = sketch.handle();
            let mut stream = ZipfStream::new(alphabet, 1.1, seed ^ (t as u64));
            s.spawn(move |_| {
                for _ in 0..ops_per_thread {
                    handle.update(stream.next_item());
                }
                handle.flush();
            });
        }
    })
    .unwrap();
    start.elapsed()
}

/// Ingest plus a concurrent query thread issuing `queries` point
/// queries; returns total duration.
pub fn sketch_mixed_batch<S: ConcurrentSketch>(
    sketch: &S,
    threads: usize,
    ops_per_thread: u64,
    queries: u64,
    alphabet: usize,
    seed: u64,
) -> Duration {
    let start = Instant::now();
    crossbeam::scope(|s| {
        for t in 0..threads {
            let mut handle = sketch.handle();
            let mut stream = ZipfStream::new(alphabet, 1.1, seed ^ (t as u64));
            s.spawn(move |_| {
                for _ in 0..ops_per_thread {
                    handle.update(stream.next_item());
                }
                handle.flush();
            });
        }
        {
            let sketch = &sketch;
            let mut qstream = ZipfStream::new(alphabet, 1.1, seed ^ 0xabcdef);
            s.spawn(move |_| {
                for _ in 0..queries {
                    std::hint::black_box(sketch.query(qstream.next_item()));
                }
            });
        }
    })
    .unwrap();
    start.elapsed()
}

/// Million-operations-per-second from an op count and duration.
pub fn mops(ops: u64, d: Duration) -> f64 {
    ops as f64 / d.as_secs_f64() / 1e6
}
