//! E13 (cost side): sequential sketch throughput — update and query
//! cost of each (ε,δ)-bounded object in the workspace. The accuracy
//! side of E13 is the `tables` binary's error table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ivl_sketch::stream::ZipfStream;
use ivl_sketch::{
    CoinFlips, CountMin, CountMinParams, CountSketch, FrequencySketch, GkQuantiles, HyperLogLog,
    MorrisCounter, SpaceSaving,
};
use std::time::Duration;

const N: u64 = 10_000;

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch_update");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    group.throughput(Throughput::Elements(N));

    group.bench_function(BenchmarkId::new("countmin", "w=2719,d=5"), |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for k in 0..iters {
                let mut cm = CountMin::new(
                    CountMinParams::for_bounds(0.001, 0.01),
                    &mut CoinFlips::from_seed(k),
                );
                let items: Vec<u64> = ZipfStream::new(10_000, 1.1, k).take(N as usize).collect();
                let start = std::time::Instant::now();
                for &i in &items {
                    cm.update(i);
                }
                total += start.elapsed();
            }
            total
        });
    });

    group.bench_function(BenchmarkId::new("countsketch", "w=1024,d=5"), |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for k in 0..iters {
                let mut cs = CountSketch::new(1024, 5, &mut CoinFlips::from_seed(k));
                let items: Vec<u64> = ZipfStream::new(10_000, 1.1, k).take(N as usize).collect();
                let start = std::time::Instant::now();
                for &i in &items {
                    cs.update(i);
                }
                total += start.elapsed();
            }
            total
        });
    });

    group.bench_function(BenchmarkId::new("spacesaving", "k=256"), |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for k in 0..iters {
                let mut ss = SpaceSaving::new(256);
                let items: Vec<u64> = ZipfStream::new(10_000, 1.1, k).take(N as usize).collect();
                let start = std::time::Instant::now();
                for &i in &items {
                    ss.update(i);
                }
                total += start.elapsed();
            }
            total
        });
    });

    group.bench_function(BenchmarkId::new("hyperloglog", "p=12"), |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for k in 0..iters {
                let mut hll = HyperLogLog::new(12, &mut CoinFlips::from_seed(k));
                let start = std::time::Instant::now();
                for x in 0..N {
                    hll.update(x.wrapping_mul(k + 1));
                }
                total += start.elapsed();
            }
            total
        });
    });

    group.bench_function(BenchmarkId::new("morris", "a=0.1"), |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for k in 0..iters {
                let mut m = MorrisCounter::new(0.1, CoinFlips::from_seed(k));
                let start = std::time::Instant::now();
                for _ in 0..N {
                    m.update();
                }
                total += start.elapsed();
            }
            total
        });
    });

    group.bench_function(BenchmarkId::new("gk_quantiles", "eps=0.01"), |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for k in 0..iters {
                let mut gk = GkQuantiles::new(0.01);
                let items: Vec<u64> = ZipfStream::new(1_000_000, 1.01, k)
                    .take(N as usize)
                    .collect();
                let start = std::time::Instant::now();
                for &i in &items {
                    gk.insert(i);
                }
                total += start.elapsed();
            }
            total
        });
    });

    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch_query");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));

    let mut cm = CountMin::new(
        CountMinParams::for_bounds(0.001, 0.01),
        &mut CoinFlips::from_seed(1),
    );
    let mut cs = CountSketch::new(1024, 5, &mut CoinFlips::from_seed(1));
    let mut ss = SpaceSaving::new(256);
    let mut hll = HyperLogLog::new(12, &mut CoinFlips::from_seed(1));
    let mut gk = GkQuantiles::new(0.01);
    for (i, item) in ZipfStream::new(10_000, 1.1, 1).take(100_000).enumerate() {
        cm.update(item);
        cs.update(item);
        ss.update(item);
        hll.update(item);
        if i % 10 == 0 {
            gk.insert(item);
        }
    }

    group.bench_function("countmin_point", |b| {
        b.iter(|| std::hint::black_box(cm.estimate(7)))
    });
    group.bench_function("countsketch_point", |b| {
        b.iter(|| std::hint::black_box(cs.estimate(7)))
    });
    group.bench_function("spacesaving_point", |b| {
        b.iter(|| std::hint::black_box(ss.estimate(7)))
    });
    group.bench_function("hyperloglog_cardinality", |b| {
        b.iter(|| std::hint::black_box(hll.estimate()))
    });
    group.bench_function("gk_median", |b| {
        b.iter(|| std::hint::black_box(gk.query_quantile(0.5)))
    });
    group.finish();
}

criterion_group!(benches, bench_updates, bench_queries);
criterion_main!(benches);
