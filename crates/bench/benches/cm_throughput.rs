//! E9: wall-clock cost of concurrent CountMin implementations (paper
//! §5).
//!
//! Expected shape: `PCM` scales with ingest threads (per-cell atomic
//! increments, no global synchronization); the mutex CM is flat; the
//! snapshot CM ingests fast but queries stall the world (visible in
//! the mixed workload); the delegation sketch is fastest on ingest at
//! the price of staleness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ivl_bench::{sketch_mixed_batch, sketch_update_batch};
use ivl_concurrent::{DelegatedCountMin, MutexCountMin, Pcm, ShardedPcm, SnapshotCountMin};
use ivl_sketch::countmin::CountMinParams;
use ivl_sketch::CoinFlips;
use std::time::Duration;

const OPS_PER_THREAD: u64 = 20_000;
const ALPHABET: usize = 10_000;

fn params() -> CountMinParams {
    // α ≈ 0.1%, δ ≈ 1%: the dimensions a production deployment uses.
    CountMinParams::for_bounds(0.001, 0.01)
}

fn bench_ingest(c: &mut Criterion) {
    let max_threads = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));
    let mut group = c.benchmark_group("cm_ingest");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for threads in [1usize, 2, 4, max_threads]
        .iter()
        .copied()
        .collect::<std::collections::BTreeSet<_>>()
    {
        group.throughput(Throughput::Elements(OPS_PER_THREAD * threads as u64));
        group.bench_with_input(BenchmarkId::new("pcm", threads), &threads, |b, &threads| {
            let sketch = Pcm::new(params(), &mut CoinFlips::from_seed(1));
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for k in 0..iters {
                    total += sketch_update_batch(&sketch, threads, OPS_PER_THREAD, ALPHABET, k);
                }
                total
            });
        });
        group.bench_with_input(
            BenchmarkId::new("mutex", threads),
            &threads,
            |b, &threads| {
                let sketch = MutexCountMin::new(params(), &mut CoinFlips::from_seed(1));
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for k in 0..iters {
                        total += sketch_update_batch(&sketch, threads, OPS_PER_THREAD, ALPHABET, k);
                    }
                    total
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("snapshot", threads),
            &threads,
            |b, &threads| {
                let sketch = SnapshotCountMin::new(params(), &mut CoinFlips::from_seed(1));
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for k in 0..iters {
                        total += sketch_update_batch(&sketch, threads, OPS_PER_THREAD, ALPHABET, k);
                    }
                    total
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("delegation", threads),
            &threads,
            |b, &threads| {
                let sketch = DelegatedCountMin::new(params(), 128, &mut CoinFlips::from_seed(1));
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for k in 0..iters {
                        total += sketch_update_batch(&sketch, threads, OPS_PER_THREAD, ALPHABET, k);
                    }
                    total
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sharded", threads),
            &threads,
            |b, &threads| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for k in 0..iters {
                        // Sharded handles are single-use per shard;
                        // build a fresh sketch per batch (cheap vs the
                        // 20k-updates batch it times).
                        let sketch =
                            ShardedPcm::new(params(), threads, &mut CoinFlips::from_seed(1));
                        total += sketch_update_batch(&sketch, threads, OPS_PER_THREAD, ALPHABET, k);
                    }
                    total
                });
            },
        );
    }
    group.finish();
}

fn bench_mixed(c: &mut Criterion) {
    let mut group = c.benchmark_group("cm_mixed_ingest_plus_queries");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let threads = 4;
    let queries = 5_000;
    group.bench_function("pcm", |b| {
        let sketch = Pcm::new(params(), &mut CoinFlips::from_seed(2));
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for k in 0..iters {
                total += sketch_mixed_batch(&sketch, threads, OPS_PER_THREAD, queries, ALPHABET, k);
            }
            total
        });
    });
    group.bench_function("mutex", |b| {
        let sketch = MutexCountMin::new(params(), &mut CoinFlips::from_seed(2));
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for k in 0..iters {
                total += sketch_mixed_batch(&sketch, threads, OPS_PER_THREAD, queries, ALPHABET, k);
            }
            total
        });
    });
    group.bench_function("snapshot", |b| {
        let sketch = SnapshotCountMin::new(params(), &mut CoinFlips::from_seed(2));
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for k in 0..iters {
                total += sketch_mixed_batch(&sketch, threads, OPS_PER_THREAD, queries, ALPHABET, k);
            }
            total
        });
    });
    group.bench_function("delegation", |b| {
        let sketch = DelegatedCountMin::new(params(), 128, &mut CoinFlips::from_seed(2));
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for k in 0..iters {
                total += sketch_mixed_batch(&sketch, threads, OPS_PER_THREAD, queries, ALPHABET, k);
            }
            total
        });
    });
    group.finish();
}

/// Ablation: sharding trades query cost (reads `shards × depth`
/// cells) for contention-free updates — the CountMin analogue of the
/// paper's O(1)-update / O(n)-read counter trade-off.
fn bench_sharded_query_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded_query_cost");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    // Baseline: unsharded PCM query.
    {
        let pcm = Pcm::new(params(), &mut CoinFlips::from_seed(3));
        pcm.update(7);
        group.bench_function("pcm_1_matrix", |b| {
            b.iter(|| std::hint::black_box(pcm.estimate(7)))
        });
    }
    for shards in [1usize, 2, 4, 8, 16] {
        let sketch = ShardedPcm::new(params(), shards, &mut CoinFlips::from_seed(3));
        {
            use ivl_concurrent::{ConcurrentSketch, SketchHandle};
            let mut h = sketch.handle();
            h.update(7);
        }
        group.bench_with_input(BenchmarkId::new("sharded", shards), &shards, |b, _| {
            b.iter(|| std::hint::black_box(sketch.estimate(7)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_mixed, bench_sharded_query_cost);
criterion_main!(benches);
