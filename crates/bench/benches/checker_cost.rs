//! Ablation: the cost of checking IVL.
//!
//! DESIGN.md §6 argues the monotone interval checker is the piece that
//! makes IVL *practically* checkable on recorded executions. This
//! bench quantifies it: the exact search on small histories vs the
//! linear-time interval check on histories three orders of magnitude
//! larger.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ivl_shmem::algorithms::IvlCounterSim;
use ivl_shmem::executor::{SimObject, SimOp, Workload};
use ivl_shmem::{count_schedules, explore_dpor, Memory};
use ivl_spec::gen::{random_linearizable_history, GenConfig};
use ivl_spec::ivl::{check_ivl_exact, check_ivl_monotone};
use ivl_spec::specs::BatchedCounterSpec;
use rand::Rng;
use std::time::Duration;

fn history(processes: u32, ops: u32, seed: u64) -> ivl_spec::History<u64, (), u64> {
    random_linearizable_history(
        &BatchedCounterSpec,
        &GenConfig {
            processes,
            ops_per_process: ops,
            seed,
            ..GenConfig::default()
        },
        |r| r.gen_range(1..=5u64),
        |_| (),
    )
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("ivl_check_exact");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for (procs, ops) in [(2u32, 3u32), (3, 3), (4, 3)] {
        let h = history(procs, ops, 42);
        let total_ops = (procs * ops) as u64;
        group.throughput(Throughput::Elements(total_ops));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{procs}x{ops}")),
            &h,
            |b, h| b.iter(|| check_ivl_exact(&[BatchedCounterSpec], h)),
        );
    }
    group.finish();
}

fn bench_monotone(c: &mut Criterion) {
    let mut group = c.benchmark_group("ivl_check_monotone");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for (procs, ops) in [(4u32, 3u32), (8, 100), (8, 1_000), (8, 5_000)] {
        let h = history(procs, ops, 42);
        let total_ops = (procs * ops) as u64;
        group.throughput(Throughput::Elements(total_ops));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{procs}x{ops}")),
            &h,
            |b, h| b.iter(|| check_ivl_monotone(&BatchedCounterSpec, h)),
        );
    }
    group.finish();
}

/// Algorithm 1 with one single-step updater and `readers` full-scan
/// readers: the regime where partial-order reduction pays (reader
/// steps on distinct registers commute).
fn counter_config(readers: u32) -> impl Fn() -> (Memory, Box<dyn SimObject>, Vec<Workload>) {
    move || {
        let n = 1 + readers as usize;
        let mut mem = Memory::new();
        let obj = IvlCounterSim::new(&mut mem, n);
        let mut workloads = vec![Workload {
            ops: vec![SimOp::Update(3)],
        }];
        for _ in 0..readers {
            workloads.push(Workload {
                ops: vec![SimOp::Query(0)],
            });
        }
        (mem, Box::new(obj) as Box<dyn SimObject>, workloads)
    }
}

/// Exhaustive schedule exploration: naive DFS enumerating every
/// interleaving vs DPOR enumerating one representative per trace
/// class (DESIGN.md §8). Same configs, so the wall-clock ratio *is*
/// the reduction.
fn bench_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_exploration");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));
    for readers in [1u32, 2] {
        let config = counter_config(readers);
        group.bench_with_input(
            BenchmarkId::new("naive_dfs", format!("1w{readers}r")),
            &config,
            |b, cfg| {
                b.iter(|| {
                    let stats = count_schedules(cfg, u64::MAX);
                    assert!(!stats.truncated);
                    stats.schedules
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dpor", format!("1w{readers}r")),
            &config,
            |b, cfg| {
                b.iter(|| {
                    let stats = explore_dpor(cfg, u64::MAX, |_, _| {});
                    assert!(!stats.truncated);
                    stats.classes
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exact, bench_monotone, bench_exploration);
criterion_main!(benches);
