//! Ablation: the cost of checking IVL.
//!
//! DESIGN.md §6 argues the monotone interval checker is the piece that
//! makes IVL *practically* checkable on recorded executions. This
//! bench quantifies it: the exact search on small histories vs the
//! linear-time interval check on histories three orders of magnitude
//! larger.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ivl_spec::gen::{random_linearizable_history, GenConfig};
use ivl_spec::ivl::{check_ivl_exact, check_ivl_monotone};
use ivl_spec::specs::BatchedCounterSpec;
use rand::Rng;
use std::time::Duration;

fn history(processes: u32, ops: u32, seed: u64) -> ivl_spec::History<u64, (), u64> {
    random_linearizable_history(
        &BatchedCounterSpec,
        &GenConfig {
            processes,
            ops_per_process: ops,
            seed,
            ..GenConfig::default()
        },
        |r| r.gen_range(1..=5u64),
        |_| (),
    )
}

fn bench_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("ivl_check_exact");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for (procs, ops) in [(2u32, 3u32), (3, 3), (4, 3)] {
        let h = history(procs, ops, 42);
        let total_ops = (procs * ops) as u64;
        group.throughput(Throughput::Elements(total_ops));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{procs}x{ops}")),
            &h,
            |b, h| b.iter(|| check_ivl_exact(&[BatchedCounterSpec], h)),
        );
    }
    group.finish();
}

fn bench_monotone(c: &mut Criterion) {
    let mut group = c.benchmark_group("ivl_check_monotone");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for (procs, ops) in [(4u32, 3u32), (8, 100), (8, 1_000), (8, 5_000)] {
        let h = history(procs, ops, 42);
        let total_ops = (procs * ops) as u64;
        group.throughput(Throughput::Elements(total_ops));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{procs}x{ops}")),
            &h,
            |b, h| b.iter(|| check_ivl_monotone(&BatchedCounterSpec, h)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_exact, bench_monotone);
criterion_main!(benches);
