//! E19: single-writer ingest hot path — strict `Pcm` vs `ShardedPcm`
//! vs `BufferedPcm` across the batch-bound sweep b ∈ {1, 8, 64, 256}.
//!
//! One thread ingests a pre-generated Zipf stream; only the ingest
//! loop (plus, for the buffered sketch, the final flush) is timed, so
//! the numbers isolate the update path: hash + d atomic `fetch_add`s
//! for strict/sharded, coalescing-table insert + amortized propagation
//! for buffered. Committed results live in `BENCH_core.json`.
//!
//! Beyond the usual criterion CLI, this bench accepts:
//!
//! ```text
//!   --quick       smaller stream + 3 samples (CI smoke)
//!   --json FILE   write the measured table as JSON (BENCH_core.json)
//!   --enforce     exit 1 if buffered b=64 ingests slower than strict
//! ```

use criterion::{BenchmarkId, Criterion, Throughput};
use ivl_concurrent::{
    BatchScratch, BufferedPcm, ConcurrentSketch, Pcm, ShardedPcm, SketchHandle, UpdateBuffer,
};
use ivl_sketch::countmin::CountMinParams;
use ivl_sketch::stream::ZipfStream;
use ivl_sketch::CoinFlips;
use std::time::{Duration, Instant};

const ALPHABET: usize = 10_000;
const ZIPF_S: f64 = 1.1;
const SHARDS: usize = 4;
const BATCHES: [u64; 4] = [1, 8, 64, 256];
/// Wire-batch size for the E20 batch-kernel comparison — the loadgen
/// default, so the measured ratio is the serving-path speedup.
const FRAME: usize = 32;
/// Key alphabet for the E20 batch-kernel comparison: loadgen's default
/// (`--keys 512`), not this bench's 10k E19 alphabet — the kernel's
/// coalescing win scales with the duplicate rate inside a frame, so
/// the honest measurement uses the key distribution the wire actually
/// carries.
const FRAME_ALPHABET: usize = 512;
/// Zipf exponent of the hot-key regime the batch kernel is built for
/// (the same z=1.5 that makes the buffered coalescing win visible in
/// the skew group below). A 32-item frame at z=1.5 carries ~0.41
/// distinct keys per item, versus ~0.67 at the serving default z=1.1 —
/// and since the kernel's win is proportional to the in-frame
/// duplicate rate (break-even sits near 0.7 distinct), the enforced
/// pair measures this regime while the serving-default pair is
/// reported alongside it (see EXPERIMENTS E20 for both).
const FRAME_HOT_S: f64 = 1.5;

fn params() -> CountMinParams {
    // α ≈ 0.1%, δ ≈ 1%: the dimensions a production deployment uses.
    CountMinParams::for_bounds(0.001, 0.01)
}

fn stream(n: usize, seed: u64) -> Vec<u64> {
    skewed_stream(n, ZIPF_S, seed)
}

fn skewed_stream(n: usize, s: f64, seed: u64) -> Vec<u64> {
    ZipfStream::new(ALPHABET, s, seed).take(n).collect()
}

/// Times `iters` fresh-sketch ingest passes over `items`, timing only
/// what `ingest` does (construction and stream generation excluded).
fn timed_passes(
    iters: u64,
    items: &[u64],
    mut ingest: impl FnMut(&mut CoinFlips, &[u64]) -> Duration,
) -> Duration {
    let mut total = Duration::ZERO;
    for k in 0..iters {
        let mut coins = CoinFlips::from_seed(k);
        total += ingest(&mut coins, items);
    }
    total
}

fn bench_hot_path(c: &mut Criterion, n: usize) {
    let items = stream(n, 42);
    let mut group = c.benchmark_group("sketch_hot_path");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(n as u64));

    group.bench_function("strict", |b| {
        b.iter_custom(|iters| {
            timed_passes(iters, &items, |coins, items| {
                let pcm = Pcm::new(params(), coins);
                let start = Instant::now();
                for &i in items {
                    pcm.update(i);
                }
                start.elapsed()
            })
        });
    });

    group.bench_function(BenchmarkId::new("sharded", format!("s={SHARDS}")), |b| {
        b.iter_custom(|iters| {
            timed_passes(iters, &items, |coins, items| {
                let sketch = ShardedPcm::new(params(), SHARDS, coins);
                let mut h = sketch.handle();
                let start = Instant::now();
                for &i in items {
                    h.update(i);
                }
                start.elapsed()
            })
        });
    });

    for batch in BATCHES {
        group.bench_function(BenchmarkId::new("buffered", format!("b={batch}")), |b| {
            b.iter_custom(|iters| {
                timed_passes(iters, &items, |coins, items| {
                    let sketch = BufferedPcm::new(params(), batch, coins);
                    let mut h = sketch.handle();
                    let start = Instant::now();
                    for &i in items {
                        h.update(i);
                    }
                    // The final propagation is part of the ingest
                    // cost: queries must be able to see the stream.
                    h.flush();
                    start.elapsed()
                })
            });
        });
    }

    // The service's actual write path: an `UpdateBuffer` draining into
    // a shard lease, whose SWMR cells take a plain load+store instead
    // of a lock-prefixed `fetch_add`.
    for batch in BATCHES {
        group.bench_function(
            BenchmarkId::new("buffered_lease", format!("b={batch}")),
            |b| {
                b.iter_custom(|iters| {
                    timed_passes(iters, &items, |coins, items| {
                        let sketch = ShardedPcm::new(params(), SHARDS, coins);
                        let mut lease = sketch.lease().expect("fresh sketch has free shards");
                        let mut buf = UpdateBuffer::new(params().depth, batch);
                        let start = Instant::now();
                        for &i in items {
                            if buf.push(sketch.hashes(), i, 1) {
                                buf.drain(|cols, count| lease.apply_rows(cols, count));
                            }
                        }
                        buf.drain(|cols, count| lease.apply_rows(cols, count));
                        start.elapsed()
                    })
                });
            },
        );
    }
    group.finish();
}

/// E20: the batch ingest kernels vs the per-item loop, on Zipf streams
/// chunked into wire-sized frames of [`FRAME`]. The kernels coalesce
/// duplicate keys within each frame, hash each distinct key once, and
/// touch cells row-major with prefetch — the exact code `BATCH2`
/// frames take through both serving backends. Two regimes run: the
/// hot-key regime ([`FRAME_HOT_S`], the enforced pair) where in-frame
/// duplicates are plentiful, and the serving default ([`ZIPF_S`]),
/// which sits at the coalescing break-even and is reported for
/// honesty, not enforced.
fn bench_batch_kernel(c: &mut Criterion, n: usize) {
    let mut group = c.benchmark_group("sketch_batch_kernel");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(n as u64));

    for (tag, s) in [("z=1.5", FRAME_HOT_S), ("z=1.1", ZIPF_S)] {
        let items: Vec<u64> = ZipfStream::new(FRAME_ALPHABET, s, 45).take(n).collect();
        let frames: Vec<Vec<(u64, u64)>> = items
            .chunks(FRAME)
            .map(|chunk| chunk.iter().map(|&k| (k, 1)).collect())
            .collect();

        group.bench_function(BenchmarkId::new("per_item", tag), |b| {
            b.iter_custom(|iters| {
                timed_passes(iters, &items, |coins, _| {
                    let pcm = Pcm::new(params(), coins);
                    let start = Instant::now();
                    for frame in &frames {
                        for &(k, w) in frame {
                            pcm.update_by(k, w);
                        }
                    }
                    start.elapsed()
                })
            });
        });

        group.bench_function(BenchmarkId::new("batch32", tag), |b| {
            b.iter_custom(|iters| {
                timed_passes(iters, &items, |coins, _| {
                    let pcm = Pcm::new(params(), coins);
                    let mut scratch = BatchScratch::with_capacity(params().depth, FRAME);
                    let start = Instant::now();
                    for frame in &frames {
                        pcm.update_batch(frame, &mut scratch);
                    }
                    start.elapsed()
                })
            });
        });

        // The lease and buffered kernels only run in the hot regime —
        // they exist to show the kernels compose with the sharded and
        // buffered write paths, not to re-measure skew sensitivity.
        if s != FRAME_HOT_S {
            continue;
        }

        group.bench_function(BenchmarkId::new("batch32_lease", tag), |b| {
            b.iter_custom(|iters| {
                timed_passes(iters, &items, |coins, _| {
                    let sketch = ShardedPcm::new(params(), SHARDS, coins);
                    let mut lease = sketch.lease().expect("fresh sketch has free shards");
                    let mut scratch = BatchScratch::with_capacity(params().depth, FRAME);
                    let start = Instant::now();
                    for frame in &frames {
                        lease.apply_batch(frame, &mut scratch);
                    }
                    start.elapsed()
                })
            });
        });

        group.bench_function(BenchmarkId::new("batch32_buf64", tag), |b| {
            b.iter_custom(|iters| {
                timed_passes(iters, &items, |coins, _| {
                    let sketch = BufferedPcm::new(params(), 64, coins);
                    let mut h = sketch.handle();
                    let mut scratch = BatchScratch::with_capacity(params().depth, FRAME);
                    let start = Instant::now();
                    for frame in &frames {
                        h.absorb_batch(frame, &mut scratch);
                    }
                    h.flush();
                    start.elapsed()
                })
            });
        });
    }
    group.finish();
}

/// Skew sensitivity: the buffered win is proportional to the
/// coalescing hit rate, which a Zipf exponent of 1.5 makes visible —
/// repeats inside a b=64 window collapse to one table hit, skipping
/// both the row hashing and the shared-cell traffic.
fn bench_skew(c: &mut Criterion, n: usize) {
    let hot = skewed_stream(n, 1.5, 44);
    let mut group = c.benchmark_group("sketch_hot_path_skew");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(n as u64));

    group.bench_function("strict/z=1.5", |b| {
        b.iter_custom(|iters| {
            timed_passes(iters, &hot, |coins, items| {
                let pcm = Pcm::new(params(), coins);
                let start = Instant::now();
                for &i in items {
                    pcm.update(i);
                }
                start.elapsed()
            })
        });
    });

    group.bench_function("buffered/z=1.5,b=64", |b| {
        b.iter_custom(|iters| {
            timed_passes(iters, &hot, |coins, items| {
                let sketch = BufferedPcm::new(params(), 64, coins);
                let mut h = sketch.handle();
                let start = Instant::now();
                for &i in items {
                    h.update(i);
                }
                h.flush();
                start.elapsed()
            })
        });
    });
    group.finish();
}

/// The contended shape of the same comparison: `T` writers ingest
/// disjoint slices of the stream concurrently. Strict `Pcm` writers
/// bounce the hot rows' cache lines on every `fetch_add`; buffered
/// lease writers touch only private cells plus a thread-local buffer,
/// so this is where the batched construction's O(1)-update claim
/// (Lemma 10) shows up as wall clock.
fn bench_contended(c: &mut Criterion, n: usize) {
    const THREADS: usize = 4;
    let items = stream(n, 43);
    let chunk = items.len() / THREADS;
    let mut group = c.benchmark_group("sketch_hot_path_contended");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1))
        .throughput(Throughput::Elements(n as u64));

    group.bench_function(BenchmarkId::new("strict", format!("t={THREADS}")), |b| {
        b.iter_custom(|iters| {
            timed_passes(iters, &items, |coins, items| {
                let pcm = Pcm::new(params(), coins);
                let start = Instant::now();
                std::thread::scope(|s| {
                    for slice in items.chunks(chunk) {
                        let pcm = &pcm;
                        s.spawn(move || {
                            for &i in slice {
                                pcm.update(i);
                            }
                        });
                    }
                });
                start.elapsed()
            })
        });
    });

    group.bench_function(
        BenchmarkId::new("buffered_lease", format!("t={THREADS},b=64")),
        |b| {
            b.iter_custom(|iters| {
                timed_passes(iters, &items, |coins, items| {
                    let sketch = ShardedPcm::new(params(), THREADS, coins);
                    let start = Instant::now();
                    std::thread::scope(|s| {
                        for slice in items.chunks(chunk) {
                            let sketch = &sketch;
                            s.spawn(move || {
                                let mut lease = sketch.lease().expect("one shard per writer");
                                let mut buf = UpdateBuffer::new(params().depth, 64);
                                for &i in slice {
                                    if buf.push(sketch.hashes(), i, 1) {
                                        buf.drain(|cols, count| lease.apply_rows(cols, count));
                                    }
                                }
                                buf.drain(|cols, count| lease.apply_rows(cols, count));
                            });
                        }
                    });
                    start.elapsed()
                })
            });
        },
    );
    group.finish();
}

/// Melem/s of the result whose label ends in `suffix`.
fn rate_of(c: &Criterion, suffix: &str) -> Option<f64> {
    c.results()
        .iter()
        .find(|r| r.label.ends_with(suffix))
        .and_then(|r| r.elems_per_sec)
}

fn write_json(c: &Criterion, path: &str, n: usize, quick: bool) -> std::io::Result<()> {
    let mut rows = String::new();
    for r in c.results() {
        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        let rate = r.elems_per_sec.unwrap_or(0.0);
        rows.push_str(&format!(
            "    {{\"bench\": \"{}\", \"ns_per_pass\": {:.0}, \"melem_per_s\": {:.3}}}",
            r.label,
            r.ns_per_iter,
            rate / 1e6
        ));
    }
    let ratio = match (rate_of(c, "buffered/b=64"), rate_of(c, "strict")) {
        (Some(b), Some(s)) if s > 0.0 => b / s,
        _ => 0.0,
    };
    let pair = |b: &str, p: &str| match (rate_of(c, b), rate_of(c, p)) {
        (Some(b), Some(p)) if p > 0.0 => b / p,
        _ => 0.0,
    };
    let batch_hot = pair("batch32/z=1.5", "per_item/z=1.5");
    let batch_serving = pair("batch32/z=1.1", "per_item/z=1.1");
    let doc = format!(
        "{{\n  \"bench\": \"sketch_hot_path\",\n  \"items\": {n},\n  \
         \"alphabet\": {ALPHABET},\n  \"zipf_s\": {ZIPF_S},\n  \
         \"shards\": {SHARDS},\n  \"frame\": {FRAME},\n  \
         \"frame_alphabet\": {FRAME_ALPHABET},\n  \"quick\": {quick},\n  \
         \"buffered_b64_vs_strict\": {ratio:.3},\n  \
         \"batch32_vs_per_item_hot\": {batch_hot:.3},\n  \
         \"batch32_vs_per_item_serving\": {batch_serving:.3},\n  \"runs\": [\n{rows}\n  ]\n}}\n"
    );
    std::fs::write(path, doc)
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut enforce = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = args.next(),
            "--enforce" => enforce = true,
            // --quick is read by the criterion shim; cargo bench
            // passes --bench and filter strings — ignore both.
            _ => {}
        }
    }

    let mut c = Criterion::default();
    let n = if c.is_quick() { 20_000 } else { 200_000 };
    bench_hot_path(&mut c, n);
    bench_batch_kernel(&mut c, n);
    bench_skew(&mut c, n);
    bench_contended(&mut c, n);

    if let Some(path) = &json_path {
        if let Err(e) = write_json(&c, path, n, c.is_quick()) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
    if enforce {
        // Generous threshold: on a noisy shared runner single-writer
        // buffered b=64 sits around parity with strict, so the gate
        // only trips on a genuine pathology (coalescing or flush
        // regressed into multiplying work), not on scheduler jitter.
        const FLOOR: f64 = 0.6;
        let (b64, strict) = (rate_of(&c, "buffered/b=64"), rate_of(&c, "strict"));
        match (b64, strict) {
            (Some(b64), Some(strict)) if b64 >= strict * FLOOR => {
                println!("enforce: buffered b=64 at {:.2}x strict — ok", b64 / strict);
            }
            (Some(b64), Some(strict)) => {
                eprintln!(
                    "enforce: buffered b=64 ingests at {:.2}x strict (< {FLOOR}) — \
                     the buffer is multiplying work instead of amortizing it",
                    b64 / strict
                );
                std::process::exit(1);
            }
            _ => {
                eprintln!("enforce: missing strict or buffered b=64 measurement");
                std::process::exit(1);
            }
        }
        // The batch kernel must beat the per-item loop in its hot-key
        // regime (z=1.5, where in-frame duplicates are plentiful) —
        // that's the coalescing payoff the kernel exists for, so a
        // ratio below 1 means batching regressed into a pessimization.
        // The serving-default pair (z=1.1) sits at the coalescing
        // break-even by construction and is reported, not gated.
        const BATCH_FLOOR: f64 = 1.0;
        match (rate_of(&c, "batch32/z=1.5"), rate_of(&c, "per_item/z=1.5")) {
            (Some(batch), Some(per_item)) if batch >= per_item * BATCH_FLOOR => {
                println!(
                    "enforce: batch32 kernel at {:.2}x per-item (z=1.5) — ok",
                    batch / per_item
                );
            }
            (Some(batch), Some(per_item)) => {
                eprintln!(
                    "enforce: batch32 kernel at {:.2}x per-item (z=1.5, < {BATCH_FLOOR}) — \
                     batching has become a pessimization",
                    batch / per_item
                );
                std::process::exit(1);
            }
            _ => {
                eprintln!("enforce: missing batch32 or per_item measurement");
                std::process::exit(1);
            }
        }
    }
}
