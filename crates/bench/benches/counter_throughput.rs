//! E3: wall-clock cost of batched counters (paper §6).
//!
//! Measures update throughput of the four counters across thread
//! counts, and the cost of reads. Expected shape: the IVL counter's
//! updates scale linearly with threads (uncontended per-thread
//! slots); fetch-add saturates on one cache line; the mutex counter
//! is flat-to-degrading; the snapshot counter pays Θ(n) per update and
//! collapses as threads grow.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ivl_bench::{counter_mixed_batch, counter_update_batch};
use ivl_counter::{
    FetchAddCounter, IvlBatchedCounter, MutexBatchedCounter, SharedBatchedCounter,
    SnapshotBatchedCounter,
};
use std::time::Duration;

const OPS_PER_THREAD: u64 = 20_000;

fn bench_updates(c: &mut Criterion) {
    let max_threads = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));
    let mut group = c.benchmark_group("counter_update");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for threads in [1usize, 2, 4, max_threads]
        .iter()
        .copied()
        .collect::<std::collections::BTreeSet<_>>()
    {
        group.throughput(Throughput::Elements(OPS_PER_THREAD * threads as u64));
        group.bench_with_input(BenchmarkId::new("ivl", threads), &threads, |b, &threads| {
            let counter = IvlBatchedCounter::new(threads);
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    total += counter_update_batch(&counter, threads, OPS_PER_THREAD, 1);
                }
                total
            });
        });
        group.bench_with_input(
            BenchmarkId::new("fetch_add", threads),
            &threads,
            |b, &threads| {
                let counter = FetchAddCounter::new(threads);
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        total += counter_update_batch(&counter, threads, OPS_PER_THREAD, 1);
                    }
                    total
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mutex", threads),
            &threads,
            |b, &threads| {
                let counter = MutexBatchedCounter::new(threads);
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        total += counter_update_batch(&counter, threads, OPS_PER_THREAD, 1);
                    }
                    total
                });
            },
        );
        // The snapshot counter is orders of magnitude slower per
        // update; use a smaller batch to keep the bench bounded.
        group.bench_with_input(
            BenchmarkId::new("snapshot", threads),
            &threads,
            |b, &threads| {
                let counter = SnapshotBatchedCounter::new(threads);
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        total +=
                            counter_update_batch(&counter, threads, OPS_PER_THREAD / 20, 1) * 20;
                    }
                    total
                });
            },
        );
    }
    group.finish();
}

fn bench_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("counter_read");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for slots in [4usize, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::new("ivl", slots), &slots, |b, &slots| {
            let counter = IvlBatchedCounter::new(slots);
            for s in 0..slots {
                counter.update_slot(s, 1);
            }
            b.iter(|| std::hint::black_box(counter.read()));
        });
        group.bench_with_input(BenchmarkId::new("fetch_add", slots), &slots, |b, &slots| {
            let counter = FetchAddCounter::new(slots);
            counter.update_slot(0, 1);
            b.iter(|| std::hint::black_box(counter.read()));
        });
    }
    group.finish();
}

fn bench_mixed(c: &mut Criterion) {
    let mut group = c.benchmark_group("counter_mixed");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let threads = 4;
    group.bench_function("ivl", |b| {
        let counter = IvlBatchedCounter::new(threads);
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                total += counter_mixed_batch(&counter, threads, OPS_PER_THREAD, 2_000);
            }
            total
        });
    });
    group.bench_function("mutex", |b| {
        let counter = MutexBatchedCounter::new(threads);
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                total += counter_mixed_batch(&counter, threads, OPS_PER_THREAD, 2_000);
            }
            total
        });
    });
    group.finish();
}

criterion_group!(benches, bench_updates, bench_reads, bench_mixed);
criterion_main!(benches);
