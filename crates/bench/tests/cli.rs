//! End-to-end tests of the `ivl_check` CLI: verdicts and exit codes
//! for histories in the text interchange format.

use std::io::Write;
use std::process::Command;

fn run_cli(history: &str, spec: &str) -> (i32, String) {
    let mut f = tempfile_path();
    write!(f.1, "{history}").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_ivl_check"))
        .arg(&f.0)
        .arg(spec)
        .output()
        .expect("run ivl_check");
    let code = out.status.code().unwrap_or(-1);
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    std::fs::remove_file(&f.0).ok();
    (code, stdout)
}

/// Minimal unique temp file (std-only).
fn tempfile_path() -> (String, std::fs::File) {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "ivl_check_test_{}_{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let f = std::fs::File::create(&path).unwrap();
    (path.to_string_lossy().into_owned(), f)
}

const INTERMEDIATE_READ: &str = "\
inv 0 0 0 update 7
rsp 0 0 0
inv 1 0 0 update 3
inv 2 1 0 query 0
rsp 2 1 0 8
rsp 1 0 0
";

#[test]
fn intermediate_value_is_ivl_not_linearizable() {
    let (code, out) = run_cli(INTERMEDIATE_READ, "counter");
    assert_eq!(code, 0, "IVL history exits 0:\n{out}");
    assert!(out.contains("linearizable : false"));
    assert!(out.contains("IVL          : Ivl"));
    assert!(out.contains("7 <= 8 <= 10"));
}

#[test]
fn out_of_envelope_read_rejected() {
    let bad = INTERMEDIATE_READ.replace("rsp 2 1 0 8", "rsp 2 1 0 11");
    let (code, out) = run_cli(&bad, "counter");
    assert_eq!(code, 2, "violating history exits 2:\n{out}");
    assert!(out.contains("NoUpperLinearization"));
    assert!(out.contains("VIOLATION"));
}

#[test]
fn incdec_regular_but_not_ivl() {
    // §3.4: query concurrent with inc(1), dec(-1); returns -1.
    let h = "\
inv 0 2 0 query 0
inv 1 0 0 update 1
rsp 1 0 0
inv 2 1 0 update -1
rsp 2 1 0
rsp 0 2 0 -1
";
    let (code, out) = run_cli(h, "incdec");
    assert_eq!(code, 2, "{out}");
    assert!(out.contains("NoLowerLinearization"));
}

#[test]
fn min_register_antitone_interval() {
    // Insert 5 concurrent with a read returning MAX (read misses it).
    let h = "\
inv 0 1 0 query 0
inv 1 0 0 update 5
rsp 1 0 0
rsp 0 1 0 18446744073709551615
";
    let (code, out) = run_cli(h, "min");
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("IVL          : Ivl"));
}

#[test]
fn parse_errors_exit_1() {
    let (code, _) = run_cli("nonsense here\n", "counter");
    assert_eq!(code, 1);
}

#[test]
fn unknown_spec_exits_1() {
    let (code, _) = run_cli(INTERMEDIATE_READ, "bogus");
    assert_eq!(code, 1);
}
