//! Network-monitoring scenario (the paper's §1.1 motivation): a
//! high-rate packet stream is sketched concurrently by several ingest
//! threads while an operator thread queries hot flows in real time —
//! "queries return fresh results without hampering data ingestion".
//!
//! Three sketches ingest the same traffic: the IVL `PCM`, the
//! linearizable mutex CountMin, and the delegation-style buffered
//! sketch. The example prints per-flow estimates against ground truth
//! and the live-query behaviour of each.
//!
//! Run with: `cargo run --release --example network_monitor`

use ivl_core::prelude::*;
use ivl_sketch::stream::ZipfStream;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

const THREADS: u64 = 4;
const PACKETS_PER_THREAD: u64 = 250_000;
const FLOWS: usize = 50_000;
const ALPHA: f64 = 0.0005;
const DELTA: f64 = 0.01;

fn ground_truth() -> (Vec<Vec<u64>>, HashMap<u64, u64>) {
    let streams: Vec<Vec<u64>> = (0..THREADS)
        .map(|t| {
            ZipfStream::new(FLOWS, 1.15, 9_000 + t)
                .take(PACKETS_PER_THREAD as usize)
                .collect()
        })
        .collect();
    let mut truth = HashMap::new();
    for s in &streams {
        for &f in s {
            *truth.entry(f).or_default() += 1;
        }
    }
    (streams, truth)
}

fn main() {
    let (streams, truth) = ground_truth();
    let n: u64 = truth.values().sum();
    let eps = (ALPHA * n as f64).ceil() as u64;

    let mut coins = CoinFlips::from_seed(7);
    let pcm = Pcm::for_bounds(ALPHA, DELTA, &mut coins);
    let params = pcm.params();
    println!(
        "CountMin dimensions for α={ALPHA}, δ={DELTA}: {}×{} counters; ε = αn = {eps}",
        params.depth, params.width
    );

    // Concurrent ingest with a live monitor querying the hottest flows.
    let done = AtomicBool::new(false);
    let mut live_samples: Vec<(u64, u64)> = Vec::new();
    crossbeam::scope(|s| {
        for stream in &streams {
            let pcm = &pcm;
            s.spawn(move |_| {
                for &flow in stream {
                    pcm.update(flow);
                }
            });
        }
        let monitor = s.spawn(|_| {
            let mut samples = Vec::new();
            while !done.load(Ordering::Acquire) {
                // Live estimate of the hottest flow (Zipf rank 0).
                samples.push((pcm.stream_len_estimate(), pcm.estimate(0)));
            }
            samples
        });
        // Wait for ingest threads by re-joining the scope implicitly:
        // spawn a watcher that flips `done` when ingest total reaches n.
        {
            let pcm = &pcm;
            let done = &done;
            s.spawn(move |_| {
                while pcm.stream_len_estimate() < n {
                    std::hint::spin_loop();
                }
                done.store(true, Ordering::Release);
            });
        }
        live_samples = monitor.join().unwrap();
    })
    .unwrap();

    println!(
        "\nlive monitor issued {} queries during ingest; estimates of flow 0 were monotone: {}",
        live_samples.len(),
        live_samples.windows(2).all(|w| w[0].1 <= w[1].1)
    );

    // Post-ingest report for the top flows.
    let mut hot: Vec<(&u64, &u64)> = truth.iter().collect();
    hot.sort_by(|a, b| b.1.cmp(a.1));
    println!("\n flow |    true |     PCM | within f..f+ε");
    println!("------+---------+---------+--------------");
    let mut ok = 0;
    for (&flow, &f) in hot.iter().take(10) {
        let est = pcm.estimate(flow);
        let within = est >= f && est <= f + eps;
        ok += within as u32;
        println!("{flow:>5} | {f:>7} | {est:>7} | {within}");
    }
    println!("\n{ok}/10 top flows within the Corollary 8 envelope (δ = {DELTA})");

    // Heavy-hitter cross-check with SpaceSaving (sequential, on the
    // concatenated stream).
    let mut ss = SpaceSaving::new(64);
    for s in &streams {
        for &f in s {
            ss.update(f);
        }
    }
    let guaranteed = ss.guaranteed_above(n / 200);
    println!(
        "\nSpaceSaving guarantees {} flows above n/200 = {}; PCM agrees on all: {}",
        guaranteed.len(),
        n / 200,
        guaranteed.iter().all(|&f| pcm.estimate(f) + eps >= n / 200)
    );
}
