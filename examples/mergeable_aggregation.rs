//! Distributed aggregation with mergeable summaries (Agarwal et al.,
//! "Mergeable Summaries" — reference \[1\] of the paper): per-site
//! sketches built independently and merged at a coordinator, compared
//! against (a) a single sketch of the union stream and (b) the
//! sharded concurrent CountMin, whose query-time summation is the
//! *online* version of the same merge.
//!
//! Run with: `cargo run --release --example mergeable_aggregation`

use ivl_concurrent::{ShardedPcm, SketchHandle};
use ivl_core::prelude::*;
use ivl_sketch::stream::ZipfStream;
use std::collections::HashMap;

const SITES: usize = 4;
const EVENTS_PER_SITE: usize = 200_000;
const ALPHABET: usize = 20_000;
const ALPHA: f64 = 0.001;
const DELTA: f64 = 0.01;

fn main() {
    // Per-site streams + ground truth.
    let streams: Vec<Vec<u64>> = (0..SITES)
        .map(|s| {
            ZipfStream::new(ALPHABET, 1.2, 500 + s as u64)
                .take(EVENTS_PER_SITE)
                .collect()
        })
        .collect();
    let mut truth: HashMap<u64, u64> = HashMap::new();
    for s in &streams {
        for &i in s {
            *truth.entry(i).or_default() += 1;
        }
    }
    let n: u64 = truth.values().sum();
    let eps = (ALPHA * n as f64).ceil() as u64;

    // All parties share coins (same seed = same hash functions), the
    // precondition for merging.
    let proto = {
        let mut coins = CoinFlips::from_seed(77);
        CountMin::for_bounds(ALPHA, DELTA, &mut coins)
    };

    // (a) Batch path: one sketch per site, merged at the coordinator.
    let mut sites: Vec<CountMin> = (0..SITES).map(|_| proto.clone()).collect();
    crossbeam::scope(|s| {
        for (sketch, stream) in sites.iter_mut().zip(&streams) {
            s.spawn(move |_| {
                for &i in stream {
                    sketch.update(i);
                }
            });
        }
    })
    .unwrap();
    let mut merged = sites.remove(0);
    for site in &sites {
        merged.merge(site);
    }

    // (b) Reference: a single sequential sketch of the union stream.
    let mut union = proto.clone();
    for s in &streams {
        for &i in s {
            union.update(i);
        }
    }
    assert_eq!(merged, union, "merge == union stream (homomorphism)");

    // (c) Online path: the sharded concurrent CountMin with one shard
    // per site; queries merge at read time.
    let sharded = ShardedPcm::from_prototype(&proto, SITES);
    crossbeam::scope(|s| {
        for stream in &streams {
            let mut h = sharded.handle();
            s.spawn(move |_| {
                for &i in stream {
                    h.update(i);
                }
            });
        }
    })
    .unwrap();

    println!(
        "{SITES} sites × {EVENTS_PER_SITE} events; n = {n}; sketch {}×{}; ε = αn = {eps}\n",
        merged.params().depth,
        merged.params().width
    );
    println!(" item |    true | merged  | sharded | both within [f, f+ε]");
    println!("------+---------+---------+---------+---------------------");
    let mut hot: Vec<(&u64, &u64)> = truth.iter().collect();
    hot.sort_by(|a, b| b.1.cmp(a.1));
    let mut ok = 0;
    for (&item, &f) in hot.iter().take(12) {
        let em = merged.estimate(item);
        let es = sharded.estimate(item);
        assert_eq!(em, es, "offline merge and online sharding agree exactly");
        let within = em >= f && em <= f + eps;
        ok += within as u32;
        println!("{item:>5} | {f:>7} | {em:>7} | {es:>7} | {within}");
    }
    println!("\n{ok}/12 top items within the (ε,δ) envelope (δ = {DELTA});");
    println!("merged batch sketch and query-time sharded sketch are identical —");
    println!("mergeability and IVL sharding are two faces of cell additivity.");
}
