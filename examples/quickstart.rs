//! Quickstart: the paper's two constructions in a few lines each,
//! plus the checkers that make IVL tangible.
//!
//! Run with: `cargo run --example quickstart`

use ivl_core::prelude::*;
use ivl_spec::specs::BatchedCounterSpec;

fn main() {
    // ── 1. The IVL batched counter (Algorithm 2) ────────────────────
    // One slot per thread; update = one uncontended store; read = sum.
    let counter = IvlBatchedCounter::new(4);
    crossbeam::scope(|s| {
        for slot in 0..4 {
            let counter = &counter;
            s.spawn(move |_| {
                for _ in 0..100_000 {
                    counter.update_slot(slot, 1);
                }
            });
        }
    })
    .unwrap();
    println!("IVL batched counter total: {}", counter.read());

    // ── 2. The concurrent CountMin sketch PCM (Algorithm 1) ────────
    // α = 0.1% relative error, δ = 1% failure probability.
    let mut coins = CoinFlips::from_seed(2024);
    let pcm = Pcm::for_bounds(0.001, 0.01, &mut coins);
    crossbeam::scope(|s| {
        for t in 0..4u64 {
            let pcm = &pcm;
            s.spawn(move |_| {
                let mut stream = ivl_sketch::stream::ZipfStream::new(10_000, 1.2, t);
                for _ in 0..250_000 {
                    pcm.update(stream.next_item());
                }
            });
        }
    })
    .unwrap();
    println!(
        "PCM: 1M updates ingested; top item estimate = {}, stream length = {}",
        pcm.estimate(0),
        pcm.stream_len_estimate()
    );

    // ── 3. What IVL means, concretely ───────────────────────────────
    // The paper's §1 example: a batched inc(3) bumps a counter from 7
    // to 10 while a read overlaps. Linearizability allows 7 or 10;
    // IVL additionally allows 8 and 9.
    for read_value in 6..=11u64 {
        let mut b = HistoryBuilder::<u64, (), u64>::new();
        let seed = b.invoke_update(ProcessId(0), ObjectId(0), 7);
        b.respond_update(seed);
        let inc = b.invoke_update(ProcessId(0), ObjectId(0), 3);
        let read = b.invoke_query(ProcessId(1), ObjectId(0), ());
        b.respond_query(read, read_value);
        b.respond_update(inc);
        let h = b.finish();
        let lin = check_linearizable(&[BatchedCounterSpec], &h).is_linearizable();
        let ivl = check_ivl_exact(&[BatchedCounterSpec], &h).is_ivl();
        println!("overlapping read returned {read_value:>2}: linearizable={lin:<5} ivl={ivl}");
    }
}
