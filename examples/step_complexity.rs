//! E1/E2: the step-complexity table (Theorems 11 and 14) in the
//! paper's own cost model — shared-memory steps counted by the
//! simulator.
//!
//! Run with: `cargo run --release --example step_complexity`

use ivl_core::shmem::experiments::{render_table, step_complexity_sweep};

fn main() {
    println!("Shared-memory steps per operation (simulator, seeded random scheduler)\n");
    let ns = [2, 4, 8, 16, 32, 64, 128];
    let rows = step_complexity_sweep(&ns, 8, 0xC0FFEE);
    println!("{}", render_table(&rows));
    println!("Theorem 11: IVL update is O(1) (exactly 1 write), IVL read is O(n).");
    println!("Theorem 14: any linearizable wait-free counter from SWMR registers");
    println!("needs Ω(n) steps per update; the snapshot-based construction pays");
    println!("≥ 2n+1 (one double collect + the write), growing linearly above.");
}
