//! Checker demonstration: build histories by hand and watch the
//! linearizability and IVL verdicts — including the paper's Example 9
//! (a PCM history with no linearization that is nevertheless IVL).
//!
//! Run with: `cargo run --example checker_demo`

use ivl_core::prelude::*;
use ivl_core::shmem::algorithms::{example9_hash, PcmSim};
use ivl_core::shmem::{Executor, FixedScheduler, Memory, SimOp, Workload};
use ivl_spec::linearize::{count_linearizations, query_value_bounds};
use ivl_spec::specs::BatchedCounterSpec;

fn main() {
    // ── The §1 batched-counter example ─────────────────────────────
    println!("History: update(7) complete; inc(3) concurrent with a read.\n");
    for read_value in [6u64, 7, 8, 9, 10, 11] {
        let mut b = HistoryBuilder::<u64, (), u64>::new();
        let seed = b.invoke_update(ProcessId(0), ObjectId(0), 7);
        b.respond_update(seed);
        let inc = b.invoke_update(ProcessId(0), ObjectId(0), 3);
        let read = b.invoke_query(ProcessId(1), ObjectId(0), ());
        b.respond_query(read, read_value);
        b.respond_update(inc);
        let h = b.finish();
        println!(
            "  read -> {read_value:>2}   linearizable: {:<5}   IVL: {:?}",
            check_linearizable(&[BatchedCounterSpec], &h).is_linearizable(),
            check_ivl_exact(&[BatchedCounterSpec], &h)
        );
    }

    // ── v_min / v_max (Definition 5) ───────────────────────────────
    let mut b = HistoryBuilder::<u64, (), u64>::new();
    let seed = b.invoke_update(ProcessId(0), ObjectId(0), 7);
    b.respond_update(seed);
    let inc = b.invoke_update(ProcessId(0), ObjectId(0), 3);
    let read = b.invoke_query(ProcessId(1), ObjectId(0), ());
    b.respond_query(read, 8);
    b.respond_update(inc);
    let h = b.finish();
    let bounds = query_value_bounds(&[BatchedCounterSpec], &h);
    let iv = &bounds[&read];
    println!(
        "\nDefinition 5 for the read: v_min = {}, v_max = {}  ({} linearizations)",
        iv.min,
        iv.max,
        count_linearizations(&[BatchedCounterSpec], &h)
    );

    // ── Example 9 in the simulator ─────────────────────────────────
    println!("\nExample 9 (simulated PCM, update stalled between rows):");
    let mut mem = Memory::new();
    let obj = PcmSim::new(&mut mem, 2, 2, example9_hash());
    let spec = obj.spec();
    let workloads = vec![
        Workload {
            ops: vec![
                SimOp::Update(2),
                SimOp::Update(2),
                SimOp::Update(2),
                SimOp::Update(0),
                SimOp::Update(1),
                SimOp::Update(0),
            ],
        },
        Workload {
            ops: vec![SimOp::Query(0), SimOp::Query(1)],
        },
    ];
    let mut script = vec![0; 11];
    script.extend([1, 1, 1, 1, 0]);
    let mut exec = Executor::new(mem, Box::new(obj), workloads, FixedScheduler::new(script));
    let result = exec.run();
    println!("{}", ivl_spec::render_timeline(&result.history));
    println!(
        "  linearizable: {}   IVL: {}",
        check_linearizable(std::slice::from_ref(&spec), &result.history).is_linearizable(),
        check_ivl_monotone(&spec, &result.history).is_ivl()
    );
    println!("\n(Q1 proves U happened; Q2 proves it didn't — no single order exists,");
    println!(" yet every value is between two legal linearizations: IVL.)");
}
