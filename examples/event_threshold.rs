//! The paper's §1.2 scenario: processes count events in batches; a
//! monitoring process detects when the total passes a threshold. IVL
//! is exactly the guarantee the monitor needs — any intermediate value
//! it sees is bracketed by the counter's true value at the read's
//! start and end.
//!
//! Run with: `cargo run --release --example event_threshold`

use ivl_core::counter::monitor::MonitorOutcome;
use ivl_core::prelude::*;

const WORKERS: usize = 8;
const BATCHES_PER_WORKER: u64 = 50_000;
const BATCH: u64 = 3;
const THRESHOLD: u64 = 600_000;

fn run<C: SharedBatchedCounter>(name: &str, counter: &C) {
    let monitor = ThresholdMonitor::new(counter, THRESHOLD);
    let start = std::time::Instant::now();
    let outcome = crossbeam::scope(|s| {
        let handle = s.spawn(|_| monitor.run());
        for slot in 0..WORKERS {
            s.spawn(move |_| {
                for _ in 0..BATCHES_PER_WORKER {
                    counter.update_slot(slot, BATCH);
                }
            });
        }
        handle.join().unwrap()
    })
    .unwrap();
    let elapsed = start.elapsed();
    let final_total = counter.read();
    match outcome {
        MonitorOutcome::Fired { observed, reads } => {
            println!(
                "{name:<22} fired at observed={observed:>8} after {reads:>7} reads \
                 (final total {final_total}, wall {elapsed:?})"
            );
            assert!(observed >= THRESHOLD);
            assert!(observed <= final_total);
        }
        MonitorOutcome::Stopped { last } => {
            println!("{name:<22} stopped early at {last}");
        }
    }
}

fn main() {
    println!(
        "{} workers × {} batches of {} events; threshold {}\n",
        WORKERS, BATCHES_PER_WORKER, BATCH, THRESHOLD
    );
    // The paper's §6 comparison, live: the IVL counter's updates are
    // uncontended stores, the fetch-add counter contends on one cache
    // line, the mutex counter serializes everything. All three give
    // the monitor a sound trigger; they differ in ingest throughput.
    run("IVL batched counter", &IvlBatchedCounter::new(WORKERS));
    run("fetch-add counter", &FetchAddCounter::new(WORKERS));
    run("mutex counter", &MutexBatchedCounter::new(WORKERS));
    println!(
        "\nAll monitors fired at a value ≥ threshold and ≤ final total —\n\
         the IVL envelope in action (intermediate values are safe to act on)."
    );
}
