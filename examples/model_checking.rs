//! Bounded model checking of the paper's claims: enumerate **every**
//! schedule of small instances and check the verdicts on each — no
//! sampling gaps.
//!
//! Run with: `cargo run --release --example model_checking`

use ivl_core::shmem::algorithms::{example9_hash, IvlCounterSim, PcmSim, SnapshotCounterSim};
use ivl_core::shmem::executor::{SimCounterSpec, SimObject};
use ivl_core::shmem::{explore_all_schedules, Memory, SimOp, Workload};
use ivl_spec::linearize::check_linearizable;
use ivl_spec::{check_ivl_monotone, render_timeline};

fn main() {
    // ── Lemma 10, exhaustively ──────────────────────────────────────
    let config = || {
        let mut mem = Memory::new();
        let obj = IvlCounterSim::new(&mut mem, 3);
        let w = vec![
            Workload {
                ops: vec![SimOp::Update(1), SimOp::Update(2)],
            },
            Workload {
                ops: vec![SimOp::Update(4)],
            },
            Workload {
                ops: vec![SimOp::Query(0)],
            },
        ];
        (mem, Box::new(obj) as Box<dyn SimObject>, w)
    };
    let mut nonlin = 0u64;
    let mut read_values = std::collections::BTreeMap::<u64, u64>::new();
    let stats = explore_all_schedules(&config, 1_000_000, |_, result| {
        assert!(check_ivl_monotone(&SimCounterSpec, &result.history).is_ivl());
        if !check_linearizable(&[SimCounterSpec], &result.history).is_linearizable() {
            nonlin += 1;
        }
        if let Some(v) = result
            .history
            .operations()
            .iter()
            .find(|o| o.op.is_query())
            .and_then(|o| o.return_value)
        {
            *read_values.entry(v).or_default() += 1;
        }
    });
    println!(
        "IVL counter, 3 processes (updates 1+2 | update 4 | one read):\n\
         {} schedules — ALL IVL; {} not linearizable",
        stats.schedules, nonlin
    );
    println!("read-value distribution across schedules: {read_values:?}\n");

    // ── Afek snapshot counter, exhaustively linearizable ───────────
    let config = || {
        let mut mem = Memory::new();
        let obj = SnapshotCounterSim::new(&mut mem, 2);
        let w = vec![
            Workload {
                ops: vec![SimOp::Update(3)],
            },
            Workload {
                ops: vec![SimOp::Query(0)],
            },
        ];
        (mem, Box::new(obj) as Box<dyn SimObject>, w)
    };
    let stats = explore_all_schedules(&config, 1_000_000, |sched, result| {
        assert!(
            check_linearizable(&[SimCounterSpec], &result.history).is_linearizable(),
            "schedule {sched:?} broke the snapshot counter"
        );
    });
    println!(
        "snapshot counter (1 update | 1 read): {} schedules — ALL linearizable\n",
        stats.schedules
    );

    // ── Example 9 census + the unique witness ───────────────────────
    let config = || {
        let mut mem = Memory::new();
        let obj = PcmSim::new(&mut mem, 2, 2, example9_hash());
        let w = vec![
            Workload {
                ops: vec![
                    SimOp::Update(2),
                    SimOp::Update(2),
                    SimOp::Update(2),
                    SimOp::Update(0),
                    SimOp::Update(1),
                    SimOp::Update(0),
                ],
            },
            Workload {
                ops: vec![SimOp::Query(0), SimOp::Query(1)],
            },
        ];
        (mem, Box::new(obj) as Box<dyn SimObject>, w)
    };
    let spec = {
        let mut mem = Memory::new();
        PcmSim::new(&mut mem, 2, 2, example9_hash()).spec()
    };
    let mut witnesses = Vec::new();
    let stats = explore_all_schedules(&config, 2_000_000, |sched, result| {
        assert!(check_ivl_monotone(&spec, &result.history).is_ivl());
        if !check_linearizable(std::slice::from_ref(&spec), &result.history).is_linearizable() {
            witnesses.push((sched.to_vec(), render_timeline(&result.history)));
        }
    });
    println!(
        "PCM / Example 9 census: {} / {} schedules non-linearizable",
        witnesses.len(),
        stats.schedules
    );
    for (sched, timeline) in &witnesses {
        println!("\nthe witnessing schedule {sched:?} — the paper's Example 9:\n{timeline}");
    }
}
