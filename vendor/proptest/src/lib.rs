//! Offline in-tree shim for the subset of the `proptest` API used by
//! this workspace.
//!
//! Provides the [`proptest!`] macro, [`Strategy`](strategy::Strategy)
//! implementations for integer ranges, tuples, `any::<T>()` and
//! [`collection::vec`], plus `prop_assert!`-style assertions. Cases
//! are generated from a deterministic per-test seed (derived from the
//! test's name), so failures reproduce exactly; there is no shrinking
//! — the failing arguments are printed verbatim instead.

#![forbid(unsafe_code)]

#[doc(hidden)]
pub use rand as __rand;

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of an output type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f` (proptest's `prop_map`,
        /// without shrinking).
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter mapping another strategy's values through a
    /// function (see [`Strategy::prop_map`]).
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed alternative strategies — the
    /// engine behind [`prop_oneof!`](crate::prop_oneof) (unweighted;
    /// the real crate's weights are not supported).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} options)", self.options.len())
        }
    }

    impl<T> Union<T> {
        /// Creates an empty union; populate with [`or`](Union::or).
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Union {
                options: Vec::new(),
            }
        }

        /// Adds one alternative.
        pub fn or(mut self, strategy: impl Strategy<Value = T> + 'static) -> Self {
            self.options.push(Box::new(strategy));
            self
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            assert!(!self.options.is_empty(), "prop_oneof! needs an arm");
            let pick = rng.gen_range(0..self.options.len());
            self.options[pick].generate(rng)
        }
    }

    /// Forwarding impl so `&strategy` works where a strategy is
    /// expected.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy for the full sampling domain of a type (`any::<T>()`).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Any<T> {
        /// The (stateless) strategy value, usable in `const` contexts.
        pub const NEW: Any<T> = Any {
            _marker: std::marker::PhantomData,
        };
    }

    /// Generates arbitrary values of `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any::NEW
    }

    impl Strategy for Any<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }

    impl Strategy for Any<u64> {
        type Value = u64;

        fn generate(&self, rng: &mut StdRng) -> u64 {
            rng.gen()
        }
    }

    impl Strategy for Any<u32> {
        type Value = u32;

        fn generate(&self, rng: &mut StdRng) -> u32 {
            rng.gen()
        }
    }

    impl Strategy for Any<u8> {
        type Value = u8;

        fn generate(&self, rng: &mut StdRng) -> u8 {
            rng.gen()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// Strategy yielding a fixed value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Any;

    /// Generates `true` or `false` with equal probability.
    pub const ANY: Any<::core::primitive::bool> = Any::NEW;
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Sizes accepted by [`vec`]: a fixed length or a half-open range.
    #[derive(Clone, Debug)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Fixed(usize),
        /// A length drawn uniformly from the range.
        Range(Range<usize>),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange::Range(r)
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element
    /// strategy.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = match &self.size {
                SizeRange::Fixed(n) => *n,
                SizeRange::Range(r) => rng.gen_range(r.clone()),
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-case configuration and failure plumbing.

    use std::fmt;

    /// Configuration of a [`proptest!`](crate::proptest) block.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` generated cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// A failed property (carried out of the case body by
    /// `prop_assert!` and friends).
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Stable 64-bit FNV-1a over the test name: the deterministic
    /// per-test seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod prelude {
    //! Everything a `proptest!` user needs in scope.

    pub use crate::strategy::{any, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn` runs its body for every generated
/// combination of arguments.
#[macro_export]
macro_rules! proptest {
    (@fns ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let described = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+),
                    $(&$arg),+
                );
                let outcome = (move || -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1,
                        config.cases,
                        e,
                        described
                    );
                }
            }
        }
    )*};
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@fns ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} != {:?})", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Picks uniformly among alternative strategies with a common value
/// type (the real crate's per-arm weights are not supported — arms are
/// equally likely).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($strat))+
    };
}

/// Skips the current case when its inputs don't satisfy a premise.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..10, b in 1usize..4, c in -5i64..=5) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((1..4).contains(&b));
            prop_assert!((-5..=5).contains(&c));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec((any::<bool>(), 0u64..10), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for (_, x) in v {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn assume_skips(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn prop_map_transforms(s in (0u64..10).prop_map(|n| n.to_string())) {
            let n: u64 = s.parse().expect("decimal");
            prop_assert!(n < 10);
        }

        #[test]
        fn oneof_draws_from_every_arm_domain(
            picks in crate::collection::vec(
                prop_oneof![
                    (0u64..10).prop_map(|n| n * 2),
                    Just(100u64),
                    11u64..20,
                ],
                64,
            ),
        ) {
            for p in picks {
                prop_assert!(
                    p == 100 || (11..20).contains(&p) || (p < 20 && p % 2 == 0),
                    "value outside every arm: {p}"
                );
            }
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                #[allow(unused)]
                fn always_fails(x in 0u64..3) {
                    prop_assert!(false, "doomed {x}");
                }
            }
            always_fails();
        });
        let payload = result.unwrap_err();
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("doomed"), "{msg}");
        assert!(msg.contains("inputs"), "{msg}");
    }
}
