//! Offline in-tree shim for the subset of the `polling` 3.x API used
//! by this workspace: a Linux epoll reactor handle with an eventfd
//! waker.
//!
//! The build environment has no network access and no vendored
//! registry, so the workspace ships tiny API-compatible stand-ins for
//! its external dependencies (see `vendor/README.md`). Like the real
//! crate, this shim is the *only* place the serving layer touches the
//! OS readiness API; everything above it works with
//! [`std::os::fd::AsRawFd`] sources and safe Rust (`ivl-service` keeps
//! `#![forbid(unsafe_code)]`).
//!
//! Differences from the real `polling` crate, kept deliberately small:
//!
//! * Linux-only (`epoll` + `eventfd`); the workspace targets Linux.
//! * No oneshot mode: [`PollMode::Level`] and [`PollMode::Edge`] map
//!   directly to level-/edge-triggered epoll registrations and stay
//!   armed until [`Poller::delete`].
//! * [`Poller::add`] is a safe method taking `&impl AsRawFd`; the
//!   caller must keep the source alive until `delete` (the same
//!   I/O-safety contract the real crate spells via `unsafe`). The
//!   poller never reads or writes through registered descriptors, so
//!   a violated contract yields spurious or missing events, not
//!   memory unsafety.
//!
//! The `unsafe` here is confined to four `extern "C"` libc calls
//! (`epoll_create1`, `epoll_ctl`, `epoll_wait`, `eventfd`) plus
//! adopting their returned descriptors into [`OwnedFd`]; descriptor
//! reads/writes go through [`std::fs::File`].

#![warn(missing_docs)]

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd};
use std::os::raw::{c_int, c_uint};
use std::sync::Mutex;
use std::time::Duration;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLET: u32 = 1 << 31;

/// The registration key the poller reserves for its internal eventfd
/// waker; [`Poller::wait`] filters it out of delivered events.
const NOTIFY_KEY: u64 = u64::MAX;

// `struct epoll_event` is packed on x86-64 (`__EPOLL_PACKED`): 12
// bytes, no padding between `events` and the 64-bit user data.
#[repr(C, packed)]
#[derive(Clone, Copy, Debug)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// How a registration stays armed after delivering an event.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PollMode {
    /// Level-triggered: the event is re-delivered on every wait while
    /// the condition holds.
    #[default]
    Level,
    /// Edge-triggered (`EPOLLET`): delivered once per readiness
    /// transition; the consumer must drain until `WouldBlock`.
    Edge,
}

/// Readiness interest in / readiness state of one registered source.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Event {
    /// Caller-chosen registration key, echoed back in delivered
    /// events. `usize::MAX` is reserved for the poller's waker.
    pub key: usize,
    /// Interested in / ready for reading. Delivered events also set
    /// this for peer hang-up and error conditions, so a consumer that
    /// reacts to `readable` by reading observes the EOF or the error.
    pub readable: bool,
    /// Interested in / ready for writing.
    pub writable: bool,
}

impl Event {
    /// Interest in both readability and writability.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// Interest in readability only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in writability only.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    fn to_epoll(self, mode: PollMode) -> u32 {
        let mut bits = EPOLLRDHUP;
        if self.readable {
            bits |= EPOLLIN;
        }
        if self.writable {
            bits |= EPOLLOUT;
        }
        if mode == PollMode::Edge {
            bits |= EPOLLET;
        }
        bits
    }
}

/// A Linux epoll instance plus an eventfd waker.
///
/// `wait` may be called from one thread while other threads `add`,
/// `modify`, `delete` or `notify` (epoll is thread-safe); this shim
/// serializes nothing except the delivered-events translation.
#[derive(Debug)]
pub struct Poller {
    epoll: OwnedFd,
    /// Non-blocking eventfd registered level-triggered under
    /// [`NOTIFY_KEY`]; `notify` bumps it, `wait` drains it.
    waker: File,
    /// Guards the raw `epoll_wait` output buffer so `wait` is `&self`.
    scratch: Mutex<Vec<EpollEvent>>,
}

impl Poller {
    /// Creates an epoll instance and its waker eventfd.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1/eventfd allocate fresh descriptors we
        // immediately adopt into owned handles; flags are the
        // documented CLOEXEC/NONBLOCK constants.
        let epoll = unsafe {
            let fd = cvt(epoll_create1(EPOLL_CLOEXEC))?;
            OwnedFd::from_raw_fd(fd)
        };
        let waker = unsafe {
            let fd = cvt(eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK))?;
            File::from(OwnedFd::from_raw_fd(fd))
        };
        let poller = Poller {
            epoll,
            waker,
            scratch: Mutex::new(Vec::new()),
        };
        poller.ctl(
            EPOLL_CTL_ADD,
            poller.waker.as_raw_fd(),
            Some((EPOLLIN, NOTIFY_KEY)),
        )?;
        Ok(poller)
    }

    fn ctl(&self, op: c_int, fd: i32, ev: Option<(u32, u64)>) -> io::Result<()> {
        let mut raw = ev.map(|(events, data)| EpollEvent { events, data });
        let ptr = raw
            .as_mut()
            .map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
        // SAFETY: `ptr` is null only for EPOLL_CTL_DEL (where the
        // kernel ignores it) and otherwise points at a live, properly
        // laid out `EpollEvent` on this stack frame.
        cvt(unsafe { epoll_ctl(self.epoll.as_raw_fd(), op, fd, ptr) })?;
        Ok(())
    }

    /// Registers `source` with the given interest and trigger mode.
    ///
    /// The caller must keep `source` open until [`delete`]
    /// (I/O-safety contract; a closed-then-reused descriptor produces
    /// events under the stale key).
    ///
    /// [`delete`]: Poller::delete
    pub fn add(&self, source: &impl AsRawFd, interest: Event, mode: PollMode) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_ADD,
            source.as_raw_fd(),
            Some((interest.to_epoll(mode), interest.key as u64)),
        )
    }

    /// Changes the interest or trigger mode of a registered source.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event, mode: PollMode) -> io::Result<()> {
        self.ctl(
            EPOLL_CTL_MOD,
            source.as_raw_fd(),
            Some((interest.to_epoll(mode), interest.key as u64)),
        )
    }

    /// Deregisters a source.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, source.as_raw_fd(), None)
    }

    /// Blocks until at least one registered source is ready or the
    /// timeout elapses (`None` blocks indefinitely), appending
    /// delivered events to `events` and returning how many were
    /// appended. Waker wakeups are drained and filtered out, so a
    /// return of `0` with no timeout means [`notify`] was called.
    ///
    /// [`notify`]: Poller::notify
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: c_int = match timeout {
            None => -1,
            // Round up so a nonzero timeout never busy-spins.
            Some(d) => d
                .as_millis()
                .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                .min(c_int::MAX as u128) as c_int,
        };
        let mut raw = self.scratch.lock().unwrap_or_else(|e| e.into_inner());
        raw.resize(1024, EpollEvent { events: 0, data: 0 });
        let n = loop {
            // SAFETY: the buffer outlives the call and its length is
            // passed as maxevents.
            let ret = unsafe {
                epoll_wait(
                    self.epoll.as_raw_fd(),
                    raw.as_mut_ptr(),
                    raw.len() as c_int,
                    timeout_ms,
                )
            };
            match cvt(ret) {
                Ok(n) => break n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    if timeout.is_some() {
                        break 0; // treat EINTR under a timeout as a timeout
                    }
                }
                Err(e) => return Err(e),
            }
        };
        let mut appended = 0;
        for ev in &raw[..n] {
            let (bits, key) = (ev.events, ev.data);
            if key == NOTIFY_KEY {
                // Drain the eventfd counter so level-triggering stops.
                let _ = (&self.waker).read(&mut [0u8; 8]);
                continue;
            }
            events.push(Event {
                key: key as usize,
                readable: bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                writable: bits & (EPOLLOUT | EPOLLERR) != 0,
            });
            appended += 1;
        }
        Ok(appended)
    }

    /// Wakes a concurrent [`wait`](Poller::wait) call from any thread.
    pub fn notify(&self) -> io::Result<()> {
        match (&self.waker).write(&1u64.to_ne_bytes()) {
            Ok(_) => Ok(()),
            // Counter saturated: a wakeup is already pending.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn readable_event_delivered_level() {
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&b, Event::readable(7), PollMode::Level).unwrap();
        a.write_all(b"x").unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].key, 7);
        assert!(events[0].readable);
        // Level-triggered: still pending until consumed.
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn edge_event_fires_once_per_transition() {
        let (mut a, mut b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&b, Event::readable(3), PollMode::Edge).unwrap();
        a.write_all(b"x").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        // Without consuming, no further edge.
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.is_empty());
        // Consume, write again: a new edge arrives.
        let mut buf = [0u8; 8];
        let _ = b.read(&mut buf);
        a.write_all(b"y").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn notify_wakes_and_is_filtered() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let p2 = std::sync::Arc::clone(&poller);
        let waker = std::thread::spawn(move || p2.notify().unwrap());
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        waker.join().unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
    }

    #[test]
    fn modify_and_delete_change_interest() {
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&b, Event::writable(1), PollMode::Level).unwrap();
        a.write_all(b"x").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().all(|e| !e.readable));
        poller
            .modify(&b, Event::readable(1), PollMode::Level)
            .unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events[0].readable);
        poller.delete(&b).unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn hangup_reports_readable() {
        let (a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&b, Event::readable(9), PollMode::Edge).unwrap();
        drop(a);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.key == 9 && e.readable));
    }
}
