//! Offline in-tree shim for the subset of the `crossbeam` 0.8 API used
//! by this workspace: [`scope`] (scoped threads) and
//! [`utils::CachePadded`].
//!
//! The scoped-thread API is implemented on top of
//! [`std::thread::scope`], which provides the same structured
//! guarantee (all spawned threads join before `scope` returns). As in
//! crossbeam, the closure passed to [`Scope::spawn`] receives the
//! scope itself, so nested spawns work unchanged.
//!
//! Panic handling: the first panic raised in a spawned (and not
//! explicitly joined) thread is re-raised out of [`scope`] with its
//! original payload, so assertion messages from worker threads reach
//! the test harness intact (std's scope would otherwise replace them
//! with "a scoped thread panicked").

#![forbid(unsafe_code)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::thread;

/// A scope for spawning borrowing threads (wraps
/// [`std::thread::Scope`]).
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
    first_panic: Arc<Mutex<Option<String>>>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread inside the scope. The closure receives the
    /// scope, allowing nested spawns (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner_scope = self.inner;
        let first_panic = Arc::clone(&self.first_panic);
        ScopedJoinHandle {
            inner: inner_scope.spawn(move || {
                let nested = Scope {
                    inner: inner_scope,
                    first_panic: Arc::clone(&first_panic),
                };
                match catch_unwind(AssertUnwindSafe(|| f(&nested))) {
                    Ok(v) => v,
                    Err(payload) => {
                        // Keep a copy of the first panic message so
                        // `scope` can re-raise something meaningful;
                        // the payload itself travels on to `join`.
                        let message = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "a scoped thread panicked".to_owned());
                        let mut slot = first_panic.lock().unwrap_or_else(|e| e.into_inner());
                        slot.get_or_insert(message);
                        drop(slot);
                        resume_unwind(payload)
                    }
                }
            }),
        }
    }
}

/// Handle to a scoped thread (wraps [`std::thread::ScopedJoinHandle`]).
#[derive(Debug)]
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish, returning its result or the
    /// panic payload.
    pub fn join(self) -> thread::Result<T> {
        self.inner.join()
    }
}

/// Creates a scope in which threads may borrow non-`'static` data.
///
/// Returns `Ok` with the closure's result. If a spawned thread
/// panicked (and its handle was not joined), the panic is re-raised
/// here with the original payload.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let first_panic = Arc::new(Mutex::new(None));
    let result = catch_unwind(AssertUnwindSafe(|| {
        thread::scope(|s| {
            f(&Scope {
                inner: s,
                first_panic: Arc::clone(&first_panic),
            })
        })
    }));
    match result {
        Ok(r) => Ok(r),
        Err(outer) => {
            let recorded = first_panic.lock().unwrap_or_else(|e| e.into_inner()).take();
            match recorded {
                Some(message) => resume_unwind(Box::new(message)),
                None => resume_unwind(outer),
            }
        }
    }
}

pub mod utils {
    //! Utility types.

    use std::fmt;
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to (at least) one cache line to prevent
    /// false sharing between adjacent values.
    #[derive(Clone, Copy, Default, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value` in cache-line padding.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }

        /// Unwraps the value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("CachePadded")
                .field("value", &self.value)
                .finish()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::utils::CachePadded;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicU64::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                let c = &counter;
                s.spawn(move |_| {
                    for _ in 0..1_000 {
                        c.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4_000);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let counter = AtomicU64::new(0);
        super::scope(|s| {
            let c = &counter;
            s.spawn(move |s2| {
                s2.spawn(move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn join_returns_thread_result() {
        let r = super::scope(|s| s.spawn(|_| 41 + 1).join().unwrap()).unwrap();
        assert_eq!(r, 42);
    }

    #[test]
    fn join_surfaces_child_panic() {
        let r = super::scope(|s| s.spawn(|_| panic!("joined boom")).join()).unwrap();
        let payload = r.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>().copied(), Some("joined boom"));
    }

    #[test]
    #[should_panic(expected = "child boom")]
    fn child_panic_propagates_with_payload() {
        super::scope(|s| {
            s.spawn(|_| panic!("child boom"));
        })
        .unwrap();
    }

    #[test]
    fn cache_padded_is_aligned_and_transparent() {
        let v = CachePadded::new(AtomicU64::new(9));
        assert_eq!(v.load(Ordering::Relaxed), 9);
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 128);
        assert_eq!(CachePadded::new(5u64).into_inner(), 5);
    }
}
