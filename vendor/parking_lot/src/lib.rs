//! Offline in-tree shim for the subset of the `parking_lot` 0.12 API
//! used by this workspace: [`Mutex`] and [`RwLock`] with
//! non-poisoning, guard-returning lock methods.
//!
//! Backed by the `std::sync` primitives; a poisoned lock (a writer
//! panicked while holding it) is recovered rather than propagated,
//! matching parking_lot's no-poisoning semantics.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` returns the guard directly
/// (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed — the borrow is exclusive).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly
/// (no poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(sync::TryLockError::Poisoned(e)) => f
                .debug_struct("RwLock")
                .field("data", &&*e.into_inner())
                .finish(),
            Err(sync::TryLockError::WouldBlock) => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
