//! Offline in-tree shim for the subset of the `rand` 0.8 API used by
//! this workspace.
//!
//! The build environment has no network access and no vendored
//! registry, so the workspace ships tiny API-compatible stand-ins for
//! its external dependencies (see `vendor/README.md`). This crate
//! provides [`Rng`], [`SeedableRng`] and [`rngs::StdRng`] backed by a
//! SplitMix64-seeded xoshiro256** generator — deterministic,
//! high-quality, and more than adequate for the workspace's seeded
//! test workloads and Zipf streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from the generator's raw output
/// (the shim's analogue of sampling from the `Standard` distribution).
pub trait SampleValue: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl SampleValue for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleValue for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleValue for u8 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl SampleValue for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleValue for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts, mirroring rand's
/// `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_below(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform value in `[0, bound)` by rejection sampling (no modulo
/// bias). `bound` must be nonzero and fit the sampled width.
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound == 1 {
        return 0;
    }
    if bound <= u64::MAX as u128 {
        let bound = bound as u64;
        // Largest multiple of `bound` that fits in u64.
        let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % bound) as u128;
            }
        }
    } else {
        let zone = u128::MAX - (u128::MAX % bound + 1) % bound;
        loop {
            let v = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
            if v <= zone {
                return v % bound;
            }
        }
    }
}

/// The user-facing generator trait (subset of rand 0.8's `Rng`).
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` (uniform over its sampling domain).
    fn gen<T: SampleValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        f64::sample(self) < p
    }
}

/// Deterministic seeding (subset of rand's `SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64 (Blackman & Vigna's recommended pairing).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_splitmix(seed)
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(1..=6u64);
            assert!((1..=6).contains(&w));
            let x = r.gen_range(-3i64..6);
            assert!((-3..6).contains(&x));
        }
    }

    #[test]
    fn unit_interval_and_bool() {
        let mut r = StdRng::seed_from_u64(2);
        let mut heads = 0u32;
        for _ in 0..10_000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
            if r.gen_bool(0.5) {
                heads += 1;
            }
        }
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }
}
