//! Offline in-tree shim for the subset of the `criterion` 0.5 API used
//! by this workspace's benches.
//!
//! It is a real (if spartan) harness: each benchmark runs a short
//! warm-up followed by `sample_size` measured samples and prints the
//! mean time per iteration (plus element throughput when declared).
//! There is no statistical analysis, plotting, or baseline storage —
//! the benches exist to be runnable and comparable by eye in this
//! offline environment.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared throughput of a benchmark, used to report rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to benchmark closures to drive the measurement.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    measured: Option<Duration>,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.measured = Some(start.elapsed());
    }

    /// Lets the closure time `iters` iterations itself and report the
    /// total duration.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.measured = Some(f(self.iters));
    }
}

/// One finished measurement, retained for programmatic consumers
/// (JSON emission, CI threshold checks) alongside the printed line.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// `group/benchmark` label as printed.
    pub label: String,
    /// Mean wall-clock time per iteration, in nanoseconds.
    pub ns_per_iter: f64,
    /// Element rate, when the group declared `Throughput::Elements`.
    pub elems_per_sec: Option<f64>,
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    quick: bool,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

/// Extracts the shim's CLI knobs from a bench binary's argument list:
/// `--quick`, plus real criterion's positional substring filter (the
/// first argument that is neither a flag nor a flag's value — the only
/// value-taking flag the workspace benches define is `--json FILE`).
fn parse_args(args: impl Iterator<Item = String>) -> (bool, Option<String>) {
    let mut quick = false;
    let mut filter = None;
    let mut skip_value = false;
    for arg in args.skip(1) {
        if skip_value {
            skip_value = false;
        } else if arg == "--quick" {
            quick = true;
        } else if arg == "--json" {
            skip_value = true;
        } else if !arg.starts_with('-') && filter.is_none() {
            filter = Some(arg);
        }
    }
    (quick, filter)
}

impl Default for Criterion {
    fn default() -> Self {
        // Real criterion accepts `--quick` and a positional substring
        // filter on the bench binary's command line; honor the same
        // spellings so CI smoke runs and local iteration need no
        // shim-specific flags.
        let (quick, filter) = parse_args(std::env::args());
        Criterion {
            quick,
            filter,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// True when `--quick` was passed: samples are clamped to 3 and
    /// benches may shrink their workloads.
    pub fn is_quick(&self) -> bool {
        self.quick
    }

    /// Measurements recorded so far, in run order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_secs(1),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_function(id.into(), f);
        group.finish();
        self
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before measuring (approximate in this shim).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Measurement budget (approximate in this shim).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run(&id.id, |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.id, |b| f(b, input));
        self
    }

    /// Ends the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let label = if self.name.is_empty() {
            id.to_owned()
        } else {
            format!("{}/{}", self.name, id)
        };
        if let Some(filter) = &self.parent.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        // One warm-up sample, then `sample_size` measured samples
        // (clamped to 3 under `--quick`).
        let samples = if self.parent.quick {
            self.sample_size.min(3)
        } else {
            self.sample_size
        };
        let mut warm = Bencher {
            iters: 1,
            measured: None,
        };
        f(&mut warm);
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..samples {
            let mut b = Bencher {
                iters: 1,
                measured: None,
            };
            f(&mut b);
            total += b
                .measured
                .expect("bench closure must call iter/iter_custom");
            iters += 1;
        }
        let per_iter = total.as_secs_f64() / iters.max(1) as f64;
        let mut elems_per_sec = None;
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / per_iter;
                elems_per_sec = Some(rate);
                println!(
                    "bench {label}: {:.3} ms/iter, {:.2} Melem/s",
                    per_iter * 1e3,
                    rate / 1e6
                );
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / per_iter / 1e6;
                println!(
                    "bench {label}: {:.3} ms/iter, {rate:.2} MB/s",
                    per_iter * 1e3
                );
            }
            None => println!("bench {label}: {:.3} ms/iter", per_iter * 1e3),
        }
        self.parent.results.push(BenchResult {
            label,
            ns_per_iter: per_iter * 1e9,
            elems_per_sec,
        });
    }
}

/// Bundles benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` invoking each group runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_args_extracts_quick_and_filter() {
        let argv = |args: &[&str]| {
            parse_args(
                std::iter::once("bench-bin".to_owned()).chain(args.iter().map(|s| s.to_string())),
            )
        };
        assert_eq!(argv(&[]), (false, None));
        assert_eq!(argv(&["--quick", "--bench"]), (true, None));
        assert_eq!(
            argv(&["--quick", "batch_kernel"]),
            (true, Some("batch_kernel".to_owned()))
        );
        // `--json` consumes its value; the filter is the next free arg.
        assert_eq!(
            argv(&["--json", "out.json", "skew"]),
            (false, Some("skew".to_owned()))
        );
        // Only the first free argument filters.
        assert_eq!(argv(&["a", "b"]), (false, Some("a".to_owned())));
    }

    #[test]
    fn filter_skips_non_matching_benches() {
        let mut c = Criterion {
            quick: true,
            filter: Some("keep".to_owned()),
            results: Vec::new(),
        };
        let mut group = c.benchmark_group("g");
        let mut ran = Vec::new();
        group.bench_function("keep/this", |b| {
            ran.push("keep");
            b.iter(|| 1 + 1);
        });
        group.bench_function("drop/this", |b| {
            ran.push("drop");
            b.iter(|| 1 + 1);
        });
        group.finish();
        drop(group);
        assert_eq!(ran, ["keep"; 4]); // warm-up + 3 quick samples
        assert_eq!(c.results().len(), 1);
        assert_eq!(c.results()[0].label, "g/keep/this");
    }

    #[test]
    fn group_runs_benches_and_reports() {
        // Built explicitly: `Default` reads the *test* binary's argv,
        // and a libtest filter argument would become a bench filter.
        let mut c = Criterion {
            quick: false,
            filter: None,
            results: Vec::new(),
        };
        let mut group = c.benchmark_group("shim");
        group.sample_size(2).throughput(Throughput::Elements(10));
        let mut calls = 0;
        group.bench_with_input(BenchmarkId::new("add", 1), &1u64, |b, &x| {
            calls += 1;
            b.iter(|| x + 1);
        });
        group.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                assert_eq!(iters, 1);
                Duration::from_micros(5)
            })
        });
        group.finish();
        drop(group);
        // warm-up + 2 samples
        assert_eq!(calls, 3);
        let results = c.results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].label, "shim/add/1");
        assert!(results[0].ns_per_iter >= 0.0);
        assert!(results[0].elems_per_sec.is_some());
        // iter_custom reported 5µs for 1 iter.
        assert!((results[1].ns_per_iter - 5_000.0).abs() < 1.0);
    }
}
