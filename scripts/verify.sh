#!/usr/bin/env bash
# Full verification gate: tier-1 (release build + tests) plus style
# and lint. CI runs exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: OK"
