#!/usr/bin/env bash
# Full verification gate: tier-1 (release build + tests) plus style
# and lint. CI runs exactly this script; run it locally before pushing.
#
# Opt-in extras:
#   IVL_MIRI=1  also run `cargo miri test -p ivl-concurrent` (needs a
#               nightly toolchain with the miri component; best-effort
#               in CI, never required locally).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> ivl_lint (repo invariants)"
cargo run -q -p ivl-analyzer --bin ivl_lint

echo "==> ivl_lint --mutate (lint self-validation)"
cargo run -q -p ivl-analyzer --bin ivl_lint -- --mutate

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "${IVL_MIRI:-0}" == "1" ]]; then
    echo "==> cargo miri test -p ivl-concurrent (opt-in)"
    cargo miri test -p ivl-concurrent
fi

echo "verify: OK"
